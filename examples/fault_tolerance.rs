//! Fault injection and failover: kill the GPU, flake the pair, degrade the
//! multicore — and watch the scheduler keep completing work (the README's
//! fault-tolerance example, extended).

use heteromap::resilient::RetryPolicy;
use heteromap::HeteroMap;
use heteromap_accel::{FaultPlan, FaultState, MultiAcceleratorSystem};
use heteromap_graph::datasets::Dataset;
use heteromap_model::{Accelerator, Workload};
use heteromap_predict::DecisionTree;

fn scheduler(plan: FaultPlan) -> HeteroMap {
    HeteroMap::new(
        MultiAcceleratorSystem::primary().with_faults(plan),
        Box::new(DecisionTree::paper()),
    )
    .with_retry_policy(RetryPolicy::default()) // 3 attempts, exp. backoff
}

fn describe(label: &str, hm: &HeteroMap, w: Workload, d: Dataset) {
    let p = hm.schedule(w, d);
    if p.completed() {
        println!(
            "{label:>18}: {w} on {d} -> {} in {:.2} ms \
             ({} attempts, {} failovers, {:.3} ms retry time charged)",
            p.accelerator(),
            p.report.time_ms,
            p.attempts.total_attempts(),
            p.attempts.failovers,
            p.attempts.retry_time_ms,
        );
    } else {
        println!(
            "{label:>18}: {w} on {d} -> never completed \
             ({} attempts across both accelerators)",
            p.attempts.total_attempts(),
        );
    }
}

fn main() {
    let w = Workload::SsspBf;
    let d = Dataset::LiveJournal;

    describe("healthy", &scheduler(FaultPlan::healthy()), w, d);
    describe("GPU down", &scheduler(FaultPlan::gpu_down()), w, d);
    describe(
        "transient p=0.5",
        &scheduler(FaultPlan::transient(0.5, 42)),
        w,
        d,
    );
    describe(
        "multicore at 25%",
        &scheduler(FaultPlan::gpu_down().with_state(
            Accelerator::Multicore,
            FaultState::Degraded {
                surviving_core_fraction: 0.25,
            },
        )),
        w,
        d,
    );
    describe(
        "both down",
        &scheduler(FaultPlan::gpu_down().with_state(Accelerator::Multicore, FaultState::Down)),
        w,
        d,
    );
}
