//! All four accelerator pairs of §VI-A / §VII-D side by side: the paper
//! re-learns HeteroMap per setup and shows the optimal choices shifting
//! with the hardware.
//!
//! Run with: `cargo run --release --example multi_setup`

use heteromap::HeteroMap;
use heteromap_accel::system::MultiAcceleratorSystem;
use heteromap_graph::datasets::Dataset;
use heteromap_model::{Accelerator, Workload};
use heteromap_predict::nn::TrainConfig;
use heteromap_predict::Objective;

fn main() {
    let combos: Vec<(Workload, Dataset)> = Workload::all()
        .into_iter()
        .flat_map(|w| Dataset::all().into_iter().map(move |d| (w, d)))
        .collect();

    println!(
        "{:<28} {:>10} {:>12} {:>14}",
        "setup", "GPU share", "geomean ms", "learner"
    );
    for system in MultiAcceleratorSystem::paper_pairs() {
        let name = format!("{} + {}", system.gpu().name, system.multicore().name);
        // Re-learn per setup, as the paper does for architectural changes.
        let hm = HeteroMap::train_deep_with(
            system.clone(),
            250,
            Objective::Performance,
            TrainConfig {
                hidden: 64,
                epochs: 100,
                seed: 42,
                ..TrainConfig::default()
            },
        );
        let mut gpu_count = 0usize;
        let mut ln_sum = 0.0;
        for &(w, d) in &combos {
            let p = hm.schedule(w, d);
            if p.accelerator() == Accelerator::Gpu {
                gpu_count += 1;
            }
            ln_sum += p.report.time_ms.ln();
        }
        println!(
            "{:<28} {:>7}/81 {:>12.2} {:>14}",
            name,
            gpu_count,
            (ln_sum / combos.len() as f64).exp(),
            hm.predictor_name()
        );
    }
    println!(
        "\nPaper shape: the GTX-970 pairs route more combinations to the GPU\n\
         than the GTX-750Ti pairs ('Optimal Choices change when compared to\n\
         the GTX750Ti'), and the 40-core CPU pairs run faster overall than\n\
         the Phi pairs."
    );
}
