//! The full offline-training flow of Fig. 8: generate synthetic benchmarks
//! and inputs (Fig. 9 / Table III), autotune each combination against the
//! multi-accelerator oracle, build the profiler database, train every
//! learner, and compare them Table-IV-style on the real workloads.
//!
//! Run with: `cargo run --release --example train_predictor [samples] [threads]`
//!
//! With `threads > 1` the per-sample tuning runs are fanned over the kernel
//! thread pool ([`Trainer::generate_database_parallel`]); the database is
//! bit-identical to the serial one, only faster to produce.
//!
//! Set `HETEROMAP_DB=<path>` to reuse a persisted profiler database instead
//! of regenerating one; corrupt rows are skipped with a warning, not
//! silently dropped.

use heteromap_accel::system::MultiAcceleratorSystem;
use heteromap_predict::nn::TrainConfig;
use heteromap_predict::persist::read_database_file_lenient;
use heteromap_predict::{
    AdaptiveLibrary, DecisionTree, Evaluator, NeuralPredictor, Objective, Predictor,
    RegressionPredictor, Trainer,
};

fn main() {
    let samples: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let threads: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let system = MultiAcceleratorSystem::primary();

    let trainer = Trainer::new(system.clone());
    let db = match std::env::var("HETEROMAP_DB") {
        Ok(path) if !path.is_empty() => {
            println!("1. loading profiler database from {path}...");
            let lenient = read_database_file_lenient(&path)
                .unwrap_or_else(|e| panic!("HETEROMAP_DB={path}: {e}"));
            if let Some(summary) = lenient.skip_summary() {
                heteromap_obs::diag("db.lenient_skip", || format!("path={path} {summary}"));
            }
            lenient.set
        }
        _ if threads > 1 => {
            println!(
                "1. generating profiler database ({samples} autotuned synthetic combos, {threads} workers)..."
            );
            trainer.generate_database_parallel(samples, 42, threads)
        }
        _ => {
            println!("1. generating profiler database ({samples} autotuned synthetic combos)...");
            trainer.generate_database(samples, 42)
        }
    };
    println!("   database: {}\n", db.summary());

    println!("2. training learners...");
    let tree = DecisionTree::paper();
    let linear = RegressionPredictor::train_linear(&db);
    let multi = RegressionPredictor::train_multi(&db);
    let adaptive = AdaptiveLibrary::train(&db);
    let deep = NeuralPredictor::train(
        &db,
        TrainConfig {
            hidden: 128,
            ..TrainConfig::default()
        },
    );
    println!("   Deep.128 final train MSE: {:.4}\n", deep.mse(&db));

    println!("3. evaluating on the 81 real benchmark-input combinations...");
    let evaluator = Evaluator::new(system, Objective::Performance);
    let learners: [&dyn Predictor; 5] = [&tree, &linear, &multi, &adaptive, &deep];
    println!(
        "\n{:<28} {:>12} {:>12} {:>14} {:>14}",
        "learner", "speedup(%)", "accuracy(%)", "overhead(ms)", "gap vs ideal(%)"
    );
    for l in learners {
        let r = evaluator.evaluate(l);
        println!(
            "{:<28} {:>12.1} {:>12.1} {:>14.4} {:>14.1}",
            r.name, r.speedup_over_gpu_pct, r.accuracy_pct, r.overhead_ms, r.gap_from_ideal_pct
        );
    }
}
