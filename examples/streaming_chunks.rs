//! Stinger-style chunked scheduling (§II): a graph larger than the
//! accelerator memory is cut into temporal chunks, and HeteroMap predicts
//! per-chunk machine choices from each chunk's measured characteristics.
//!
//! Run with: `cargo run --release --example streaming_chunks`

use heteromap::HeteroMap;
use heteromap_graph::gen::{GraphGenerator, PowerLaw};
use heteromap_graph::stream::GraphStream;
use heteromap_model::Workload;

fn main() {
    // A social-like graph; pretend device memory only fits a fifth of it.
    let graph = PowerLaw::new(50_000, 6).generate(3);
    let budget = graph.footprint_bytes() / 5;
    println!(
        "graph: {} vertices, {} edges, {:.1} MB CSR; chunk budget {:.1} MB\n",
        graph.vertex_count(),
        graph.edge_count(),
        graph.footprint_bytes() as f64 / 1e6,
        budget as f64 / 1e6
    );

    let stream = GraphStream::with_byte_budget(&graph, budget);
    println!("chunk characteristics (measured per chunk, Stinger-style):");
    for chunk in stream.iter() {
        println!(
            "  chunk {:>2}: vertices {:>6} edges {:>7} maxdeg {:>5} diameter {:>3}",
            chunk.index,
            chunk.stats.vertices,
            chunk.stats.edges,
            chunk.stats.max_degree,
            chunk.stats.diameter
        );
    }

    let hm = HeteroMap::with_decision_tree();
    for workload in [Workload::PageRank, Workload::Bfs, Workload::SsspDelta] {
        let report = hm.schedule_stream(workload, &graph, budget);
        let (gpu, mc) = report.accelerator_split();
        println!(
            "\n{}: {} chunks -> {} on GPU, {} on multicore; total {:.2} ms, {:.2} J",
            workload.abbrev(),
            report.chunks.len(),
            gpu,
            mc,
            report.total_time_ms(),
            report.total_energy_j()
        );
        for p in &report.chunks {
            print!(
                " {}",
                if gpu > 0 && p.accelerator() == heteromap_model::Accelerator::Gpu {
                    "G"
                } else {
                    "M"
                }
            );
        }
        println!();
    }
    println!(
        "\nPer-chunk prediction lets sparse and dense regions of one graph\n\
         land on different accelerators — the paper's \"prediction paradigm\n\
         takes in graph chunk characteristics\" (§II)."
    );
}
