//! Fleet scheduling: a small heterogeneous cluster absorbing a bursty job
//! stream while one device fails mid-run, with jobs migrating off it.
//!
//! The predictor-driven greedy placer routes around the outage (its quotes
//! mark the Down device untargetable, and transient-flaky devices cost
//! more), while the health-blind random baseline keeps landing jobs on sick
//! devices and pays for it in migrations and blown deadlines.
//!
//! Run with: `cargo run --release --example fleet_schedule`

use heteromap_accel::FaultState;
use heteromap_fleet::{Cluster, FleetSim, FleetTrace, Placer};

/// A seed whose fault schedule takes a device Down in a middle episode (and
/// leaves episode 0 quiet), found by deterministic scan so the story is
/// stable run to run.
fn seed_with_midrun_outage(intensity: f64, devices: usize, episodes: u32) -> (u64, usize, u32) {
    for seed in 0..10_000u64 {
        let trace = FleetTrace::heavy(seed, intensity);
        let quiet_start = (0..devices).all(|d| trace.fault_for(d, 0) == FaultState::Healthy);
        if !quiet_start {
            continue;
        }
        for episode in 1..episodes.saturating_sub(1) {
            for device in 0..devices {
                if trace.fault_for(device, episode) == FaultState::Down {
                    return (seed, device, episode);
                }
            }
        }
    }
    panic!("no seed under 10k produces a mid-run outage at intensity {intensity}");
}

fn main() {
    let intensity = 0.25;
    let cluster = Cluster::uniform(1);
    let probe = FleetTrace::heavy(0, intensity);
    let episodes = probe.rounds / probe.episode_len;
    let (seed, down_device, down_episode) =
        seed_with_midrun_outage(intensity, cluster.len(), episodes);
    // The bursty heavy stream, backed off so the interesting losses come
    // from faults rather than raw oversubscription. "load" is normalized to
    // every job running on its *best* device — an optimistic bar on a
    // heterogeneous cluster, where a job's slow devices may not meet its
    // deadline at all — so 0.5 still keeps the fleet busy.
    let trace = FleetTrace {
        load: 0.5,
        ..FleetTrace::heavy(seed, intensity)
    };

    println!(
        "cluster: {} devices (one of each paper accelerator), trace seed {seed}",
        cluster.len()
    );
    println!(
        "bursty stream: ~{} jobs/round for {} rounds at {:.0}% of capacity\n",
        trace.mean_arrivals,
        trace.rounds,
        trace.load * 100.0
    );

    println!("fault timeline (episodes of {} rounds):", trace.episode_len);
    for device in 0..cluster.len() {
        let spec = &cluster.devices()[device].spec;
        let marks: Vec<&str> = (0..episodes)
            .map(|e| match trace.fault_for(device, e) {
                FaultState::Healthy => ".",
                FaultState::Transient { .. } => "t",
                FaultState::Degraded { .. } => "d",
                FaultState::Down => "X",
            })
            .collect();
        println!("  device {device} ({:<14}) {}", spec.name, marks.join(" "));
    }
    println!(
        "\ndevice {down_device} goes Down in episode {down_episode} — mid-run, \
         with jobs already queued.\n"
    );

    for placer in [Placer::Greedy, Placer::Random] {
        let sim = FleetSim::new(trace, cluster.clone(), placer);
        let report = sim.run(4);
        assert!(report.fully_accounted());
        println!("--- {placer} placement ---");
        println!(
            "  {} jobs: {} good, {} late, {} failed, {} shed",
            report.jobs, report.good, report.late, report.failed, report.shed
        );
        println!(
            "  {} migrations off failing devices, {} breaker trips",
            report.migrations, report.breaker_opens
        );
        println!(
            "  goodput {:.1} jobs/s, p99 completion {:.1} ms, mean utilization {:.0}%\n",
            report.jobs_per_sec,
            report.p99_ms,
            report.avg_utilization * 100.0
        );
    }

    println!(
        "The greedy placer sheds what it cannot finish on time and routes around\n\
         the outage; random placement keeps feeding the sick devices, so its jobs\n\
         migrate (or die) and its tail latency explodes."
    );
}
