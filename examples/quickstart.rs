//! Quickstart: schedule the paper's workloads on the primary
//! multi-accelerator setup with the zero-training decision tree, then with
//! a trained deep learner.
//!
//! Run with: `cargo run --release --example quickstart`

use heteromap::HeteroMap;
use heteromap_graph::datasets::Dataset;
use heteromap_model::Workload;

fn main() {
    // 1. The Section-IV decision-tree heuristic needs no training.
    let tree = HeteroMap::with_decision_tree();
    println!("decision-tree placements on the GTX-750Ti + Xeon Phi pair:\n");
    for (w, d) in [
        (Workload::SsspBf, Dataset::UsaCal),
        (Workload::SsspDelta, Dataset::UsaCal),
        (Workload::Bfs, Dataset::Twitter),
        (Workload::PageRank, Dataset::LiveJournal),
        (Workload::TriangleCount, Dataset::MouseRetina),
    ] {
        let p = tree.schedule(w, d);
        println!(
            "  {:>10} on {:>4} -> {:<9} {:>10.2} ms  (util {:>4.1}%, {:.1} J)",
            w.abbrev(),
            d.abbrev(),
            p.accelerator().to_string(),
            p.report.time_ms,
            p.report.utilization * 100.0,
            p.report.energy_j
        );
    }

    // 2. The paper's best learner: Deep.128, trained offline on autotuned
    //    synthetic benchmark-input combinations (a few seconds here;
    //    "several hours" on the paper's physical testbed).
    println!("\ntraining Deep.128 on 300 synthetic combinations...");
    let deep = HeteroMap::with_trained_deep(300, 42);
    println!("trained predictor: {}\n", deep.predictor_name());
    for d in Dataset::all() {
        let p = deep.schedule(Workload::SsspDelta, d);
        println!(
            "  SSSP-Delta on {:>4} -> {:<9} {:>10.2} ms",
            d.abbrev(),
            p.accelerator().to_string(),
            p.report.time_ms
        );
    }
}
