//! The paper's Fig. 1 motivation, end to end — and with *real kernels*:
//! runs Δ-stepping SSSP on a road-network surrogate and a dense-matrix
//! surrogate across host thread counts, then shows how the simulator's
//! accelerator choice mirrors the measured shape.
//!
//! Run with: `cargo run --release --example road_vs_social`

use heteromap::HeteroMap;
use heteromap_graph::datasets::Dataset;
use heteromap_kernels::KernelRunner;
use heteromap_model::Workload;

fn main() {
    println!("real host execution: SSSP-Delta on structural surrogates\n");
    for dataset in [Dataset::UsaCal, Dataset::Cage14] {
        let graph = dataset.surrogate_graph(20_000, 7);
        let s = graph.stats();
        println!(
            "--- {} surrogate: {} vertices, {} edges, diameter {} ---",
            dataset.full_name(),
            s.vertices,
            s.edges,
            s.diameter
        );
        for threads in [1usize, 2, 4, 8] {
            let run = KernelRunner::new(threads).run(Workload::SsspDelta, &graph);
            println!(
                "  {threads:>2} threads: {:>8.2} ms (checksum {:.0})",
                run.elapsed.as_secs_f64() * 1e3,
                run.output.checksum()
            );
        }
        println!();
    }

    println!("simulated accelerator choice for the full-scale inputs:\n");
    let hm = HeteroMap::with_decision_tree();
    for dataset in [Dataset::UsaCal, Dataset::Cage14] {
        let p = hm.schedule(Workload::SsspDelta, dataset);
        println!(
            "  SSSP-Delta on {:>4} -> {} ({:.2} ms simulated)",
            dataset.abbrev(),
            p.accelerator(),
            p.report.time_ms
        );
    }
    println!(
        "\nThe road network's huge diameter produces long dependency chains\n\
         (multicore-friendly); the dense matrix parallelizes across the\n\
         GPU's thread surplus — the Fig. 1 trade-off."
    );
}
