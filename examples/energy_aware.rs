//! Energy-objective scheduling (§VII-C): train HeteroMap for energy instead
//! of completion time and compare the placements and joules.
//!
//! Run with: `cargo run --release --example energy_aware`

use heteromap::HeteroMap;
use heteromap_accel::system::MultiAcceleratorSystem;
use heteromap_graph::datasets::Dataset;
use heteromap_model::Workload;
use heteromap_predict::Objective;

fn main() {
    let system = MultiAcceleratorSystem::primary();
    println!("training two Deep.128 models (performance vs energy objective)...\n");
    let perf = HeteroMap::train_deep_for(system.clone(), 300, 42, Objective::Performance);
    let energy = HeteroMap::train_deep_for(system, 300, 42, Objective::Energy);

    println!(
        "{:<12}{:>6} | {:>22} | {:>22}",
        "combo", "", "performance-trained", "energy-trained"
    );
    let mut perf_joules = 0.0;
    let mut energy_joules = 0.0;
    for w in [
        Workload::SsspBf,
        Workload::PageRank,
        Workload::TriangleCount,
    ] {
        for d in [Dataset::Facebook, Dataset::Cage14, Dataset::RggN24] {
            let p = perf.schedule(w, d);
            let e = energy.schedule(w, d);
            perf_joules += p.report.energy_j;
            energy_joules += e.report.energy_j;
            println!(
                "{:<12}{:>6} | {:>9} {:>7.1} J | {:>9} {:>7.1} J",
                w.abbrev(),
                d.abbrev(),
                p.accelerator().to_string(),
                p.report.energy_j,
                e.accelerator().to_string(),
                e.report.energy_j
            );
        }
    }
    println!(
        "\ntotal: {perf_joules:.1} J (performance objective) vs {energy_joules:.1} J \
         (energy objective)"
    );
    println!(
        "The Xeon Phi's 300 W rating pushes energy-trained placements toward\n\
         the 60 W GPU wherever times are close — the paper's 2.4x energy\n\
         benefit mechanism (Fig. 12)."
    );
}
