//! Deploying predicted machine choices on *real host kernels*: the
//! predicted `M` configuration (threads from M2×M3, schedule from M11,
//! chunk grain from M12) is mapped onto the host thread pool and executed,
//! closing the loop between prediction and actual parallel execution.
//!
//! Run with: `cargo run --release --example deploy_real`

use heteromap::HeteroMap;
use heteromap_graph::datasets::Dataset;
use heteromap_kernels::par::Scheduler;
use heteromap_kernels::KernelRunner;
use heteromap_model::Workload;

fn main() {
    let hm = HeteroMap::with_decision_tree();
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    println!("host budget: {host_threads} threads\n");

    for (w, d) in [
        (Workload::SsspDelta, Dataset::UsaCal),
        (Workload::TriangleCount, Dataset::Facebook),
        (Workload::Bfs, Dataset::Cage14),
    ] {
        let placement = hm.schedule(w, d);
        let spec = hm.system().spec_for(placement.accelerator());
        let limits = spec.deploy_limits();
        let runner = KernelRunner::from_mconfig(&placement.config, &limits, host_threads);
        let graph = d.surrogate_graph(15_000, 11);

        println!(
            "--- {w} on {} (surrogate: {} V, {} E) ---",
            d.abbrev(),
            graph.vertex_count(),
            graph.edge_count()
        );
        println!(
            "  predicted: {} | M11 = {} | deployed host threads: {}",
            placement.accelerator(),
            placement.config.schedule,
            runner.threads()
        );
        let deployed = runner.run(w, &graph);
        // Compare against naive single-threaded static execution.
        let naive = KernelRunner::new(1).run(w, &graph);
        // And an intentionally mismatched schedule.
        let mismatched = KernelRunner::new(runner.threads())
            .with_scheduler(Scheduler::Dynamic { grain: 1 })
            .run(w, &graph);
        println!(
            "  deployed config: {:>8.2} ms | 1-thread: {:>8.2} ms | grain-1 dynamic: {:>8.2} ms",
            deployed.elapsed.as_secs_f64() * 1e3,
            naive.elapsed.as_secs_f64() * 1e3,
            mismatched.elapsed.as_secs_f64() * 1e3
        );
        assert_eq!(
            deployed.output.checksum(),
            naive.output.checksum(),
            "deployment must not change results"
        );
        println!("  results identical across configurations ✓\n");
    }
}
