//! End-to-end prediction serving: train the Deep.128 learner offline,
//! persist its weights, reload them into a serving engine, and serve a
//! mixed 10k-request stream with the sharded cache and batched inference,
//! finishing with the metrics snapshot as JSON.
//!
//! Run with: `cargo run --release --example serve_predictions [samples]`
//!
//! With tracing enabled — `HETEROMAP_TRACE=full cargo run --release
//! --example serve_predictions` — the run additionally writes a
//! chrome://tracing profile (open it at `chrome://tracing` or
//! <https://ui.perfetto.dev>) and prints the per-phase time table.

use heteromap::HeteroMap;
use heteromap_accel::system::MultiAcceleratorSystem;
use heteromap_graph::datasets::Dataset;
use heteromap_graph::GraphStats;
use heteromap_model::Workload;
use heteromap_predict::nn::TrainConfig;
use heteromap_predict::persist::{load_model_file, save_model_file};
use heteromap_predict::{NeuralPredictor, Objective, PersistedModel, Trainer};
use heteromap_serve::{ServeConfig, ServeEngine};

const REQUESTS: usize = 10_000;
const THREADS: usize = 4;

fn main() {
    let samples: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let system = MultiAcceleratorSystem::primary();

    println!("1. training Deep.128 on {samples} autotuned synthetic combos...");
    let trainer = Trainer::new(system.clone()).with_objective(Objective::Performance);
    let db = trainer.generate_database(samples, 42);
    let nn = NeuralPredictor::train(
        &db,
        TrainConfig {
            hidden: 128,
            seed: 42,
            ..TrainConfig::default()
        },
    );

    let path = std::env::temp_dir().join("heteromap-deep128.model");
    println!("2. persisting weights to {}...", path.display());
    save_model_file(&PersistedModel::Nn(nn), &path).expect("persist model");

    println!("3. reloading the persisted model into a serving engine...");
    let PersistedModel::Nn(reloaded) = load_model_file(&path).expect("reload model") else {
        panic!("expected a neural model");
    };
    let engine = ServeEngine::new(
        HeteroMap::new(system, Box::new(reloaded)),
        ServeConfig::default(),
    );

    // A mixed stream over every (workload, dataset) combination — the
    // repetition a long-running serving process actually sees.
    let combos: Vec<(Workload, GraphStats)> = Workload::all()
        .into_iter()
        .flat_map(|w| Dataset::all().into_iter().map(move |d| (w, d.stats())))
        .collect();
    let requests: Vec<(Workload, GraphStats)> = (0..REQUESTS)
        .map(|idx| combos[(idx * 13) % combos.len()])
        .collect();

    println!(
        "4. serving {REQUESTS} requests ({} distinct combinations) on {THREADS} threads...",
        combos.len()
    );
    let report = engine.run_closed_loop(&requests, THREADS);
    println!(
        "   {} requests in {:.1} ms -> {:.0} req/s\n",
        report.requests, report.wall_ms, report.throughput_rps
    );

    println!("5. metrics snapshot:");
    println!("{}", engine.metrics().snapshot().to_json());

    if heteromap_obs::enabled() {
        let trace_path = heteromap_obs::trace_file_path();
        let snap = heteromap_obs::write_chrome_trace(&trace_path).expect("write chrome trace");
        println!(
            "\n6. wrote {} ({} spans, {} events) -- open in chrome://tracing",
            trace_path.display(),
            snap.spans.len(),
            snap.events.len()
        );
        print!("{}", snap.phase_table());
    }

    std::fs::remove_file(&path).ok();
}
