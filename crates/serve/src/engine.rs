//! The concurrent prediction-serving engine.
//!
//! [`ServeEngine`] wraps a [`HeteroMap`] instance behind a sharded
//! prediction cache and a batched inference path, so a long-running serving
//! process answers repeated `(B, I)` queries without re-running the neural
//! forward pass:
//!
//! * **cache hit** — the stored [`MConfig`] is re-deployed through the
//!   analytic cost model (deterministic, sub-microsecond) and charged
//!   [`ServeConfig::hit_overhead_ms`] of predictor overhead;
//! * **cache miss** — the predictor runs (optionally batched across
//!   concurrent misses into one matrix-matrix forward pass, with
//!   single-flight dedup of identical keys) and the completion time is
//!   charged the full inference cost,
//!   `inference_flops × flop_ns` (§V-A's overhead accounting made
//!   deterministic — no wall clock in the placement).
//!
//! Because the cache stores the *prediction* and deploy re-runs per request,
//! every mode returns the same placement for the same (workload, statistics,
//! fault plan): hits, batched misses and the uncached baseline differ only
//! in the overhead they charge.

use crate::cache::{CachedPrediction, IdentityState, InsertOutcome, PredKey, ShardedCache};
use crate::metrics::{Counter, MetricsRegistry, PeakGauge};
use crate::mpsc::SlotRing;
use crate::pad::CacheAligned;
use heteromap::{DeployOptions, HeteroMap, Placement, StreamReport};
use heteromap_accel::cost::WorkloadContext;
use heteromap_accel::FaultPlan;
use heteromap_graph::datasets::Dataset;
use heteromap_graph::{CsrGraph, GraphStats};
use heteromap_model::{BVector, IVector, MConfig, Workload};
use heteromap_obs::metrics::{SeriesSnapshot, SeriesValue};
use heteromap_predict::Predictor;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// How a request resolves its prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// Always run the predictor (the pre-serving baseline).
    Uncached,
    /// Consult the sharded cache; misses run the predictor individually.
    Cached,
    /// Consult the cache; concurrent misses coalesce into batched forward
    /// passes with single-flight dedup of identical keys.
    CachedBatched,
}

/// Serving-engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Prediction-resolution strategy.
    pub mode: ServeMode,
    /// Cache shard count (lock granularity).
    pub shards: usize,
    /// Total cached predictions across shards.
    pub capacity: usize,
    /// Largest coalesced inference batch.
    pub max_batch: usize,
    /// Batch-assembly lanes. Each lane is an independent lock-free
    /// submission ring with its own single-flight map and leader, selected
    /// by key hash — concurrent misses on different lanes never contend, so
    /// batching scales with threads instead of convoying behind one global
    /// leader.
    pub lanes: usize,
    /// Simulated cost of one predictor FLOP in nanoseconds; a miss charges
    /// `inference_flops × flop_ns` into the placement's completion time.
    pub flop_ns: f64,
    /// Predictor overhead charged on a cache hit (milliseconds). The paper
    /// charges inference latency into completion time (§V-A); a hit skips
    /// inference, so this defaults to zero.
    pub hit_overhead_ms: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            mode: ServeMode::CachedBatched,
            shards: 16,
            capacity: 65_536,
            max_batch: 64,
            lanes: default_lanes(),
            flop_ns: 1.0,
            hit_overhead_ms: 0.0,
        }
    }
}

impl ServeConfig {
    /// A configuration with the given mode and defaults elsewhere.
    pub fn with_mode(mode: ServeMode) -> Self {
        ServeConfig {
            mode,
            ..ServeConfig::default()
        }
    }

    /// Overrides the batch-assembly lane count (builder style). Any
    /// positive count is valid — lane selection is a modulo over the key
    /// hash — and results are lane-count-independent; the count only sets
    /// how many concurrent misses can assemble batches without contending.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes.max(1);
        self
    }
}

/// The default lane count: one per available hardware thread (clamped to
/// `[1, 64]`), so batch assembly scales with the host without tuning. Falls
/// back to 8 lanes when the host's parallelism cannot be queried.
pub fn default_lanes() -> usize {
    std::thread::available_parallelism().map_or(8, |n| n.get().clamp(1, 64))
}

/// Where one request's prediction came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeSource {
    /// Found in the cache.
    CacheHit,
    /// Computed by the predictor.
    Computed {
        /// Whether the prediction rode in a coalesced batch.
        batched: bool,
    },
    /// Served from the cache by the overload-shedding path: under
    /// admission-control pressure a possibly-stale cached prediction beats
    /// dropping the request (see `heteromap_serve::admission`).
    StaleHit,
}

/// One served request: the placement plus serving provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Served {
    /// The scheduling decision and simulated outcome.
    pub placement: Placement,
    /// Where the prediction came from.
    pub source: ServeSource,
    /// Measured wall-clock serving latency (milliseconds). Unlike the
    /// simulated overhead inside the placement this is real time — it feeds
    /// the metrics histograms, not the cost model.
    pub serve_latency_ms: f64,
}

/// Throughput summary from [`ServeEngine::run_closed_loop`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClosedLoopReport {
    /// Requests served.
    pub requests: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock duration of the loop (milliseconds).
    pub wall_ms: f64,
    /// Requests per second.
    pub throughput_rps: f64,
}

/// Single-flight rendezvous: the first thread to miss a key computes it,
/// duplicates block here until the value lands.
#[derive(Debug, Default)]
struct Slot {
    ready: Mutex<Option<CachedPrediction>>,
    cond: Condvar,
}

impl Slot {
    fn try_get(&self) -> Option<CachedPrediction> {
        *self.ready.lock().expect("slot poisoned")
    }

    fn wait(&self) -> CachedPrediction {
        let mut ready = self.ready.lock().expect("slot poisoned");
        loop {
            if let Some(v) = *ready {
                return v;
            }
            ready = self.cond.wait(ready).expect("slot poisoned");
        }
    }

    /// Waits at most `timeout` for the value. Owners use this while another
    /// thread leads their lane: the bounded sleep yields the core (vital on
    /// low-core hosts) without risking a missed wakeup hang.
    fn wait_timeout(&self, timeout: Duration) -> Option<CachedPrediction> {
        let ready = self.ready.lock().expect("slot poisoned");
        if ready.is_some() {
            return *ready;
        }
        let (ready, _) = self
            .cond
            .wait_timeout(ready, timeout)
            .expect("slot poisoned");
        *ready
    }

    fn fill(&self, value: CachedPrediction) {
        *self.ready.lock().expect("slot poisoned") = Some(value);
        self.cond.notify_all();
    }
}

/// One queued inference request awaiting a batch leader.
#[derive(Debug)]
struct BatchItem {
    key: PredKey,
    b: BVector,
    i: IVector,
    generation: u64,
    slot: Arc<Slot>,
}

/// One independent batch-assembly lane: a lock-free submission ring, the
/// lane's single-flight dedup map, and a leader mutex that serializes only
/// *this lane's* drains. Lanes are selected by key hash (high bits, so lane
/// choice is independent of cache-shard choice) and each sits on its own
/// cache line.
///
/// The occupancy metrics are pre-registered plain atomics (no allocation,
/// no hub lookup) so the warm request path stays allocation-free; they are
/// folded into the exposition by [`ServeEngine::lane_series`].
#[derive(Debug)]
struct Lane {
    inflight: Mutex<HashMap<PredKey, Arc<Slot>, IdentityState>>,
    queue: SlotRing<BatchItem>,
    leader: Mutex<()>,
    /// Drains led on this lane.
    drains: Counter,
    /// Items resolved by this lane's drains.
    drained_items: Counter,
    /// Peak ring occupancy observed at enqueue time.
    occupancy_peak: PeakGauge,
}

impl Lane {
    fn new(queue_capacity: usize) -> Self {
        Lane {
            inflight: Mutex::new(HashMap::default()),
            queue: SlotRing::new(queue_capacity),
            leader: Mutex::new(()),
            drains: Counter::new(),
            drained_items: Counter::new(),
            occupancy_peak: PeakGauge::new(),
        }
    }
}

/// Reusable per-thread buffers for batch assembly: the drained items, the
/// flattened queries and the prediction outputs. Warm after the first batch
/// on each thread, making the miss path allocation-free in steady state too.
#[derive(Debug, Default)]
struct AssemblyScratch {
    batch: Vec<BatchItem>,
    queries: Vec<(BVector, IVector)>,
    raw: Vec<MConfig>,
    preds: Vec<(MConfig, u32)>,
}

thread_local! {
    static ASSEMBLY: RefCell<AssemblyScratch> = RefCell::new(AssemblyScratch::default());
}

/// How long a queued owner sleeps on its slot while another thread holds the
/// lane leadership, before re-checking for the leader lock itself.
const OWNER_WAIT: Duration = Duration::from_micros(100);

/// A concurrent prediction-serving engine over one [`HeteroMap`] instance.
///
/// Shared-state layout: the model sits behind a `RwLock` (requests read,
/// fault-plan/predictor swaps write and invalidate the cache while holding
/// the write lock, so no request ever pairs an old-generation value with a
/// new model). Batch assembly is sharded across [`ServeConfig::lanes`]
/// independent lanes: a miss reserves a slot in its lane's lock-free ring,
/// then whichever owner takes that lane's leader lock drains up to
/// [`ServeConfig::max_batch`] queued items — its own and any concurrent
/// same-lane misses — and resolves them with one batched
/// [`HeteroMap::predict_configs_into`] call. Misses on different lanes
/// proceed fully in parallel, which is what keeps batched throughput at or
/// above plain cached throughput at every thread count.
#[derive(Debug)]
pub struct ServeEngine {
    model: RwLock<HeteroMap>,
    cache: ShardedCache,
    lanes: Vec<CacheAligned<Lane>>,
    metrics: Arc<MetricsRegistry>,
    config: ServeConfig,
}

impl ServeEngine {
    /// Wraps `model` in a serving engine.
    pub fn new(model: HeteroMap, config: ServeConfig) -> Self {
        // Each lane's ring holds several max batches so producers only hit
        // the full-ring fallback under extreme skew.
        let queue_capacity = config.max_batch.max(1).saturating_mul(4).max(64);
        ServeEngine {
            model: RwLock::new(model),
            cache: ShardedCache::new(config.shards, config.capacity),
            lanes: (0..config.lanes.max(1))
                .map(|_| CacheAligned::new(Lane::new(queue_capacity)))
                .collect(),
            metrics: Arc::new(MetricsRegistry::new()),
            config,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The engine's metrics registry (shared; snapshot at any time).
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// Per-lane occupancy series: drains led, items drained and peak ring
    /// occupancy for each batch-assembly lane, labeled `lane="<index>"`.
    pub fn lane_series(&self) -> Vec<SeriesSnapshot> {
        let mut out = Vec::with_capacity(self.lanes.len() * 3);
        for (i, lane) in self.lanes.iter().enumerate() {
            let labels = vec![("lane".to_string(), i.to_string())];
            out.push(SeriesSnapshot {
                name: "serve_lane_drains_total".to_string(),
                labels: labels.clone(),
                help: "Batch drains led per lane".to_string(),
                value: SeriesValue::Counter(lane.drains.get()),
            });
            out.push(SeriesSnapshot {
                name: "serve_lane_drained_items_total".to_string(),
                labels: labels.clone(),
                help: "Requests resolved by per-lane drains".to_string(),
                value: SeriesValue::Counter(lane.drained_items.get()),
            });
            out.push(SeriesSnapshot {
                name: "serve_lane_occupancy_peak".to_string(),
                labels,
                help: "Peak submission-ring occupancy per lane".to_string(),
                value: SeriesValue::Gauge(lane.occupancy_peak.get() as f64),
            });
        }
        out
    }

    /// Renders the registry plus the per-lane occupancy series in the
    /// Prometheus text exposition format.
    pub fn prometheus_text(&self) -> String {
        let mut series = self.metrics.series();
        series.extend(self.lane_series());
        series.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        heteromap_obs::metrics::prometheus_text(&series)
    }

    /// Cached predictions currently held.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// The deterministic predictor overhead charged on a miss:
    /// `inference_flops × flop_ns`, in milliseconds.
    pub fn miss_overhead_ms(&self) -> f64 {
        let model = self.model.read().expect("model lock poisoned");
        model.predictor().inference_flops() as f64 * self.config.flop_ns * 1e-6
    }

    /// Serves a named paper workload on a Table I dataset.
    pub fn schedule(&self, workload: Workload, dataset: Dataset) -> Served {
        self.schedule_stats(workload, dataset.stats())
    }

    /// Serves a named workload on arbitrary input statistics.
    pub fn schedule_stats(&self, workload: Workload, stats: GraphStats) -> Served {
        self.schedule_context(&WorkloadContext::for_workload(workload, stats))
    }

    /// Serves a fully custom workload context.
    pub fn schedule_context(&self, ctx: &WorkloadContext) -> Served {
        self.schedule_context_opts(ctx, DeployOptions::default())
    }

    /// [`ServeEngine::schedule_context`] with per-request
    /// [`DeployOptions`]: the deadline and breaker routing are threaded
    /// through prediction resolution (cache, single-flight, batching) into
    /// the resilient deploy loop, so backoff never outlives the request's
    /// budget and open-breaker accelerators are routed around with the
    /// configuration re-clamped.
    pub fn schedule_context_opts(&self, ctx: &WorkloadContext, opts: DeployOptions) -> Served {
        let _span = heteromap_obs::span_cat("serve", "serve");
        let start = Instant::now();
        let model = self.model.read().expect("model lock poisoned");
        let i = model.ivector(&ctx.stats);
        let key = PredKey::new(&ctx.b, &i);
        let miss_ms = model.predictor().inference_flops() as f64 * self.config.flop_ns * 1e-6;

        let (prediction, source, overhead_ms) = match self.config.mode {
            ServeMode::Uncached => {
                let (config, fallbacks) = model.predict_config(&ctx.b, &i);
                let pred = CachedPrediction { config, fallbacks };
                (pred, ServeSource::Computed { batched: false }, miss_ms)
            }
            ServeMode::Cached => match self.cache.get(&key) {
                Some(pred) => {
                    self.metrics.cache_hits.inc();
                    (pred, ServeSource::CacheHit, self.config.hit_overhead_ms)
                }
                None => {
                    self.metrics.cache_misses.inc();
                    let generation = self.cache.generation();
                    let (config, fallbacks) = model.predict_config(&ctx.b, &i);
                    let pred = CachedPrediction { config, fallbacks };
                    self.insert_counted(key, pred, generation);
                    (pred, ServeSource::Computed { batched: false }, miss_ms)
                }
            },
            ServeMode::CachedBatched => match self.cache.get(&key) {
                Some(pred) => {
                    self.metrics.cache_hits.inc();
                    (pred, ServeSource::CacheHit, self.config.hit_overhead_ms)
                }
                None => {
                    self.metrics.cache_misses.inc();
                    let pred = self.compute_batched(&model, key, ctx.b, i);
                    (pred, ServeSource::Computed { batched: true }, miss_ms)
                }
            },
        };

        self.finish(&model, ctx, prediction, source, overhead_ms, opts, start)
    }

    /// Peeks the cache for an already-resolved prediction without running
    /// any inference — the overload-shedding path uses this to serve a
    /// possibly-stale answer instead of dropping the request.
    pub fn peek_cached(&self, ctx: &WorkloadContext) -> Option<CachedPrediction> {
        let model = self.model.read().expect("model lock poisoned");
        let i = model.ivector(&ctx.stats);
        self.cache.get(&PredKey::new(&ctx.b, &i))
    }

    /// Deploys an already-cached prediction under [`DeployOptions`],
    /// charging only [`ServeConfig::hit_overhead_ms`] — the shedding path
    /// of the admission controller ([`ServeSource::StaleHit`]).
    pub fn serve_stale(&self, ctx: &WorkloadContext, opts: DeployOptions) -> Option<Served> {
        let start = Instant::now();
        let model = self.model.read().expect("model lock poisoned");
        let i = model.ivector(&ctx.stats);
        let prediction = self.cache.get(&PredKey::new(&ctx.b, &i))?;
        Some(self.finish(
            &model,
            ctx,
            prediction,
            ServeSource::StaleHit,
            self.config.hit_overhead_ms,
            opts,
            start,
        ))
    }

    /// Shared tail of every serving path: deploy the prediction, record
    /// metrics, and time the request.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        model: &HeteroMap,
        ctx: &WorkloadContext,
        prediction: CachedPrediction,
        source: ServeSource,
        overhead_ms: f64,
        opts: DeployOptions,
        start: Instant,
    ) -> Served {
        let placement = model.deploy_predicted_opts(
            ctx,
            prediction.config,
            overhead_ms,
            prediction.fallbacks,
            opts,
        );
        self.metrics.record_placement(&placement);
        // Nanosecond-resolution recording: sub-µs cached serves must land in
        // distinct histogram buckets, not collapse into "1 µs".
        let elapsed_ns = start.elapsed().as_nanos() as u64;
        self.metrics.schedule_latency.record_ns(elapsed_ns);
        let serve_latency_ms = elapsed_ns as f64 / 1e6;
        Served {
            placement,
            source,
            serve_latency_ms,
        }
    }

    /// Resolves one miss through the sharded single-flight/batching
    /// machinery.
    ///
    /// The key's hash selects an assembly lane. The first thread to miss a
    /// key owns its slot and reserves a ring position lock-free; duplicates
    /// wait on the slot. Owners then try the *lane's* leader lock: whoever
    /// holds it drains up to `max_batch` queued items (its own plus any
    /// concurrent same-lane misses) and resolves them with one batched
    /// forward pass. An owner that loses the race sleeps on its slot with a
    /// bounded timeout instead of blocking on the lock, so it never convoys
    /// behind an unrelated drain. Items are only removed from the ring — and
    /// slots only filled — under the lane leader lock, so an owner whose
    /// slot is still empty after taking the lock is guaranteed its item is
    /// still queued.
    fn compute_batched(
        &self,
        model: &HeteroMap,
        key: PredKey,
        b: BVector,
        i: IVector,
    ) -> CachedPrediction {
        let lane: &Lane = &self.lanes[key.lane_index(self.lanes.len())];
        let (slot, owner) = {
            let mut inflight = lane.inflight.lock().expect("inflight lock poisoned");
            match inflight.get(&key) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot = Arc::new(Slot::default());
                    inflight.insert(key, Arc::clone(&slot));
                    (slot, true)
                }
            }
        };
        if !owner {
            self.metrics.single_flight_waits.inc();
            let _span = heteromap_obs::span_cat("batch.wait", "serve");
            return slot.wait();
        }

        // Uncontended fast path: if lane leadership is free and nothing is
        // queued, there is nothing to batch with — resolve inline, skipping
        // the ring round-trip. This keeps a cold or low-traffic miss as
        // cheap as the plain cached path; the assembly machinery below only
        // engages when a drain is already running or other misses are
        // queued behind it. Filling the slot under the leader lock
        // preserves the lane invariant (slots are only filled by the
        // current leader).
        if let Ok(_lead) = lane.leader.try_lock() {
            if lane.queue.is_empty() {
                let generation = self.cache.generation();
                let (config, fallbacks) = model.predict_config(&b, &i);
                let value = CachedPrediction { config, fallbacks };
                self.insert_counted(key, value, generation);
                lane.inflight
                    .lock()
                    .expect("inflight lock poisoned")
                    .remove(&key);
                self.metrics.batches.inc();
                self.metrics.batched_requests.inc();
                self.metrics.batch_sizes.record(1.0);
                slot.fill(value);
                return value;
            }
        }

        let item = BatchItem {
            key,
            b,
            i,
            generation: self.cache.generation(),
            slot: Arc::clone(&slot),
        };
        if let Err(item) = lane.queue.push(item) {
            // Ring full (extreme skew onto one lane): resolve inline instead
            // of spinning for a slot.
            let (config, fallbacks) = model.predict_config(&item.b, &item.i);
            let value = CachedPrediction { config, fallbacks };
            self.insert_counted(item.key, value, item.generation);
            lane.inflight
                .lock()
                .expect("inflight lock poisoned")
                .remove(&item.key);
            item.slot.fill(value);
            return value;
        }
        let depth = lane.queue.len() as u64;
        self.metrics.queue_depth_peak.observe(depth);
        lane.occupancy_peak.observe(depth);

        loop {
            if let Some(value) = slot.try_get() {
                return value;
            }
            match lane.leader.try_lock() {
                Ok(_lead) => {
                    // A drain that completed between our try_get and the
                    // lock may have served us already.
                    if let Some(value) = slot.try_get() {
                        return value;
                    }
                    self.drain_lane(model, lane);
                }
                Err(_) => {
                    // Another thread leads this lane; it fills our slot (or
                    // leaves our item queued for the next drain). Bounded
                    // sleep, then re-check rather than convoying on the lock.
                    if let Some(value) = slot.wait_timeout(OWNER_WAIT) {
                        return value;
                    }
                }
            }
        }
    }

    /// Drains up to `max_batch` items from `lane`'s ring and resolves them
    /// with one batched prediction. Caller must hold the lane's leader lock.
    fn drain_lane(&self, model: &HeteroMap, lane: &Lane) {
        ASSEMBLY.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            scratch.batch.clear();
            while scratch.batch.len() < self.config.max_batch.max(1) {
                match lane.queue.pop() {
                    Some(item) => scratch.batch.push(item),
                    None => break,
                }
            }
            if scratch.batch.is_empty() {
                std::thread::yield_now();
                return;
            }
            let _span = heteromap_obs::span_cat("batch.assemble", "serve");
            scratch.queries.clear();
            scratch
                .queries
                .extend(scratch.batch.iter().map(|it| (it.b, it.i)));
            model.predict_configs_into(&scratch.queries, &mut scratch.raw, &mut scratch.preds);
            self.metrics.batches.inc();
            self.metrics
                .batched_requests
                .add(scratch.batch.len() as u64);
            self.metrics.batch_sizes.record(scratch.batch.len() as f64);
            lane.drains.inc();
            lane.drained_items.add(scratch.batch.len() as u64);
            let mut inflight = lane.inflight.lock().expect("inflight lock poisoned");
            for (item, &(config, fallbacks)) in scratch.batch.iter().zip(&scratch.preds) {
                let value = CachedPrediction { config, fallbacks };
                self.insert_counted(item.key, value, item.generation);
                inflight.remove(&item.key);
                item.slot.fill(value);
            }
            scratch.batch.clear();
        });
    }

    fn insert_counted(&self, key: PredKey, value: CachedPrediction, generation: u64) {
        if self.cache.insert(key, value, generation) == InsertOutcome::InsertedEvicting {
            self.metrics.cache_evictions.inc();
        }
    }

    /// Drops every cached prediction and bumps the cache generation.
    pub fn invalidate(&self) {
        self.cache.invalidate();
        self.metrics.cache_invalidations.inc();
        heteromap_obs::event("cache.invalidate", || "cause=explicit".to_string());
    }

    /// Installs a new fault plan and invalidates the cache atomically (the
    /// invalidation happens under the model write lock, so no request can
    /// pair an old-plan prediction with the new system).
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        let mut model = self.model.write().expect("model lock poisoned");
        model.set_fault_plan(plan);
        self.cache.invalidate();
        self.metrics.cache_invalidations.inc();
        heteromap_obs::event("cache.invalidate", || "cause=fault_plan_change".to_string());
    }

    /// Swaps in a new predictor (e.g. a freshly re-trained model, §VII-D)
    /// and invalidates the cache atomically.
    pub fn replace_predictor(&self, predictor: Box<dyn Predictor + Send + Sync>) {
        let mut model = self.model.write().expect("model lock poisoned");
        model.set_predictor(predictor);
        self.cache.invalidate();
        self.metrics.cache_invalidations.inc();
        heteromap_obs::event("cache.invalidate", || "cause=predictor_swap".to_string());
    }

    /// Runs a closure against the wrapped model (read-locked).
    pub fn with_model<R>(&self, f: impl FnOnce(&HeteroMap) -> R) -> R {
        f(&self.model.read().expect("model lock poisoned"))
    }

    /// Streams `graph` through byte-budgeted chunks with this engine
    /// scheduling each chunk — the cached counterpart of
    /// [`HeteroMap::schedule_stream`], with identical chunking and OOM
    /// re-stream semantics.
    pub fn schedule_stream(
        &self,
        workload: Workload,
        graph: &CsrGraph,
        chunk_byte_budget: usize,
    ) -> StreamReport {
        let report = heteromap::stream_with(graph, chunk_byte_budget, &mut |stats| {
            self.schedule_stats(workload, *stats).placement
        });
        self.metrics.stream_chunks.add(report.chunks.len() as u64);
        self.metrics
            .stream_restreams
            .add(u64::from(report.restreams));
        report
    }

    /// Serves every request across `threads` workers, returning results in
    /// request order. Workers claim requests through a shared cursor, so
    /// concurrent misses on the same key exercise the single-flight and
    /// batching paths.
    pub fn serve_all(&self, requests: &[(Workload, GraphStats)], threads: usize) -> Vec<Served> {
        let threads = threads.max(1).min(requests.len().max(1));
        let cursor = AtomicUsize::new(0);
        let mut indexed: Vec<(usize, Served)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let idx = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(&(workload, stats)) = requests.get(idx) else {
                                break;
                            };
                            out.push((idx, self.schedule_stats(workload, stats)));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("serve worker panicked"))
                .collect()
        });
        indexed.sort_by_key(|(idx, _)| *idx);
        indexed.into_iter().map(|(_, served)| served).collect()
    }

    /// Closed-loop throughput driver: serves every request across `threads`
    /// workers as fast as they are claimed, and reports wall time and
    /// requests/second. The per-request results are discarded (they remain
    /// observable through the metrics registry).
    pub fn run_closed_loop(
        &self,
        requests: &[(Workload, GraphStats)],
        threads: usize,
    ) -> ClosedLoopReport {
        let threads = threads.max(1).min(requests.len().max(1));
        let cursor = AtomicUsize::new(0);
        let start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&(workload, stats)) = requests.get(idx) else {
                        break;
                    };
                    // Results are dropped on the spot: the throughput loop
                    // must not grow a per-thread Vec (which would put an
                    // allocator call on every request and skew the
                    // zero-allocation steady state it exists to measure).
                    let _ = self.schedule_stats(workload, stats);
                });
            }
        });
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        ClosedLoopReport {
            requests: requests.len(),
            threads,
            wall_ms,
            throughput_rps: if wall_ms > 0.0 {
                requests.len() as f64 / (wall_ms / 1e3)
            } else {
                f64::INFINITY
            },
        }
    }
}

/// Helper for tests: predictions for one combination must agree exactly.
#[cfg(test)]
fn assert_same_config(a: &heteromap_model::MConfig, b: &heteromap_model::MConfig) {
    assert_eq!(a, b);
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteromap_graph::gen::{GraphGenerator, PowerLaw};

    fn engine(mode: ServeMode) -> ServeEngine {
        ServeEngine::new(
            HeteroMap::with_decision_tree(),
            ServeConfig::with_mode(mode),
        )
    }

    #[test]
    fn hit_after_miss_on_repeated_request() {
        let e = engine(ServeMode::Cached);
        let first = e.schedule(Workload::Bfs, Dataset::Facebook);
        let second = e.schedule(Workload::Bfs, Dataset::Facebook);
        assert_eq!(first.source, ServeSource::Computed { batched: false });
        assert_eq!(second.source, ServeSource::CacheHit);
        assert_eq!(e.cache_len(), 1);
        let snap = e.metrics().snapshot();
        assert_eq!((snap.cache_hits, snap.cache_misses), (1, 1));
        assert_same_config(&first.placement.config, &second.placement.config);
    }

    #[test]
    fn uncached_mode_never_caches() {
        let e = engine(ServeMode::Uncached);
        for _ in 0..3 {
            let s = e.schedule(Workload::PageRank, Dataset::LiveJournal);
            assert_eq!(s.source, ServeSource::Computed { batched: false });
        }
        assert_eq!(e.cache_len(), 0);
        assert_eq!(e.metrics().snapshot().cache_hits, 0);
    }

    #[test]
    fn batched_single_thread_still_serves() {
        let e = engine(ServeMode::CachedBatched);
        let s = e.schedule(Workload::SsspDelta, Dataset::UsaCal);
        assert_eq!(s.source, ServeSource::Computed { batched: true });
        let snap = e.metrics().snapshot();
        assert_eq!(snap.batches, 1);
        assert_eq!(snap.batched_requests, 1);
        assert_eq!(
            e.schedule(Workload::SsspDelta, Dataset::UsaCal).source,
            ServeSource::CacheHit
        );
    }

    #[test]
    fn lane_series_cover_every_lane_and_round_trip() {
        let e = engine(ServeMode::CachedBatched);
        e.schedule(Workload::Bfs, Dataset::Facebook);
        e.schedule(Workload::PageRank, Dataset::LiveJournal);
        let lanes = e.config().lanes;
        let series = e.lane_series();
        assert_eq!(series.len(), lanes * 3, "three series per lane");
        let text = e.prometheus_text();
        assert!(text.contains("serve_lane_drains_total{lane=\"0\"}"));
        assert!(text.contains("serve_cache_misses_total 2"));
        let parsed = heteromap_obs::metrics::parse_prometheus(&text).unwrap();
        assert!(!parsed.is_empty());
        // The inline fast path resolves solo misses without a drain, so
        // drained items can be zero — but never more than the misses.
        let drained: u64 = series
            .iter()
            .filter(|s| s.name == "serve_lane_drained_items_total")
            .map(|s| match s.value {
                heteromap_obs::metrics::SeriesValue::Counter(v) => v,
                _ => 0,
            })
            .sum();
        assert!(drained <= 2);
    }

    #[test]
    fn invalidation_forces_recompute() {
        let e = engine(ServeMode::Cached);
        e.schedule(Workload::Bfs, Dataset::Facebook);
        e.invalidate();
        assert_eq!(e.cache_len(), 0);
        let s = e.schedule(Workload::Bfs, Dataset::Facebook);
        assert_eq!(s.source, ServeSource::Computed { batched: false });
        assert_eq!(e.metrics().snapshot().cache_invalidations, 1);
    }

    #[test]
    fn fault_plan_change_invalidates_and_changes_outcomes() {
        let e = engine(ServeMode::Cached);
        // SSSP-BF on USA-Cal routes to the GPU when healthy (Fig. 7).
        let healthy = e.schedule(Workload::SsspBf, Dataset::UsaCal);
        assert_eq!(
            healthy.placement.accelerator(),
            heteromap_model::Accelerator::Gpu
        );
        e.set_fault_plan(FaultPlan::gpu_down());
        assert_eq!(e.cache_len(), 0, "plan change must clear the cache");
        let faulted = e.schedule(Workload::SsspBf, Dataset::UsaCal);
        assert_eq!(
            faulted.placement.accelerator(),
            heteromap_model::Accelerator::Multicore,
            "stale cached placement would have kept the dead GPU"
        );
    }

    #[test]
    fn predictor_swap_invalidates() {
        let e = engine(ServeMode::Cached);
        e.schedule(Workload::Bfs, Dataset::Facebook);
        assert_eq!(e.cache_len(), 1);
        e.replace_predictor(Box::new(heteromap_predict::DecisionTree::paper()));
        assert_eq!(e.cache_len(), 0);
        assert!(e.with_model(|m| m.predictor_name().contains("Decision")));
    }

    #[test]
    fn serve_all_preserves_request_order() {
        let e = engine(ServeMode::CachedBatched);
        let requests: Vec<(Workload, GraphStats)> =
            [Dataset::Facebook, Dataset::LiveJournal, Dataset::UsaCal]
                .iter()
                .cycle()
                .take(30)
                .enumerate()
                .map(|(idx, d)| {
                    (
                        if idx % 2 == 0 {
                            Workload::Bfs
                        } else {
                            Workload::PageRank
                        },
                        d.stats(),
                    )
                })
                .collect();
        let served = e.serve_all(&requests, 4);
        assert_eq!(served.len(), requests.len());
        // Order check: re-serving sequentially must give the same configs.
        for (s, (w, stats)) in served.iter().zip(&requests) {
            let again = e.schedule_stats(*w, *stats);
            assert_same_config(&s.placement.config, &again.placement.config);
        }
        let snap = e.metrics().snapshot();
        assert!(snap.cache_hits > 0, "repeats must hit: {snap:?}");
    }

    #[test]
    fn streamed_chunks_are_cached_and_counted() {
        let e = engine(ServeMode::Cached);
        let g = PowerLaw::new(2_000, 4).generate(1);
        let budget = g.footprint_bytes() / 4;
        let report = e.schedule_stream(Workload::PageRank, &g, budget);
        assert!(report.chunks.len() >= 3);
        let snap = e.metrics().snapshot();
        assert_eq!(snap.stream_chunks, report.chunks.len() as u64);
        // The plain and served streaming paths agree chunk by chunk.
        let plain = e.with_model(|m| m.schedule_stream(Workload::PageRank, &g, budget));
        assert_eq!(plain.chunks.len(), report.chunks.len());
        for (a, b) in plain.chunks.iter().zip(&report.chunks) {
            assert_same_config(&a.config, &b.config);
        }
    }

    #[test]
    fn closed_loop_reports_throughput() {
        let e = engine(ServeMode::Cached);
        let requests: Vec<(Workload, GraphStats)> = (0..50)
            .map(|_| (Workload::Bfs, Dataset::Facebook.stats()))
            .collect();
        let report = e.run_closed_loop(&requests, 2);
        assert_eq!(report.requests, 50);
        assert!(report.throughput_rps > 0.0);
        assert!(report.wall_ms >= 0.0);
    }
}
