//! Admission control, load shedding and circuit-breaker routing in front of
//! the serving engine.
//!
//! [`ServeEngine`] always serves; production front-ends must sometimes *not*
//! serve. [`AdmissionController`] adds the three refusal mechanisms a
//! resilient endpoint needs, each returning a typed [`Rejected`] error
//! instead of an unbounded queue or a panic:
//!
//! * **Overload** — a bounded in-flight budget
//!   ([`AdmissionConfig::max_inflight`]). When the budget is full the
//!   controller prefers *shedding onto staleness* over dropping: if the
//!   cache already holds a prediction for the key, the request is served
//!   from it ([`ServeSource::StaleHit`]) without touching the inference
//!   path; only a cold key is rejected with [`Rejected::Overload`].
//! * **Deadlines** — each request carries a simulated completion budget,
//!   threaded through [`DeployOptions`] into the core retry loop so backoff
//!   never outlives the caller. A deploy that cannot fit returns
//!   [`Rejected::Deadline`] and counts a deadline miss.
//! * **Circuit breakers** — a per-accelerator [`BreakerBoard`] fed by every
//!   placement's attempt log. An accelerator failing
//!   `failure_threshold` consecutive requests is routed around (the core
//!   loop re-clamps the predicted configuration for the survivor); after a
//!   request-counted cooldown it is probed Half-open and closed on
//!   consecutive successes. Both breakers open means nothing can be
//!   targeted: [`Rejected::Unhealthy`].
//!
//! Every admission decision, shed, deadline miss and breaker transition
//! emits an obs event and ticks a typed metrics counter, so a degraded
//! serving process explains itself through the flight recorder and the
//! metrics snapshot.

use crate::engine::{ServeEngine, ServeSource, Served};
use crate::metrics::MetricsRegistry;
use heteromap::{AttemptOutcome, BreakerBoard, BreakerConfig, BreakerState, DeployOptions};
use heteromap_accel::cost::WorkloadContext;
use heteromap_graph::GraphStats;
use heteromap_model::{Accelerator, Workload};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Why a request was refused. Every refusal is typed — callers can retry
/// overloads, relax deadlines, or back off from an unhealthy system without
/// parsing strings.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Rejected {
    /// The in-flight budget is full and no cached prediction was available
    /// to shed onto.
    Overload {
        /// The configured in-flight ceiling that was hit.
        max_inflight: usize,
    },
    /// The request could not complete inside its simulated budget.
    Deadline {
        /// Simulated completion time the request would have needed
        /// (`INFINITY` when the budget died before any attempt fit).
        needed_ms: f64,
        /// The budget the caller granted.
        deadline_ms: f64,
    },
    /// No accelerator could take the request: both circuit breakers were
    /// open, or every deploy leg failed.
    Unhealthy,
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::Overload { max_inflight } => {
                write!(f, "overloaded: in-flight budget of {max_inflight} is full")
            }
            Rejected::Deadline {
                needed_ms,
                deadline_ms,
            } => write!(
                f,
                "deadline exceeded: needed {needed_ms:.3} ms of a {deadline_ms:.3} ms budget"
            ),
            Rejected::Unhealthy => {
                write!(f, "unhealthy: no accelerator can take the request")
            }
        }
    }
}

impl std::error::Error for Rejected {}

/// Admission-control tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Concurrent requests allowed past admission.
    pub max_inflight: usize,
    /// Deadline applied by [`AdmissionController::try_schedule_stats`] when
    /// the caller does not supply one (`INFINITY` disables deadlines).
    pub default_deadline_ms: f64,
    /// Per-accelerator circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Whether overloaded requests may be served stale cached predictions
    /// instead of being rejected outright.
    pub stale_on_overload: bool,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_inflight: 1024,
            default_deadline_ms: f64::INFINITY,
            breaker: BreakerConfig::default(),
            stale_on_overload: true,
        }
    }
}

/// The breaker board plus the open/close totals already flushed to the
/// metrics registry, so counter deltas survive arbitrary interleavings.
#[derive(Debug)]
struct BoardSync {
    board: BreakerBoard,
    reported_opens: u64,
    reported_closes: u64,
}

/// Admission control in front of one [`ServeEngine`].
///
/// The controller owns no engine reference — it is passed per call — so one
/// controller can front several engines in tests, and the engine's public
/// API stays usable without admission for trusted internal traffic.
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    inflight: AtomicUsize,
    breakers: Mutex<BoardSync>,
}

/// RAII release of one in-flight slot.
struct InflightGuard<'a>(&'a AtomicUsize);

impl<'a> InflightGuard<'a> {
    fn acquire(inflight: &'a AtomicUsize, max: usize) -> Option<Self> {
        if inflight.fetch_add(1, Ordering::AcqRel) >= max {
            inflight.fetch_sub(1, Ordering::AcqRel);
            return None;
        }
        Some(InflightGuard(inflight))
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

impl AdmissionController {
    /// A controller with the given configuration and both breakers Closed.
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionController {
            breakers: Mutex::new(BoardSync {
                board: BreakerBoard::new(config.breaker),
                reported_opens: 0,
                reported_closes: 0,
            }),
            inflight: AtomicUsize::new(0),
            config,
        }
    }

    /// The controller's configuration.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Requests currently past admission.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Acquire)
    }

    /// Current `(gpu, multicore)` breaker states.
    pub fn breaker_states(&self) -> (BreakerState, BreakerState) {
        let sync = self.breakers.lock().expect("breaker board poisoned");
        (
            sync.board.breaker(Accelerator::Gpu).state(),
            sync.board.breaker(Accelerator::Multicore).state(),
        )
    }

    /// Admits and serves one named workload on arbitrary statistics under
    /// the configured default deadline.
    pub fn try_schedule_stats(
        &self,
        engine: &ServeEngine,
        workload: Workload,
        stats: GraphStats,
    ) -> Result<Served, Rejected> {
        self.try_schedule_context(
            engine,
            &WorkloadContext::for_workload(workload, stats),
            self.config.default_deadline_ms,
        )
    }

    /// Admits and serves one request: in-flight budget, breaker routing,
    /// deadline propagation, then classification of the outcome.
    ///
    /// Admitted requests always resolve — to a placement that completed
    /// within `deadline_ms`, or to a typed [`Rejected`] error. Nothing is
    /// silently dropped.
    pub fn try_schedule_context(
        &self,
        engine: &ServeEngine,
        ctx: &WorkloadContext,
        deadline_ms: f64,
    ) -> Result<Served, Rejected> {
        let metrics = engine.metrics();
        let Some(_guard) = InflightGuard::acquire(&self.inflight, self.config.max_inflight) else {
            return self.shed_overload(engine, ctx, deadline_ms, &metrics);
        };

        let avoid = {
            let mut sync = self.breakers.lock().expect("breaker board poisoned");
            if sync.board.all_open() {
                sync.board.on_shed_open();
                flush_breaker_metrics(&mut sync, &metrics);
                drop(sync);
                metrics.rejected_unhealthy.inc();
                heteromap_obs::event("admit.reject", || "cause=all_breakers_open".to_string());
                return Err(Rejected::Unhealthy);
            }
            let avoid = sync.board.route_avoid();
            if avoid.is_some() {
                sync.board.on_shed_open();
                flush_breaker_metrics(&mut sync, &metrics);
            }
            avoid
        };

        metrics.admitted.inc();
        let opts = DeployOptions::with_deadline_ms(deadline_ms).avoiding(avoid);
        let served = engine.schedule_context_opts(ctx, opts);
        self.classify(served, deadline_ms, &metrics)
    }

    /// Overload path: prefer a stale cached prediction over dropping.
    fn shed_overload(
        &self,
        engine: &ServeEngine,
        ctx: &WorkloadContext,
        deadline_ms: f64,
        metrics: &MetricsRegistry,
    ) -> Result<Served, Rejected> {
        if self.config.stale_on_overload {
            let avoid = {
                let sync = self.breakers.lock().expect("breaker board poisoned");
                sync.board.route_avoid()
            };
            let opts = DeployOptions::with_deadline_ms(deadline_ms).avoiding(avoid);
            if let Some(served) = engine.serve_stale(ctx, opts) {
                metrics.stale_served.inc();
                heteromap_obs::event("admit.shed_stale", || {
                    format!(
                        "vertices={} edges={} deadline_ms={deadline_ms}",
                        ctx.stats.vertices, ctx.stats.edges
                    )
                });
                return self.classify(served, deadline_ms, metrics);
            }
        }
        metrics.rejected_overload.inc();
        let max_inflight = self.config.max_inflight;
        heteromap_obs::event("admit.reject", || {
            format!("cause=overload max_inflight={max_inflight}")
        });
        Err(Rejected::Overload { max_inflight })
    }

    /// Shared tail: feed the attempt log into the breakers, flush breaker
    /// counters, and turn the placement into `Ok` or a typed rejection.
    fn classify(
        &self,
        served: Served,
        deadline_ms: f64,
        metrics: &MetricsRegistry,
    ) -> Result<Served, Rejected> {
        let time_ms = served.placement.report.time_ms;
        let within = time_ms <= deadline_ms;
        let completed = served.placement.completed();
        {
            let mut sync = self.breakers.lock().expect("breaker board poisoned");
            sync.board.on_placement(&served.placement, deadline_ms);
            flush_breaker_metrics(&mut sync, metrics);
        }
        if completed && within {
            return Ok(served);
        }
        let deadline_related = !within
            || served
                .placement
                .attempts
                .records
                .iter()
                .any(|r| matches!(r.outcome, AttemptOutcome::DeadlineExceeded { .. }));
        if deadline_related && deadline_ms.is_finite() {
            metrics.deadline_misses.inc();
            heteromap_obs::event("deadline.miss", || {
                format!("needed_ms={time_ms} deadline_ms={deadline_ms}")
            });
            Err(Rejected::Deadline {
                needed_ms: time_ms,
                deadline_ms,
            })
        } else {
            metrics.rejected_unhealthy.inc();
            heteromap_obs::event("admit.reject", || "cause=all_legs_failed".to_string());
            Err(Rejected::Unhealthy)
        }
    }

    /// Closed-loop driver through admission: serves every
    /// `(workload, stats, deadline_ms)` request across `threads` workers and
    /// tallies how each resolved. The admission-controlled counterpart of
    /// [`ServeEngine::run_closed_loop`].
    pub fn run_closed_loop(
        &self,
        engine: &ServeEngine,
        requests: &[(Workload, GraphStats, f64)],
        threads: usize,
    ) -> AdmittedLoopReport {
        let start = Instant::now();
        let threads = threads.max(1).min(requests.len().max(1));
        let cursor = AtomicUsize::new(0);
        let tally: AdmittedLoopReport = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut t = AdmittedLoopReport::default();
                        loop {
                            let idx = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(&(workload, stats, deadline_ms)) = requests.get(idx) else {
                                break;
                            };
                            let ctx = WorkloadContext::for_workload(workload, stats);
                            t.requests += 1;
                            match self.try_schedule_context(engine, &ctx, deadline_ms) {
                                Ok(served) => {
                                    t.good += 1;
                                    if served.source == ServeSource::StaleHit {
                                        t.stale += 1;
                                    }
                                }
                                Err(Rejected::Overload { .. }) => t.rejected_overload += 1,
                                Err(Rejected::Deadline { .. }) => t.rejected_deadline += 1,
                                Err(_) => t.rejected_unhealthy += 1,
                            }
                        }
                        t
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("admitted worker panicked"))
                .fold(AdmittedLoopReport::default(), AdmittedLoopReport::merge)
        });
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        AdmittedLoopReport {
            wall_ms,
            goodput_rps: if wall_ms > 0.0 {
                tally.good as f64 / (wall_ms / 1e3)
            } else {
                f64::INFINITY
            },
            ..tally
        }
    }
}

/// Flushes breaker open/close deltas into the metrics counters.
fn flush_breaker_metrics(sync: &mut BoardSync, metrics: &MetricsRegistry) {
    let opens = sync.board.total_opens();
    let closes = sync.board.total_closes();
    metrics.breaker_opens.add(opens - sync.reported_opens);
    metrics.breaker_closes.add(closes - sync.reported_closes);
    sync.reported_opens = opens;
    sync.reported_closes = closes;
}

/// How an admission-controlled closed loop resolved, request by request.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AdmittedLoopReport {
    /// Requests driven through admission.
    pub requests: usize,
    /// Requests that resolved to a placement within their deadline
    /// (including stale-shed ones).
    pub good: usize,
    /// Subset of `good` served stale cached predictions under overload.
    pub stale: usize,
    /// Requests rejected for overload with no stale fallback.
    pub rejected_overload: usize,
    /// Requests rejected with a typed deadline error.
    pub rejected_deadline: usize,
    /// Requests rejected with every accelerator unhealthy.
    pub rejected_unhealthy: usize,
    /// Wall-clock duration of the loop (milliseconds).
    pub wall_ms: f64,
    /// Good (within-deadline) responses per second of wall time.
    pub goodput_rps: f64,
}

impl AdmittedLoopReport {
    fn merge(mut self, other: AdmittedLoopReport) -> AdmittedLoopReport {
        self.requests += other.requests;
        self.good += other.good;
        self.stale += other.stale;
        self.rejected_overload += other.rejected_overload;
        self.rejected_deadline += other.rejected_deadline;
        self.rejected_unhealthy += other.rejected_unhealthy;
        self
    }

    /// Fraction of driven requests that resolved within deadline.
    pub fn goodput_fraction(&self) -> f64 {
        if self.requests == 0 {
            return f64::NAN;
        }
        self.good as f64 / self.requests as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ServeConfig, ServeMode};
    use heteromap::HeteroMap;
    use heteromap_accel::{FaultPlan, FaultState};
    use heteromap_graph::datasets::Dataset;

    fn engine() -> ServeEngine {
        ServeEngine::new(
            HeteroMap::with_decision_tree(),
            ServeConfig::with_mode(ServeMode::Cached),
        )
    }

    #[test]
    fn defaults_admit_and_serve() {
        let e = engine();
        let ac = AdmissionController::new(AdmissionConfig::default());
        let served = ac
            .try_schedule_stats(&e, Workload::Bfs, Dataset::Facebook.stats())
            .expect("healthy request admitted");
        assert!(served.placement.completed());
        let snap = e.metrics().snapshot();
        assert_eq!(snap.admitted, 1);
        assert_eq!(snap.rejected_overload + snap.rejected_unhealthy, 0);
        assert_eq!(ac.inflight(), 0, "guard released");
    }

    #[test]
    fn overload_rejects_cold_keys_and_sheds_warm_ones() {
        let e = engine();
        let ac = AdmissionController::new(AdmissionConfig {
            max_inflight: 0,
            ..AdmissionConfig::default()
        });
        // Cold cache: nothing to shed onto.
        let err = ac
            .try_schedule_stats(&e, Workload::Bfs, Dataset::Facebook.stats())
            .expect_err("budget of zero admits nothing");
        assert_eq!(err, Rejected::Overload { max_inflight: 0 });
        // Warm the cache outside admission, then overload again.
        e.schedule(Workload::Bfs, Dataset::Facebook);
        let served = ac
            .try_schedule_stats(&e, Workload::Bfs, Dataset::Facebook.stats())
            .expect("warm key sheds to stale");
        assert_eq!(served.source, ServeSource::StaleHit);
        let snap = e.metrics().snapshot();
        assert_eq!(snap.rejected_overload, 1);
        assert_eq!(snap.stale_served, 1);
    }

    #[test]
    fn overload_without_stale_shedding_always_rejects() {
        let e = engine();
        let ac = AdmissionController::new(AdmissionConfig {
            max_inflight: 0,
            stale_on_overload: false,
            ..AdmissionConfig::default()
        });
        e.schedule(Workload::Bfs, Dataset::Facebook);
        let err = ac
            .try_schedule_stats(&e, Workload::Bfs, Dataset::Facebook.stats())
            .expect_err("shedding disabled");
        assert!(matches!(err, Rejected::Overload { .. }));
    }

    #[test]
    fn impossible_deadline_is_a_typed_error() {
        let e = engine();
        let ac = AdmissionController::new(AdmissionConfig::default());
        let ctx = WorkloadContext::for_workload(Workload::PageRank, Dataset::LiveJournal.stats());
        let err = ac
            .try_schedule_context(&e, &ctx, 1e-12)
            .expect_err("nothing completes in a picosecond");
        assert!(matches!(err, Rejected::Deadline { .. }), "{err}");
        assert_eq!(e.metrics().snapshot().deadline_misses, 1);
    }

    #[test]
    fn breaker_opens_then_routes_around_the_dead_accelerator() {
        let e = engine();
        e.set_fault_plan(FaultPlan::gpu_down());
        let ac = AdmissionController::new(AdmissionConfig {
            breaker: BreakerConfig {
                failure_threshold: 1,
                ..BreakerConfig::default()
            },
            ..AdmissionConfig::default()
        });
        // SSSP-BF on USA-Cal prefers the GPU; the first request fails over.
        let first = ac
            .try_schedule_stats(&e, Workload::SsspBf, Dataset::UsaCal.stats())
            .expect("failover succeeds");
        assert_eq!(first.placement.accelerator(), Accelerator::Multicore);
        assert!(first
            .placement
            .attempts
            .records
            .iter()
            .any(|r| r.accelerator == Accelerator::Gpu));
        assert_eq!(ac.breaker_states().0, BreakerState::Open);
        // The second request never touches the GPU at all.
        let second = ac
            .try_schedule_stats(&e, Workload::SsspBf, Dataset::UsaCal.stats())
            .expect("routed around the open breaker");
        assert!(second
            .placement
            .attempts
            .records
            .iter()
            .all(|r| r.accelerator == Accelerator::Multicore));
        assert_eq!(e.metrics().snapshot().breaker_opens, 1);
    }

    #[test]
    fn healed_accelerator_closes_after_cooldown_probes() {
        let e = engine();
        e.set_fault_plan(FaultPlan::gpu_down());
        let ac = AdmissionController::new(AdmissionConfig {
            breaker: BreakerConfig {
                failure_threshold: 1,
                cooldown_requests: 2,
                probe_successes: 1,
            },
            ..AdmissionConfig::default()
        });
        let stats = Dataset::UsaCal.stats();
        ac.try_schedule_stats(&e, Workload::SsspBf, stats)
            .expect("failover");
        assert_eq!(ac.breaker_states().0, BreakerState::Open);
        // The accelerator heals; the breaker still needs its cooldown.
        e.set_fault_plan(FaultPlan::healthy());
        ac.try_schedule_stats(&e, Workload::SsspBf, stats)
            .expect("shed 1");
        ac.try_schedule_stats(&e, Workload::SsspBf, stats)
            .expect("shed 2 -> half-open");
        assert_eq!(ac.breaker_states().0, BreakerState::HalfOpen);
        let probed = ac
            .try_schedule_stats(&e, Workload::SsspBf, stats)
            .expect("probe succeeds");
        assert_eq!(probed.placement.accelerator(), Accelerator::Gpu);
        assert_eq!(ac.breaker_states().0, BreakerState::Closed);
        assert_eq!(e.metrics().snapshot().breaker_closes, 1);
    }

    #[test]
    fn all_breakers_open_rejects_unhealthy() {
        let e = engine();
        e.set_fault_plan(
            FaultPlan::gpu_down().with_state(Accelerator::Multicore, FaultState::Down),
        );
        let ac = AdmissionController::new(AdmissionConfig {
            breaker: BreakerConfig {
                failure_threshold: 1,
                ..BreakerConfig::default()
            },
            ..AdmissionConfig::default()
        });
        let err = ac
            .try_schedule_stats(&e, Workload::Bfs, Dataset::Facebook.stats())
            .expect_err("every leg fails");
        assert_eq!(err, Rejected::Unhealthy);
        assert_eq!(
            ac.breaker_states(),
            (BreakerState::Open, BreakerState::Open)
        );
        // Now requests are refused at admission, before any deploy.
        let before = e.metrics().snapshot().admitted;
        let err = ac
            .try_schedule_stats(&e, Workload::Bfs, Dataset::Facebook.stats())
            .expect_err("all breakers open");
        assert_eq!(err, Rejected::Unhealthy);
        assert_eq!(e.metrics().snapshot().admitted, before);
        assert_eq!(e.metrics().snapshot().rejected_unhealthy, 2);
    }

    #[test]
    fn closed_loop_tallies_every_resolution() {
        let e = engine();
        let ac = AdmissionController::new(AdmissionConfig::default());
        let requests: Vec<(Workload, GraphStats, f64)> = (0..40)
            .map(|i| {
                (
                    if i % 2 == 0 {
                        Workload::Bfs
                    } else {
                        Workload::PageRank
                    },
                    Dataset::Facebook.stats(),
                    f64::INFINITY,
                )
            })
            .collect();
        let report = ac.run_closed_loop(&e, &requests, 4);
        assert_eq!(report.requests, 40);
        assert_eq!(report.good, 40);
        assert_eq!(
            report.rejected_overload + report.rejected_deadline + report.rejected_unhealthy,
            0
        );
        assert!((report.goodput_fraction() - 1.0).abs() < 1e-12);
        assert!(report.goodput_rps > 0.0);
    }

    #[test]
    fn rejection_display_is_typed_and_readable() {
        let o = Rejected::Overload { max_inflight: 8 };
        let d = Rejected::Deadline {
            needed_ms: 5.0,
            deadline_ms: 1.0,
        };
        assert!(o.to_string().contains("in-flight budget of 8"));
        assert!(d.to_string().contains("deadline exceeded"));
        assert!(Rejected::Unhealthy.to_string().contains("unhealthy"));
    }
}
