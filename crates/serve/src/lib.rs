//! **heteromap-serve** — a concurrent prediction-serving subsystem for the
//! HeteroMap reproduction.
//!
//! The paper's framework predicts machine choices per (workload, input)
//! combination; a long-running serving process sees the *same* discretized
//! `(B, I)` pairs over and over (the 0.1-increment grid of §III makes the
//! key space finite). This crate exploits that:
//!
//! * [`cache`] — a sharded LRU cache of predictions keyed by the exact bit
//!   patterns of the `(B, I)` pair, with generation-based invalidation when
//!   the fault plan or predictor changes;
//! * [`engine`] — [`ServeEngine`], which resolves misses through a
//!   single-flight, batch-coalescing inference path (one matrix-matrix
//!   forward pass for many concurrent misses) and charges deterministic
//!   predictor overhead into each placement (§V-A): a miss pays
//!   `inference_flops × flop_ns`, a hit pays
//!   [`ServeConfig::hit_overhead_ms`] (zero by default);
//! * [`metrics`] — an atomic [`MetricsRegistry`] (cache hit/miss counters,
//!   batch-size and latency histograms with p50/p95/p99, per-accelerator
//!   placement counts) snapshotable as JSON;
//! * [`instrument`] — [`MeteredRunner`], which feeds host kernel latencies
//!   into the same registry;
//! * [`admission`] — [`AdmissionController`], the resilience front-end: a
//!   bounded in-flight budget that sheds overload onto stale cached
//!   predictions, per-request deadlines threaded into the core retry loop,
//!   and per-accelerator circuit breakers that route requests around a
//!   persistently failing accelerator. Refusals are typed ([`Rejected`]),
//!   never silent.
//!
//! Because the cache stores predictions and re-runs the deterministic
//! analytic deploy per request, cached, batched and uncached serving return
//! identical placements — caching changes cost, never answers.
//!
//! # Example
//!
//! ```
//! use heteromap::HeteroMap;
//! use heteromap_graph::datasets::Dataset;
//! use heteromap_model::Workload;
//! use heteromap_serve::{ServeConfig, ServeEngine, ServeSource};
//!
//! let engine = ServeEngine::new(HeteroMap::with_decision_tree(), ServeConfig::default());
//! let first = engine.schedule(Workload::PageRank, Dataset::LiveJournal);
//! let second = engine.schedule(Workload::PageRank, Dataset::LiveJournal);
//! assert_eq!(second.source, ServeSource::CacheHit);
//! assert_eq!(first.placement.config, second.placement.config);
//! println!("{}", engine.metrics().snapshot().to_json());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
pub mod cache;
pub mod engine;
pub mod instrument;
pub mod metrics;
pub mod mpsc;
pub mod pad;

pub use admission::{AdmissionConfig, AdmissionController, AdmittedLoopReport, Rejected};
pub use cache::{CachedPrediction, InsertOutcome, PredKey, ShardedCache};
pub use engine::{
    default_lanes, ClosedLoopReport, ServeConfig, ServeEngine, ServeMode, ServeSource, Served,
};
pub use instrument::MeteredRunner;
pub use metrics::{Counter, Histogram, MetricsRegistry, MetricsSnapshot, PeakGauge};
pub use mpsc::SlotRing;
pub use pad::CacheAligned;
