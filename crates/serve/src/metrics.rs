//! Atomic metrics registry for the serving engine.
//!
//! Plain `std::sync::atomic` counters and fixed-bucket histograms — no
//! allocation or locking on the hot path — covering the cache (hits,
//! misses, evictions, invalidations), the batcher (batch sizes, queue
//! depth, single-flight waits), scheduling outcomes (per-accelerator
//! placement counts, failures) and latency distributions (schedule and
//! kernel p50/p95/p99). [`MetricsRegistry::snapshot`] freezes everything
//! into a [`MetricsSnapshot`] that renders as JSON with no external
//! dependencies, matching the hand-rolled emitters in `heteromap-bench`.

use heteromap::Placement;
use heteromap_model::Accelerator;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing atomic counter.
///
/// Cache-line aligned: registry counters sit in adjacent fields and are
/// bumped from every worker thread, so without padding two unrelated
/// counters (say `cache_hits` and `gpu_placements`) would share a line and
/// every increment would ping-pong it between cores — false sharing that
/// showed up at 16 threads.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A high-watermark gauge (records the maximum observed value).
/// Cache-line aligned for the same reason as [`Counter`].
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct PeakGauge(AtomicU64);

impl PeakGauge {
    /// Creates a zeroed gauge.
    pub fn new() -> Self {
        PeakGauge::default()
    }

    /// Records an observation, keeping the maximum.
    pub fn observe(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// The peak observed so far.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Upper bucket bounds for latency histograms, in milliseconds
/// (25 ns … 5 s; one overflow bucket follows). The sub-microsecond decades
/// are deliberately dense: cached serves complete in a few hundred
/// nanoseconds, and with the old 0.0005 → 0.001 jump every sub-µs request
/// collapsed into the 1 µs bucket, so p50 read a flat 0.001 ms.
const LATENCY_BOUNDS_MS: [f64; 31] = [
    0.000025, 0.00005, 0.0001, 0.0002, 0.0003, 0.0005, 0.00075, 0.001, 0.0015, 0.002, 0.003, 0.005,
    0.0075, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1000.0, 2000.0, 5000.0,
];

/// Upper bucket bounds for batch-size histograms.
const BATCH_BOUNDS: [f64; 12] = [
    1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 32.0, 64.0, 128.0, 256.0,
];

/// A fixed-bucket histogram with atomic buckets.
///
/// Quantiles are resolved to the upper bound of the bucket holding the
/// requested rank — a deliberate over-estimate bounded by the bucket
/// spacing, which is the standard trade for lock-free recording.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [f64],
    /// One bucket per bound plus a final overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum scaled by 1e6 (nanosecond resolution for millisecond samples).
    sum_scaled: AtomicU64,
}

impl Histogram {
    /// A histogram over [`LATENCY_BOUNDS_MS`] (values in milliseconds).
    pub fn latency_ms() -> Self {
        Histogram::with_bounds(&LATENCY_BOUNDS_MS)
    }

    /// A histogram over [`BATCH_BOUNDS`] (values are batch sizes).
    pub fn batch_sizes() -> Self {
        Histogram::with_bounds(&BATCH_BOUNDS)
    }

    fn with_bounds(bounds: &'static [f64]) -> Self {
        Histogram {
            bounds,
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_scaled: AtomicU64::new(0),
        }
    }

    /// Records one sample (negative/NaN samples count into bucket 0).
    pub fn record(&self, v: f64) {
        // "Not greater than the bound" is `v <= b` for real samples and
        // true for NaN, so NaN lands in bucket 0 as documented instead of
        // the overflow bucket a plain `v <= b` would send it to.
        let idx = self
            .bounds
            .iter()
            .position(|&b| !matches!(v.partial_cmp(&b), Some(std::cmp::Ordering::Greater)))
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        if v.is_finite() && v > 0.0 {
            self.sum_scaled
                .fetch_add((v * 1e6).round() as u64, Ordering::Relaxed);
        }
    }

    /// Records one sample given in integer nanoseconds — the serving path
    /// measures `Instant::elapsed().as_nanos()` and records through this, so
    /// sub-microsecond latencies keep their resolution end to end.
    pub fn record_ns(&self, ns: u64) {
        self.record(ns as f64 / 1e6);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return f64::NAN;
        }
        self.sum_scaled.load(Ordering::Relaxed) as f64 / 1e6 / n as f64
    }

    /// The `q`-quantile (`0 < q <= 1`) as the upper bound of the bucket
    /// containing that rank; `NaN` when empty, the last bound when the rank
    /// lands in the overflow bucket.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return f64::NAN;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return self.bounds.get(idx).copied().unwrap_or_else(|| {
                    // Overflow bucket: report the largest finite bound.
                    *self.bounds.last().expect("histogram has bounds")
                });
            }
        }
        *self.bounds.last().expect("histogram has bounds")
    }
}

/// The serving engine's metrics registry.
///
/// Typed fields cover the built-in instrumentation; [`MetricsRegistry::counter`]
/// registers ad-hoc named counters (e.g. per-workload kernel runs) that ride
/// along in the snapshot.
#[derive(Debug)]
pub struct MetricsRegistry {
    /// Cache lookups that returned a stored prediction.
    pub cache_hits: Counter,
    /// Cache lookups that fell through to inference.
    pub cache_misses: Counter,
    /// LRU evictions performed by inserts.
    pub cache_evictions: Counter,
    /// Explicit invalidations (fault-plan or predictor changes).
    pub cache_invalidations: Counter,
    /// Requests that waited on another request's identical in-flight key.
    pub single_flight_waits: Counter,
    /// Batched inference passes executed.
    pub batches: Counter,
    /// Requests served by batched passes.
    pub batched_requests: Counter,
    /// Peak submission-queue depth.
    pub queue_depth_peak: PeakGauge,
    /// Placements routed to the GPU.
    pub gpu_placements: Counter,
    /// Placements routed to the multicore.
    pub multicore_placements: Counter,
    /// Placements that exhausted every accelerator.
    pub failed_placements: Counter,
    /// Chunks scheduled through the streaming path.
    pub stream_chunks: Counter,
    /// OOM re-streams performed by the streaming path.
    pub stream_restreams: Counter,
    /// Requests admitted by the admission controller.
    pub admitted: Counter,
    /// Requests rejected for overload (in-flight budget full, no cached
    /// prediction to shed onto).
    pub rejected_overload: Counter,
    /// Requests rejected because every accelerator's breaker was open or
    /// every deploy leg failed.
    pub rejected_unhealthy: Counter,
    /// Requests that could not complete within their deadline.
    pub deadline_misses: Counter,
    /// Overloaded requests served a stale cached prediction instead of
    /// being dropped.
    pub stale_served: Counter,
    /// Circuit-breaker trips (Closed/Half-open → Open).
    pub breaker_opens: Counter,
    /// Circuit-breaker recoveries (Half-open → Closed).
    pub breaker_closes: Counter,
    /// End-to-end serve latency per request (ms).
    pub schedule_latency: Histogram,
    /// Host kernel-execution latency (ms), fed by `MeteredRunner`.
    pub kernel_latency: Histogram,
    /// Distribution of batched-inference batch sizes.
    pub batch_sizes: Histogram,
    extra: Mutex<BTreeMap<String, Arc<Counter>>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            cache_hits: Counter::new(),
            cache_misses: Counter::new(),
            cache_evictions: Counter::new(),
            cache_invalidations: Counter::new(),
            single_flight_waits: Counter::new(),
            batches: Counter::new(),
            batched_requests: Counter::new(),
            queue_depth_peak: PeakGauge::new(),
            gpu_placements: Counter::new(),
            multicore_placements: Counter::new(),
            failed_placements: Counter::new(),
            stream_chunks: Counter::new(),
            stream_restreams: Counter::new(),
            admitted: Counter::new(),
            rejected_overload: Counter::new(),
            rejected_unhealthy: Counter::new(),
            deadline_misses: Counter::new(),
            stale_served: Counter::new(),
            breaker_opens: Counter::new(),
            breaker_closes: Counter::new(),
            schedule_latency: Histogram::latency_ms(),
            kernel_latency: Histogram::latency_ms(),
            batch_sizes: Histogram::batch_sizes(),
            extra: Mutex::new(BTreeMap::new()),
        }
    }

    /// Registers (or fetches) a named counter. Names are sanitized to
    /// `[a-z0-9_]` so they embed cleanly in the JSON snapshot.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let slug: String = name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect();
        self.extra
            .lock()
            .expect("metrics registry poisoned")
            .entry(slug)
            .or_default()
            .clone()
    }

    /// Records the outcome of one placement (accelerator routing and
    /// completion).
    pub fn record_placement(&self, placement: &Placement) {
        match placement.accelerator() {
            Accelerator::Gpu => self.gpu_placements.inc(),
            Accelerator::Multicore => self.multicore_placements.inc(),
        }
        if !placement.completed() {
            self.failed_placements.inc();
        }
    }

    /// Freezes every metric into a snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let hits = self.cache_hits.get();
        let misses = self.cache_misses.get();
        let lookups = hits + misses;
        let batches = self.batches.get();
        MetricsSnapshot {
            cache_hits: hits,
            cache_misses: misses,
            cache_hit_rate: if lookups == 0 {
                f64::NAN
            } else {
                hits as f64 / lookups as f64
            },
            cache_evictions: self.cache_evictions.get(),
            cache_invalidations: self.cache_invalidations.get(),
            single_flight_waits: self.single_flight_waits.get(),
            batches,
            batched_requests: self.batched_requests.get(),
            mean_batch_size: self.batch_sizes.mean(),
            max_batch_bucket: self.batch_sizes.quantile(1.0),
            queue_depth_peak: self.queue_depth_peak.get(),
            gpu_placements: self.gpu_placements.get(),
            multicore_placements: self.multicore_placements.get(),
            failed_placements: self.failed_placements.get(),
            stream_chunks: self.stream_chunks.get(),
            stream_restreams: self.stream_restreams.get(),
            admitted: self.admitted.get(),
            rejected_overload: self.rejected_overload.get(),
            rejected_unhealthy: self.rejected_unhealthy.get(),
            deadline_misses: self.deadline_misses.get(),
            stale_served: self.stale_served.get(),
            breaker_opens: self.breaker_opens.get(),
            breaker_closes: self.breaker_closes.get(),
            requests: self.schedule_latency.count(),
            schedule_p50_ms: self.schedule_latency.quantile(0.50),
            schedule_p95_ms: self.schedule_latency.quantile(0.95),
            schedule_p99_ms: self.schedule_latency.quantile(0.99),
            schedule_mean_ms: self.schedule_latency.mean(),
            kernel_runs: self.kernel_latency.count(),
            kernel_p50_ms: self.kernel_latency.quantile(0.50),
            kernel_p99_ms: self.kernel_latency.quantile(0.99),
            extra: self
                .extra
                .lock()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
        }
    }
}

/// A frozen view of the registry (plain values, JSON-renderable).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct MetricsSnapshot {
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// `hits / (hits + misses)` (`NaN` with no lookups).
    pub cache_hit_rate: f64,
    /// LRU evictions.
    pub cache_evictions: u64,
    /// Explicit invalidations.
    pub cache_invalidations: u64,
    /// Single-flight duplicate waits.
    pub single_flight_waits: u64,
    /// Batched inference passes.
    pub batches: u64,
    /// Requests served through batches.
    pub batched_requests: u64,
    /// Mean batch size (`NaN` with no batches).
    pub mean_batch_size: f64,
    /// Upper bound of the largest populated batch-size bucket.
    pub max_batch_bucket: f64,
    /// Peak submission-queue depth.
    pub queue_depth_peak: u64,
    /// Placements routed to the GPU.
    pub gpu_placements: u64,
    /// Placements routed to the multicore.
    pub multicore_placements: u64,
    /// Placements that exhausted every accelerator.
    pub failed_placements: u64,
    /// Streamed chunks scheduled.
    pub stream_chunks: u64,
    /// OOM re-streams.
    pub stream_restreams: u64,
    /// Requests admitted by the admission controller.
    pub admitted: u64,
    /// Requests rejected for overload.
    pub rejected_overload: u64,
    /// Requests rejected with every accelerator unhealthy.
    pub rejected_unhealthy: u64,
    /// Requests that missed their deadline.
    pub deadline_misses: u64,
    /// Overloaded requests shed onto stale cached predictions.
    pub stale_served: u64,
    /// Circuit-breaker trips.
    pub breaker_opens: u64,
    /// Circuit-breaker recoveries.
    pub breaker_closes: u64,
    /// Scheduled requests (latency samples).
    pub requests: u64,
    /// Median serve latency (ms).
    pub schedule_p50_ms: f64,
    /// 95th-percentile serve latency (ms).
    pub schedule_p95_ms: f64,
    /// 99th-percentile serve latency (ms).
    pub schedule_p99_ms: f64,
    /// Mean serve latency (ms).
    pub schedule_mean_ms: f64,
    /// Metered kernel executions.
    pub kernel_runs: u64,
    /// Median kernel latency (ms).
    pub kernel_p50_ms: f64,
    /// 99th-percentile kernel latency (ms).
    pub kernel_p99_ms: f64,
    /// Registered ad-hoc counters.
    pub extra: Vec<(String, u64)>,
}

/// Fixed-precision rendering for latency/ratio fields; non-finite values
/// become `null` via the shared writer.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        heteromap_obs::json::num(v)
    }
}

impl MetricsSnapshot {
    /// Renders the snapshot as a JSON object via the shared
    /// [`heteromap_obs::json`] writer (the workspace vendors no serde_json;
    /// non-finite values render as `null`).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let mut field = |k: &str, v: String| {
            s.push_str(&format!("  {}: {v},\n", heteromap_obs::json::escape(k)));
        };
        field("cache_hits", self.cache_hits.to_string());
        field("cache_misses", self.cache_misses.to_string());
        field("cache_hit_rate", json_num(self.cache_hit_rate));
        field("cache_evictions", self.cache_evictions.to_string());
        field("cache_invalidations", self.cache_invalidations.to_string());
        field("single_flight_waits", self.single_flight_waits.to_string());
        field("batches", self.batches.to_string());
        field("batched_requests", self.batched_requests.to_string());
        field("mean_batch_size", json_num(self.mean_batch_size));
        field("max_batch_bucket", json_num(self.max_batch_bucket));
        field("queue_depth_peak", self.queue_depth_peak.to_string());
        field("gpu_placements", self.gpu_placements.to_string());
        field(
            "multicore_placements",
            self.multicore_placements.to_string(),
        );
        field("failed_placements", self.failed_placements.to_string());
        field("stream_chunks", self.stream_chunks.to_string());
        field("stream_restreams", self.stream_restreams.to_string());
        field("admitted", self.admitted.to_string());
        field("rejected_overload", self.rejected_overload.to_string());
        field("rejected_unhealthy", self.rejected_unhealthy.to_string());
        field("deadline_misses", self.deadline_misses.to_string());
        field("stale_served", self.stale_served.to_string());
        field("breaker_opens", self.breaker_opens.to_string());
        field("breaker_closes", self.breaker_closes.to_string());
        field("requests", self.requests.to_string());
        field("schedule_p50_ms", json_num(self.schedule_p50_ms));
        field("schedule_p95_ms", json_num(self.schedule_p95_ms));
        field("schedule_p99_ms", json_num(self.schedule_p99_ms));
        field("schedule_mean_ms", json_num(self.schedule_mean_ms));
        field("kernel_runs", self.kernel_runs.to_string());
        field("kernel_p50_ms", json_num(self.kernel_p50_ms));
        field("kernel_p99_ms", json_num(self.kernel_p99_ms));
        let extras: Vec<String> = self
            .extra
            .iter()
            .map(|(k, v)| format!("{}: {v}", heteromap_obs::json::escape(k)))
            .collect();
        s.push_str(&format!("  \"extra\": {{{}}}\n", extras.join(", ")));
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        m.cache_hits.inc();
        m.cache_hits.add(4);
        m.cache_misses.inc();
        let snap = m.snapshot();
        assert_eq!(snap.cache_hits, 5);
        assert_eq!(snap.cache_misses, 1);
        assert!((snap.cache_hit_rate - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_is_nan_without_lookups() {
        assert!(MetricsRegistry::new().snapshot().cache_hit_rate.is_nan());
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = Histogram::latency_ms();
        for _ in 0..90 {
            h.record(0.004); // -> 0.005 bucket
        }
        for _ in 0..10 {
            h.record(3.0); // -> 5.0 bucket
        }
        assert_eq!(h.count(), 100);
        assert!(
            (h.quantile(0.5) - 0.005).abs() < 1e-12,
            "{}",
            h.quantile(0.5)
        );
        assert!(
            (h.quantile(0.99) - 5.0).abs() < 1e-12,
            "{}",
            h.quantile(0.99)
        );
        let mean = h.mean();
        assert!(mean > 0.004 && mean < 3.0, "{mean}");
    }

    #[test]
    fn histogram_overflow_reports_last_bound() {
        let h = Histogram::latency_ms();
        h.record(1e9);
        assert_eq!(h.quantile(0.5), 5000.0);
    }

    #[test]
    fn empty_histogram_quantile_is_nan() {
        assert!(Histogram::latency_ms().quantile(0.5).is_nan());
        assert!(Histogram::latency_ms().mean().is_nan());
    }

    #[test]
    fn quantiles_on_a_known_distribution() {
        // 100 samples, exactly one per 0.01 step in (0, 1.0]: sample k is
        // (k+1)/100 ms. Ranks are exact, so each quantile must resolve to
        // the upper bound of the bucket holding that rank.
        let h = Histogram::latency_ms();
        for k in 0..100 {
            h.record((k + 1) as f64 / 100.0);
        }
        // Rank 50 is sample 0.50 ms -> bucket (0.2, 0.5].
        assert_eq!(h.quantile(0.50), 0.5);
        // Rank 95 is sample 0.95 ms -> bucket (0.5, 1.0].
        assert_eq!(h.quantile(0.95), 1.0);
        // Rank 99 is sample 0.99 ms -> same bucket.
        assert_eq!(h.quantile(0.99), 1.0);
        // Rank 100 is sample 1.00 ms, on the bucket boundary -> still 1.0.
        assert_eq!(h.quantile(1.0), 1.0);
        let mean = h.mean();
        assert!((mean - 0.505).abs() < 1e-6, "{mean}");
    }

    #[test]
    fn boundary_samples_land_in_the_lower_bucket() {
        // `v <= bound` means a sample exactly on a bound belongs to that
        // bound's bucket, not the next one.
        let h = Histogram::latency_ms();
        h.record(0.005);
        assert_eq!(h.quantile(1.0), 0.005);
        let h = Histogram::latency_ms();
        h.record(0.0050001);
        assert_eq!(h.quantile(1.0), 0.0075);
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let h = Histogram::latency_ms();
        h.record(0.3); // -> 0.5 bucket
        for q in [0.01, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0.5, "q={q}");
        }
        assert_eq!(h.count(), 1);
        assert!((h.mean() - 0.3).abs() < 1e-6);
    }

    #[test]
    fn tiny_and_extreme_quantiles_are_clamped() {
        let h = Histogram::latency_ms();
        h.record(0.05);
        h.record(40.0);
        // q=0 clamps to rank 1 (the smallest sample's bucket).
        assert_eq!(h.quantile(0.0), 0.05);
        assert_eq!(h.quantile(-3.0), 0.05);
        // q>1 clamps to the full population.
        assert_eq!(h.quantile(7.0), 50.0);
    }

    #[test]
    fn negative_and_nan_samples_count_into_bucket_zero() {
        let h = Histogram::latency_ms();
        h.record(-1.0);
        h.record(f64::NAN);
        assert_eq!(h.count(), 2);
        // Both land in the first bucket; they contribute nothing to the sum.
        assert_eq!(h.quantile(1.0), 0.000025);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn nanosecond_recording_resolves_sub_microsecond_quantiles() {
        // The bench regression this fixes: sub-µs latencies must not all
        // collapse into one bucket that reads 0.001 ms.
        let h = Histogram::latency_ms();
        for _ in 0..90 {
            h.record_ns(180); // 0.00018 ms -> 0.0002 bucket
        }
        for _ in 0..10 {
            h.record_ns(900); // 0.0009 ms -> 0.001 bucket
        }
        assert_eq!(h.quantile(0.50), 0.0002);
        assert_eq!(h.quantile(0.99), 0.001);
        let mean = h.mean();
        assert!((mean - 0.000252).abs() < 1e-9, "{mean}");
    }

    #[test]
    fn hot_atomics_are_cache_line_padded() {
        assert!(std::mem::align_of::<Counter>() >= 64);
        assert!(std::mem::align_of::<PeakGauge>() >= 64);
    }

    #[test]
    fn batch_bounds_cover_small_batches_exactly() {
        let h = Histogram::batch_sizes();
        for size in [1.0, 2.0, 3.0, 4.0] {
            h.record(size);
        }
        assert_eq!(h.quantile(0.25), 1.0);
        assert_eq!(h.quantile(0.5), 2.0);
        assert_eq!(h.quantile(0.75), 3.0);
        assert_eq!(h.quantile(1.0), 4.0);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let h = Histogram::latency_ms();
        let samples = [0.003, 0.02, 0.02, 0.4, 1.5, 1.5, 80.0, 4000.0];
        for s in samples {
            h.record(s);
        }
        let qs = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let values: Vec<f64> = qs.iter().map(|&q| h.quantile(q)).collect();
        for pair in values.windows(2) {
            assert!(pair[0] <= pair[1], "{values:?}");
        }
        // And every quantile is a real bucket bound.
        for v in values {
            assert!(LATENCY_BOUNDS_MS.contains(&v), "{v}");
        }
    }

    #[test]
    fn peak_gauge_keeps_maximum() {
        let g = PeakGauge::new();
        g.observe(3);
        g.observe(9);
        g.observe(5);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn named_counters_are_shared_and_sanitized() {
        let m = MetricsRegistry::new();
        let a = m.counter("Kernel Runs: BFS");
        let b = m.counter("kernel_runs__bfs");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same slug, same counter");
        let snap = m.snapshot();
        assert_eq!(snap.extra, vec![("kernel_runs__bfs".to_string(), 2)]);
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let m = MetricsRegistry::new();
        m.cache_hits.inc();
        m.schedule_latency.record(0.5);
        m.counter("custom").add(7);
        let json = m.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"cache_hits\": 1"));
        assert!(json.contains("\"custom\": 7"));
        // NaN quantities must render as null, not NaN.
        assert!(!json.contains("NaN"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
