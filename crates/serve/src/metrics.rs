//! Atomic metrics registry for the serving engine.
//!
//! The recording primitives — sharded [`Counter`]s, [`PeakGauge`]s and
//! fixed-bucket [`Histogram`]s — live in [`heteromap_obs::metrics`] and are
//! re-exported here; this module keeps the serving-specific registry: typed
//! fields covering the cache (hits, misses, evictions, invalidations), the
//! batcher (batch sizes, queue depth, single-flight waits), scheduling
//! outcomes (per-accelerator placement counts, failures) and latency
//! distributions (schedule and kernel p50/p95/p99).
//! [`MetricsRegistry::snapshot`] freezes everything into a
//! [`MetricsSnapshot`] that renders as JSON with no external dependencies,
//! and [`MetricsRegistry::series`] re-expresses the same state as
//! label-aware series for the shared Prometheus text exposition.

use heteromap::Placement;
use heteromap_model::Accelerator;
use heteromap_obs::metrics::{prometheus_text, SeriesSnapshot, SeriesValue};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

pub use heteromap_obs::metrics::{Counter, Histogram, PeakGauge};

/// The serving engine's metrics registry.
///
/// Typed fields cover the built-in instrumentation; [`MetricsRegistry::counter`]
/// registers ad-hoc named counters (e.g. per-workload kernel runs) that ride
/// along in the snapshot.
#[derive(Debug)]
pub struct MetricsRegistry {
    /// Cache lookups that returned a stored prediction.
    pub cache_hits: Counter,
    /// Cache lookups that fell through to inference.
    pub cache_misses: Counter,
    /// LRU evictions performed by inserts.
    pub cache_evictions: Counter,
    /// Explicit invalidations (fault-plan or predictor changes).
    pub cache_invalidations: Counter,
    /// Requests that waited on another request's identical in-flight key.
    pub single_flight_waits: Counter,
    /// Batched inference passes executed.
    pub batches: Counter,
    /// Requests served by batched passes.
    pub batched_requests: Counter,
    /// Peak submission-queue depth.
    pub queue_depth_peak: PeakGauge,
    /// Placements routed to the GPU.
    pub gpu_placements: Counter,
    /// Placements routed to the multicore.
    pub multicore_placements: Counter,
    /// Placements that exhausted every accelerator.
    pub failed_placements: Counter,
    /// Chunks scheduled through the streaming path.
    pub stream_chunks: Counter,
    /// OOM re-streams performed by the streaming path.
    pub stream_restreams: Counter,
    /// Requests admitted by the admission controller.
    pub admitted: Counter,
    /// Requests rejected for overload (in-flight budget full, no cached
    /// prediction to shed onto).
    pub rejected_overload: Counter,
    /// Requests rejected because every accelerator's breaker was open or
    /// every deploy leg failed.
    pub rejected_unhealthy: Counter,
    /// Requests that could not complete within their deadline.
    pub deadline_misses: Counter,
    /// Overloaded requests served a stale cached prediction instead of
    /// being dropped.
    pub stale_served: Counter,
    /// Circuit-breaker trips (Closed/Half-open → Open).
    pub breaker_opens: Counter,
    /// Circuit-breaker recoveries (Half-open → Closed).
    pub breaker_closes: Counter,
    /// End-to-end serve latency per request (ms).
    pub schedule_latency: Histogram,
    /// Host kernel-execution latency (ms), fed by `MeteredRunner`.
    pub kernel_latency: Histogram,
    /// Distribution of batched-inference batch sizes.
    pub batch_sizes: Histogram,
    extra: Mutex<BTreeMap<String, Arc<Counter>>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            cache_hits: Counter::new(),
            cache_misses: Counter::new(),
            cache_evictions: Counter::new(),
            cache_invalidations: Counter::new(),
            single_flight_waits: Counter::new(),
            batches: Counter::new(),
            batched_requests: Counter::new(),
            queue_depth_peak: PeakGauge::new(),
            gpu_placements: Counter::new(),
            multicore_placements: Counter::new(),
            failed_placements: Counter::new(),
            stream_chunks: Counter::new(),
            stream_restreams: Counter::new(),
            admitted: Counter::new(),
            rejected_overload: Counter::new(),
            rejected_unhealthy: Counter::new(),
            deadline_misses: Counter::new(),
            stale_served: Counter::new(),
            breaker_opens: Counter::new(),
            breaker_closes: Counter::new(),
            schedule_latency: Histogram::latency_ms(),
            kernel_latency: Histogram::latency_ms(),
            batch_sizes: Histogram::batch_sizes(),
            extra: Mutex::new(BTreeMap::new()),
        }
    }

    /// Registers (or fetches) a named counter. Names are sanitized to
    /// `[a-z0-9_]` so they embed cleanly in the JSON snapshot.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let slug: String = name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect();
        self.extra
            .lock()
            .expect("metrics registry poisoned")
            .entry(slug)
            .or_default()
            .clone()
    }

    /// Records the outcome of one placement (accelerator routing and
    /// completion).
    pub fn record_placement(&self, placement: &Placement) {
        match placement.accelerator() {
            Accelerator::Gpu => self.gpu_placements.inc(),
            Accelerator::Multicore => self.multicore_placements.inc(),
        }
        if !placement.completed() {
            self.failed_placements.inc();
        }
    }

    /// Freezes every metric into a snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let hits = self.cache_hits.get();
        let misses = self.cache_misses.get();
        let lookups = hits + misses;
        let batches = self.batches.get();
        MetricsSnapshot {
            cache_hits: hits,
            cache_misses: misses,
            cache_hit_rate: if lookups == 0 {
                f64::NAN
            } else {
                hits as f64 / lookups as f64
            },
            cache_evictions: self.cache_evictions.get(),
            cache_invalidations: self.cache_invalidations.get(),
            single_flight_waits: self.single_flight_waits.get(),
            batches,
            batched_requests: self.batched_requests.get(),
            mean_batch_size: self.batch_sizes.mean(),
            max_batch_bucket: self.batch_sizes.quantile(1.0),
            queue_depth_peak: self.queue_depth_peak.get(),
            gpu_placements: self.gpu_placements.get(),
            multicore_placements: self.multicore_placements.get(),
            failed_placements: self.failed_placements.get(),
            stream_chunks: self.stream_chunks.get(),
            stream_restreams: self.stream_restreams.get(),
            admitted: self.admitted.get(),
            rejected_overload: self.rejected_overload.get(),
            rejected_unhealthy: self.rejected_unhealthy.get(),
            deadline_misses: self.deadline_misses.get(),
            stale_served: self.stale_served.get(),
            breaker_opens: self.breaker_opens.get(),
            breaker_closes: self.breaker_closes.get(),
            requests: self.schedule_latency.count(),
            schedule_p50_ms: self.schedule_latency.quantile(0.50),
            schedule_p95_ms: self.schedule_latency.quantile(0.95),
            schedule_p99_ms: self.schedule_latency.quantile(0.99),
            schedule_mean_ms: self.schedule_latency.mean(),
            kernel_runs: self.kernel_latency.count(),
            kernel_p50_ms: self.kernel_latency.quantile(0.50),
            kernel_p99_ms: self.kernel_latency.quantile(0.99),
            extra: self
                .extra
                .lock()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
        }
    }

    /// Re-expresses the registry as label-aware series (sorted by name,
    /// then labels) for the shared exposition pipeline.
    pub fn series(&self) -> Vec<SeriesSnapshot> {
        let counter = |name: &str, help: &str, c: &Counter| SeriesSnapshot {
            name: name.to_string(),
            labels: Vec::new(),
            help: help.to_string(),
            value: SeriesValue::Counter(c.get()),
        };
        let histogram = |name: &str, help: &str, h: &Histogram| SeriesSnapshot {
            name: name.to_string(),
            labels: Vec::new(),
            help: help.to_string(),
            value: SeriesValue::Histogram {
                bounds: h.bounds().to_vec(),
                buckets: h.bucket_counts(),
                sum: h.sum(),
                count: h.count(),
            },
        };
        let mut out = vec![
            counter("serve_cache_hits_total", "Cache hits", &self.cache_hits),
            counter(
                "serve_cache_misses_total",
                "Cache misses",
                &self.cache_misses,
            ),
            counter(
                "serve_cache_evictions_total",
                "LRU evictions",
                &self.cache_evictions,
            ),
            counter(
                "serve_cache_invalidations_total",
                "Explicit cache invalidations",
                &self.cache_invalidations,
            ),
            counter(
                "serve_single_flight_waits_total",
                "Duplicate requests that waited on an in-flight key",
                &self.single_flight_waits,
            ),
            counter(
                "serve_batches_total",
                "Batched inference passes",
                &self.batches,
            ),
            counter(
                "serve_batched_requests_total",
                "Requests served through batches",
                &self.batched_requests,
            ),
            counter(
                "serve_stream_chunks_total",
                "Chunks scheduled through the streaming path",
                &self.stream_chunks,
            ),
            counter(
                "serve_stream_restreams_total",
                "OOM re-streams",
                &self.stream_restreams,
            ),
            counter(
                "serve_admitted_total",
                "Requests admitted by the admission controller",
                &self.admitted,
            ),
            counter(
                "serve_rejected_overload_total",
                "Requests rejected for overload",
                &self.rejected_overload,
            ),
            counter(
                "serve_rejected_unhealthy_total",
                "Requests rejected with every accelerator unhealthy",
                &self.rejected_unhealthy,
            ),
            counter(
                "serve_deadline_misses_total",
                "Requests that missed their deadline",
                &self.deadline_misses,
            ),
            counter(
                "serve_stale_served_total",
                "Overloaded requests shed onto stale cached predictions",
                &self.stale_served,
            ),
            counter(
                "serve_breaker_opens_total",
                "Circuit-breaker trips",
                &self.breaker_opens,
            ),
            counter(
                "serve_breaker_closes_total",
                "Circuit-breaker recoveries",
                &self.breaker_closes,
            ),
            counter(
                "serve_failed_placements_total",
                "Placements that exhausted every accelerator",
                &self.failed_placements,
            ),
            SeriesSnapshot {
                name: "serve_queue_depth_peak".to_string(),
                labels: Vec::new(),
                help: "Peak submission-queue depth".to_string(),
                value: SeriesValue::Gauge(self.queue_depth_peak.get() as f64),
            },
            histogram(
                "serve_schedule_latency_ms",
                "End-to-end serve latency per request (ms)",
                &self.schedule_latency,
            ),
            histogram(
                "serve_kernel_latency_ms",
                "Host kernel-execution latency (ms)",
                &self.kernel_latency,
            ),
            histogram(
                "serve_batch_size",
                "Batched-inference batch sizes",
                &self.batch_sizes,
            ),
        ];
        for accel in ["gpu", "multicore"] {
            let c = match accel {
                "gpu" => &self.gpu_placements,
                _ => &self.multicore_placements,
            };
            out.push(SeriesSnapshot {
                name: "serve_placements_total".to_string(),
                labels: vec![("accelerator".to_string(), accel.to_string())],
                help: "Placements routed per accelerator".to_string(),
                value: SeriesValue::Counter(c.get()),
            });
        }
        for (slug, c) in self.extra.lock().expect("metrics registry poisoned").iter() {
            out.push(SeriesSnapshot {
                name: "serve_extra_total".to_string(),
                labels: vec![("name".to_string(), slug.clone())],
                help: "Ad-hoc registered counters".to_string(),
                value: SeriesValue::Counter(c.get()),
            });
        }
        out.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        out
    }

    /// Renders every metric in the Prometheus text exposition format.
    pub fn prometheus_text(&self) -> String {
        prometheus_text(&self.series())
    }
}

/// A frozen view of the registry (plain values, JSON-renderable).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct MetricsSnapshot {
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// `hits / (hits + misses)` (`NaN` with no lookups).
    pub cache_hit_rate: f64,
    /// LRU evictions.
    pub cache_evictions: u64,
    /// Explicit invalidations.
    pub cache_invalidations: u64,
    /// Single-flight duplicate waits.
    pub single_flight_waits: u64,
    /// Batched inference passes.
    pub batches: u64,
    /// Requests served through batches.
    pub batched_requests: u64,
    /// Mean batch size (`NaN` with no batches).
    pub mean_batch_size: f64,
    /// Upper bound of the largest populated batch-size bucket.
    pub max_batch_bucket: f64,
    /// Peak submission-queue depth.
    pub queue_depth_peak: u64,
    /// Placements routed to the GPU.
    pub gpu_placements: u64,
    /// Placements routed to the multicore.
    pub multicore_placements: u64,
    /// Placements that exhausted every accelerator.
    pub failed_placements: u64,
    /// Streamed chunks scheduled.
    pub stream_chunks: u64,
    /// OOM re-streams.
    pub stream_restreams: u64,
    /// Requests admitted by the admission controller.
    pub admitted: u64,
    /// Requests rejected for overload.
    pub rejected_overload: u64,
    /// Requests rejected with every accelerator unhealthy.
    pub rejected_unhealthy: u64,
    /// Requests that missed their deadline.
    pub deadline_misses: u64,
    /// Overloaded requests shed onto stale cached predictions.
    pub stale_served: u64,
    /// Circuit-breaker trips.
    pub breaker_opens: u64,
    /// Circuit-breaker recoveries.
    pub breaker_closes: u64,
    /// Scheduled requests (latency samples).
    pub requests: u64,
    /// Median serve latency (ms).
    pub schedule_p50_ms: f64,
    /// 95th-percentile serve latency (ms).
    pub schedule_p95_ms: f64,
    /// 99th-percentile serve latency (ms).
    pub schedule_p99_ms: f64,
    /// Mean serve latency (ms).
    pub schedule_mean_ms: f64,
    /// Metered kernel executions.
    pub kernel_runs: u64,
    /// Median kernel latency (ms).
    pub kernel_p50_ms: f64,
    /// 99th-percentile kernel latency (ms).
    pub kernel_p99_ms: f64,
    /// Registered ad-hoc counters.
    pub extra: Vec<(String, u64)>,
}

/// Fixed-precision rendering for latency/ratio fields; non-finite values
/// become `null` via the shared writer.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        heteromap_obs::json::num(v)
    }
}

impl MetricsSnapshot {
    /// Renders the snapshot as a JSON object via the shared
    /// [`heteromap_obs::json`] writer (the workspace vendors no serde_json;
    /// non-finite values render as `null`).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let mut field = |k: &str, v: String| {
            s.push_str(&format!("  {}: {v},\n", heteromap_obs::json::escape(k)));
        };
        field("cache_hits", self.cache_hits.to_string());
        field("cache_misses", self.cache_misses.to_string());
        field("cache_hit_rate", json_num(self.cache_hit_rate));
        field("cache_evictions", self.cache_evictions.to_string());
        field("cache_invalidations", self.cache_invalidations.to_string());
        field("single_flight_waits", self.single_flight_waits.to_string());
        field("batches", self.batches.to_string());
        field("batched_requests", self.batched_requests.to_string());
        field("mean_batch_size", json_num(self.mean_batch_size));
        field("max_batch_bucket", json_num(self.max_batch_bucket));
        field("queue_depth_peak", self.queue_depth_peak.to_string());
        field("gpu_placements", self.gpu_placements.to_string());
        field(
            "multicore_placements",
            self.multicore_placements.to_string(),
        );
        field("failed_placements", self.failed_placements.to_string());
        field("stream_chunks", self.stream_chunks.to_string());
        field("stream_restreams", self.stream_restreams.to_string());
        field("admitted", self.admitted.to_string());
        field("rejected_overload", self.rejected_overload.to_string());
        field("rejected_unhealthy", self.rejected_unhealthy.to_string());
        field("deadline_misses", self.deadline_misses.to_string());
        field("stale_served", self.stale_served.to_string());
        field("breaker_opens", self.breaker_opens.to_string());
        field("breaker_closes", self.breaker_closes.to_string());
        field("requests", self.requests.to_string());
        field("schedule_p50_ms", json_num(self.schedule_p50_ms));
        field("schedule_p95_ms", json_num(self.schedule_p95_ms));
        field("schedule_p99_ms", json_num(self.schedule_p99_ms));
        field("schedule_mean_ms", json_num(self.schedule_mean_ms));
        field("kernel_runs", self.kernel_runs.to_string());
        field("kernel_p50_ms", json_num(self.kernel_p50_ms));
        field("kernel_p99_ms", json_num(self.kernel_p99_ms));
        let extras: Vec<String> = self
            .extra
            .iter()
            .map(|(k, v)| format!("{}: {v}", heteromap_obs::json::escape(k)))
            .collect();
        s.push_str(&format!("  \"extra\": {{{}}}\n", extras.join(", ")));
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        m.cache_hits.inc();
        m.cache_hits.add(4);
        m.cache_misses.inc();
        let snap = m.snapshot();
        assert_eq!(snap.cache_hits, 5);
        assert_eq!(snap.cache_misses, 1);
        assert!((snap.cache_hit_rate - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_is_nan_without_lookups() {
        assert!(MetricsRegistry::new().snapshot().cache_hit_rate.is_nan());
    }

    #[test]
    fn percentiles_come_from_the_shared_histogram() {
        // The serve snapshot's p50/p99 fields and the shared obs histogram
        // must agree — one bucket-math implementation, not two.
        let m = MetricsRegistry::new();
        for _ in 0..90 {
            m.schedule_latency.record_ns(180);
        }
        for _ in 0..10 {
            m.schedule_latency.record_ns(900);
        }
        let snap = m.snapshot();
        assert_eq!(snap.schedule_p50_ms, m.schedule_latency.quantile(0.50));
        assert_eq!(snap.schedule_p50_ms, 0.0002);
        assert_eq!(snap.schedule_p99_ms, 0.001);
        assert_eq!(snap.requests, 100);
    }

    #[test]
    fn named_counters_are_shared_and_sanitized() {
        let m = MetricsRegistry::new();
        let a = m.counter("Kernel Runs: BFS");
        let b = m.counter("kernel_runs__bfs");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same slug, same counter");
        let snap = m.snapshot();
        assert_eq!(snap.extra, vec![("kernel_runs__bfs".to_string(), 2)]);
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let m = MetricsRegistry::new();
        m.cache_hits.inc();
        m.schedule_latency.record(0.5);
        m.counter("custom").add(7);
        let json = m.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"cache_hits\": 1"));
        assert!(json.contains("\"custom\": 7"));
        // NaN quantities must render as null, not NaN.
        assert!(!json.contains("NaN"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn series_expose_and_round_trip() {
        let m = MetricsRegistry::new();
        m.cache_hits.add(3);
        m.gpu_placements.add(2);
        m.multicore_placements.inc();
        m.schedule_latency.record(0.5);
        m.queue_depth_peak.observe(6);
        m.counter("bfs runs").add(4);
        let series = m.series();
        let text = m.prometheus_text();
        assert!(text.contains("serve_cache_hits_total 3\n"));
        assert!(text.contains("serve_placements_total{accelerator=\"gpu\"} 2\n"));
        assert!(text.contains("serve_placements_total{accelerator=\"multicore\"} 1\n"));
        assert!(text.contains("serve_queue_depth_peak 6\n"));
        assert!(text.contains("serve_extra_total{name=\"bfs_runs\"} 4\n"));
        assert!(text.contains("serve_schedule_latency_ms_count 1\n"));
        let parsed = heteromap_obs::metrics::parse_prometheus(&text).unwrap();
        assert_eq!(parsed, heteromap_obs::metrics::samples(&series));
        // Grouped by name: one TYPE header per metric even with two labels.
        assert_eq!(
            text.matches("# TYPE serve_placements_total counter")
                .count(),
            1
        );
    }
}
