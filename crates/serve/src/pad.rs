//! Cache-line padding against false sharing.
//!
//! Hot atomics that different cores update concurrently (cache shard locks,
//! metrics counters, assembly-lane heads) must not share a 64-byte cache
//! line, or every update ping-pongs the line between cores and the "lock-free"
//! counter serializes anyway. [`CacheAligned`] forces each wrapped value onto
//! its own line with `#[repr(align(64))]` — the manual, dependency-free
//! equivalent of crossbeam's `CachePadded`.

use std::ops::{Deref, DerefMut};

/// Aligns (and therefore pads) `T` to a 64-byte cache-line boundary.
///
/// Wrapping elements of an array/`Vec` in this guarantees no two elements
/// share a cache line, eliminating false sharing between per-core slots.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(64))]
pub struct CacheAligned<T>(pub T);

impl<T> CacheAligned<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        CacheAligned(value)
    }

    /// Unwraps the value.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> Deref for CacheAligned<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> DerefMut for CacheAligned<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T> From<T> for CacheAligned<T> {
    fn from(value: T) -> Self {
        CacheAligned(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapper_is_line_aligned_and_padded() {
        assert_eq!(std::mem::align_of::<CacheAligned<u8>>(), 64);
        assert_eq!(std::mem::size_of::<CacheAligned<u8>>(), 64);
        // A Vec of aligned wrappers puts every element on its own line.
        let v: Vec<CacheAligned<u64>> = (0..4).map(CacheAligned::new).collect();
        for w in &v {
            assert_eq!((w as *const _ as usize) % 64, 0);
        }
    }

    #[test]
    fn deref_round_trips() {
        let mut w = CacheAligned::new(41u64);
        *w += 1;
        assert_eq!(*w, 42);
        assert_eq!(w.into_inner(), 42);
    }
}
