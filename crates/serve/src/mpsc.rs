//! Lock-free bounded ring for batch-assembly slot reservation.
//!
//! [`SlotRing`] is the classic Vyukov bounded MPMC queue: each slot carries a
//! sequence number that encodes, relative to the head/tail positions, whether
//! the slot is free to write or ready to read. Producers reserve a slot with
//! one CAS on the tail and publish with one release store — no mutex, so
//! concurrent cache misses enqueue into an assembly lane without convoying
//! behind each other (the failure mode of the old single `Mutex<Vec<_>>`
//! queue). The serving engine uses it MPSC-style — many request threads
//! produce, whichever thread holds the lane's leader lock consumes — but the
//! implementation is safe for multiple consumers too.

use crate::pad::CacheAligned;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

struct Slot<T> {
    /// Vyukov sequence: `pos` when free for the producer that reserves
    /// position `pos`, `pos + 1` when published, `pos + capacity` after the
    /// consumer frees it for the next lap.
    sequence: AtomicUsize,
    value: UnsafeCell<Option<T>>,
}

/// A fixed-capacity lock-free MPMC ring (used MPSC by the batcher).
pub struct SlotRing<T> {
    buffer: Box<[Slot<T>]>,
    /// `capacity - 1`; capacity is a power of two so masking replaces `%`.
    mask: usize,
    /// Next position to write (producers CAS this).
    tail: CacheAligned<AtomicUsize>,
    /// Next position to read (consumers CAS this).
    head: CacheAligned<AtomicUsize>,
}

// The UnsafeCell is only written by the producer that owns the slot's
// sequence number and only read by the consumer that claims it — the
// sequence protocol hands the cell off with acquire/release ordering.
unsafe impl<T: Send> Send for SlotRing<T> {}
unsafe impl<T: Send> Sync for SlotRing<T> {}

impl<T> std::fmt::Debug for SlotRing<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlotRing")
            .field("capacity", &(self.mask + 1))
            .field("len", &self.len())
            .finish()
    }
}

impl<T> SlotRing<T> {
    /// Creates a ring holding at least `capacity` items (rounded up to the
    /// next power of two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2).next_power_of_two();
        SlotRing {
            buffer: (0..capacity)
                .map(|i| Slot {
                    sequence: AtomicUsize::new(i),
                    value: UnsafeCell::new(None),
                })
                .collect(),
            mask: capacity - 1,
            tail: CacheAligned::new(AtomicUsize::new(0)),
            head: CacheAligned::new(AtomicUsize::new(0)),
        }
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Approximate number of queued items (exact when quiescent).
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Relaxed);
        tail.saturating_sub(head)
    }

    /// Whether the ring appears empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `value`; returns it back if the ring is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.buffer[pos & self.mask];
            let seq = slot.sequence.load(Ordering::Acquire);
            if seq == pos {
                // Free this lap: try to reserve it.
                match self.tail.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // We own the slot exclusively until the publish
                        // store below.
                        unsafe { *slot.value.get() = Some(value) };
                        slot.sequence.store(pos + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(now) => pos = now,
                }
            } else if seq < pos {
                // The slot is still occupied from the previous lap: full.
                return Err(value);
            } else {
                // Another producer advanced past us; catch up.
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues the oldest item, or `None` if the ring is empty.
    pub fn pop(&self) -> Option<T> {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.buffer[pos & self.mask];
            let seq = slot.sequence.load(Ordering::Acquire);
            if seq == pos + 1 {
                // Published: try to claim it.
                match self.head.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let value = unsafe { (*slot.value.get()).take() };
                        // Free the slot for the producer one lap ahead.
                        slot.sequence.store(pos + self.mask + 1, Ordering::Release);
                        return value;
                    }
                    Err(now) => pos = now,
                }
            } else if seq <= pos {
                // Not yet published: empty (from this consumer's view).
                return None;
            } else {
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn fifo_order_single_thread() {
        let ring = SlotRing::new(8);
        for i in 0..5 {
            ring.push(i).unwrap();
        }
        assert_eq!(ring.len(), 5);
        for i in 0..5 {
            assert_eq!(ring.pop(), Some(i));
        }
        assert_eq!(ring.pop(), None);
        assert!(ring.is_empty());
    }

    #[test]
    fn full_ring_rejects_and_returns_value() {
        let ring = SlotRing::new(2);
        assert_eq!(ring.capacity(), 2);
        ring.push(1).unwrap();
        ring.push(2).unwrap();
        assert_eq!(ring.push(3), Err(3));
        assert_eq!(ring.pop(), Some(1));
        ring.push(3).unwrap();
        assert_eq!(ring.pop(), Some(2));
        assert_eq!(ring.pop(), Some(3));
    }

    #[test]
    fn wraps_around_many_laps() {
        let ring = SlotRing::new(4);
        for lap in 0..100 {
            for i in 0..3 {
                ring.push(lap * 10 + i).unwrap();
            }
            for i in 0..3 {
                assert_eq!(ring.pop(), Some(lap * 10 + i));
            }
        }
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        const PRODUCERS: usize = 8;
        const PER_PRODUCER: usize = 500;
        let ring = SlotRing::new(64);
        let produced = AtomicUsize::new(0);
        let consumed = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for p in 0..PRODUCERS {
                let ring = &ring;
                let produced = &produced;
                scope.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let mut v = p * PER_PRODUCER + i;
                        loop {
                            match ring.push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                        produced.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            let ring = &ring;
            let produced = &produced;
            let consumed = &consumed;
            scope.spawn(move || {
                let mut got = Vec::new();
                while got.len() < PRODUCERS * PER_PRODUCER {
                    match ring.pop() {
                        Some(v) => got.push(v),
                        None => std::thread::yield_now(),
                    }
                }
                consumed.lock().unwrap().extend(got);
                let _ = produced;
            });
        });
        let got = consumed.into_inner().unwrap();
        assert_eq!(got.len(), PRODUCERS * PER_PRODUCER);
        let unique: HashSet<usize> = got.iter().copied().collect();
        assert_eq!(unique.len(), PRODUCERS * PER_PRODUCER, "no duplicates");
    }

    #[test]
    fn per_producer_order_is_preserved() {
        // MPSC contract: items from one producer come out in push order.
        const PER: usize = 300;
        let ring = SlotRing::new(16);
        let seen = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for p in 0..2usize {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..PER {
                        let mut v = (p, i);
                        while let Err(back) = ring.push(v) {
                            v = back;
                            std::thread::yield_now();
                        }
                    }
                });
            }
            let ring = &ring;
            let seen = &seen;
            scope.spawn(move || {
                let mut got = Vec::new();
                while got.len() < 2 * PER {
                    match ring.pop() {
                        Some(v) => got.push(v),
                        None => std::thread::yield_now(),
                    }
                }
                seen.lock().unwrap().extend(got);
            });
        });
        let got = seen.into_inner().unwrap();
        for p in 0..2 {
            let order: Vec<usize> = got
                .iter()
                .filter(|(q, _)| *q == p)
                .map(|&(_, i)| i)
                .collect();
            assert_eq!(order, (0..PER).collect::<Vec<_>>(), "producer {p}");
        }
    }
}
