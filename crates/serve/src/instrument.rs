//! Metrics instrumentation for host kernel execution.
//!
//! [`KernelRunner`] is a small `Copy` value used throughout the examples and
//! benches; rather than threading an observer through it, the serving layer
//! wraps it: [`MeteredRunner`] forwards every run and records the measured
//! kernel latency (and a per-workload run counter) into a
//! [`MetricsRegistry`], so a serving process exposes host-execution
//! percentiles next to its scheduling metrics.

use crate::metrics::MetricsRegistry;
use heteromap_graph::CsrGraph;
use heteromap_kernels::runner::KernelRun;
use heteromap_kernels::KernelRunner;
use heteromap_model::Workload;
use std::sync::Arc;

/// A [`KernelRunner`] that reports latencies into a metrics registry.
#[derive(Debug, Clone)]
pub struct MeteredRunner {
    runner: KernelRunner,
    metrics: Arc<MetricsRegistry>,
}

impl MeteredRunner {
    /// Wraps `runner`, reporting into `metrics`.
    pub fn new(runner: KernelRunner, metrics: Arc<MetricsRegistry>) -> Self {
        MeteredRunner { runner, metrics }
    }

    /// The wrapped runner.
    pub fn runner(&self) -> &KernelRunner {
        &self.runner
    }

    /// Runs `workload` on `graph`, recording the kernel latency histogram
    /// and a `kernel_runs_<workload>` counter.
    pub fn run(&self, workload: Workload, graph: &CsrGraph) -> KernelRun {
        let run = self.runner.run(workload, graph);
        self.metrics
            .kernel_latency
            .record(run.elapsed.as_secs_f64() * 1e3);
        self.metrics
            .counter(&format!("kernel_runs_{workload}"))
            .inc();
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteromap_graph::gen::{GraphGenerator, UniformRandom};

    #[test]
    fn metered_runs_record_latency_and_counters() {
        let metrics = Arc::new(MetricsRegistry::new());
        let runner = MeteredRunner::new(KernelRunner::new(2), Arc::clone(&metrics));
        let g = UniformRandom::new(300, 1_800).generate(3);
        let a = runner.run(Workload::Bfs, &g);
        let b = runner.run(Workload::Bfs, &g);
        assert_eq!(a.output.checksum(), b.output.checksum());
        let snap = metrics.snapshot();
        assert_eq!(snap.kernel_runs, 2);
        assert!(snap.kernel_p50_ms > 0.0);
        assert!(snap
            .extra
            .iter()
            .any(|(name, count)| name.starts_with("kernel_runs_") && *count == 2));
    }

    #[test]
    fn metered_output_matches_plain_runner() {
        let metrics = Arc::new(MetricsRegistry::new());
        let plain = KernelRunner::new(2);
        let metered = MeteredRunner::new(plain, metrics);
        let g = UniformRandom::new(250, 1_500).generate(4);
        assert_eq!(
            metered.run(Workload::PageRank, &g).output.checksum(),
            plain.run(Workload::PageRank, &g).output.checksum()
        );
        assert_eq!(metered.runner().threads(), 2);
    }
}
