//! Sharded placement cache keyed by the discretized `(B, I)` pair.
//!
//! The paper's 0.1-increment grid (§III) makes the `(B, I)` key space
//! finite: every `I` vector is grid-quantized by construction and every
//! named workload's `B` profile sits on grid levels, so a serving process
//! sees the same keys over and over — hit rates are high by construction.
//! Keys are the **bit patterns** of the 17 variables plus the raw graph
//! statistics the `I` vector carries (predictors may read them — the
//! decision tree's density rule does), so the cache is correct even for
//! off-grid inputs: distinct key bits never collide, and equal bits give a
//! predictor byte-identical inputs, implying an identical prediction.
//!
//! Shards are independent `Mutex`-protected maps selected by key hash, so
//! concurrent lookups mostly touch different locks. Each shard runs LRU
//! eviction against its slice of the configured capacity, and the whole
//! cache carries a generation counter for explicit invalidation when the
//! fault plan or predictor changes.

use crate::pad::CacheAligned;
use heteromap_model::{BVector, IVector, MConfig, BI_DIM};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Multiplier of the FxHash word fold (Firefox's hasher): fast, fixed, and
/// good enough for keys that are already full-entropy `f64` bit patterns.
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Folds a word into an FxHash-style running hash.
#[inline]
fn fx_fold(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED)
}

/// Cache key: the exact bit patterns of the 13 B + 4 I variables, plus the
/// four raw statistics behind the `I` vector (vertices, edges, max degree,
/// diameter) — everything a [`heteromap_predict::Predictor`] can observe.
///
/// The hash of the 21 words is folded once at construction and carried in
/// the key, so the hot path never re-hashes: shard selection, assembly-lane
/// selection and the shard `HashMap` (through [`IdentityHasher`]) all reuse
/// the same precomputed value. The old scheme ran SipHash over all 21 words
/// twice per lookup (once for the shard, once inside the map) — measurable
/// at millions of requests per second.
#[derive(Debug, Clone, Copy)]
pub struct PredKey {
    bits: [u64; BI_DIM + 4],
    hash: u64,
}

impl PartialEq for PredKey {
    fn eq(&self, other: &Self) -> bool {
        // Hash first: a one-word reject covers almost every mismatch.
        self.hash == other.hash && self.bits == other.bits
    }
}

impl Eq for PredKey {}

impl Hash for PredKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl PredKey {
    /// Builds the key for one benchmark-input pair.
    pub fn new(b: &BVector, i: &IVector) -> Self {
        let mut bits = [0u64; BI_DIM + 4];
        for (slot, v) in bits.iter_mut().zip(b.as_array()) {
            *slot = v.to_bits();
        }
        for (slot, v) in bits[13..].iter_mut().zip(i.as_array()) {
            *slot = v.to_bits();
        }
        let raw = i.raw();
        bits[BI_DIM] = raw.vertices;
        bits[BI_DIM + 1] = raw.edges;
        bits[BI_DIM + 2] = raw.max_degree;
        bits[BI_DIM + 3] = raw.diameter;
        let hash = bits.iter().fold(0u64, |h, &w| fx_fold(h, w));
        PredKey { bits, hash }
    }

    /// The precomputed 64-bit hash of the key.
    pub fn hash_value(&self) -> u64 {
        self.hash
    }

    /// Cache-shard index: low hash bits.
    fn shard_index(&self, shards: usize) -> usize {
        (self.hash as u32 as usize) % shards
    }

    /// Batch-assembly-lane index: high hash bits, so lane choice is
    /// independent of shard choice (a hot shard does not imply a hot lane).
    pub fn lane_index(&self, lanes: usize) -> usize {
        ((self.hash >> 32) as usize) % lanes.max(1)
    }
}

/// Pass-through hasher for maps keyed by [`PredKey`]: the key already
/// carries a strong precomputed hash, so the map hasher just forwards it.
#[derive(Debug, Default, Clone, Copy)]
pub struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("IdentityHasher is only for u64-hashed keys");
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

/// `BuildHasher` for [`IdentityHasher`] maps.
pub type IdentityState = BuildHasherDefault<IdentityHasher>;

/// A cached prediction: the machine configuration plus how many predictor
/// fallback steps produced it (carried into the attempt log on deploy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachedPrediction {
    /// The predicted machine choices.
    pub config: MConfig,
    /// Predictor fallback steps taken when this was computed.
    pub fallbacks: u32,
}

/// Outcome of a cache insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Stored without displacing anything.
    Inserted,
    /// Stored after evicting the shard's least-recently-used entry.
    InsertedEvicting,
    /// Dropped: the cache was invalidated after this value was computed.
    StaleGeneration,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<PredKey, Entry, IdentityState>,
    tick: u64,
}

#[derive(Debug)]
struct Entry {
    value: CachedPrediction,
    last_used: u64,
}

/// The sharded LRU prediction cache.
///
/// Each shard (mutex + map + LRU tick) lives on its own cache line via
/// [`CacheAligned`], so lock traffic on one shard never false-shares with a
/// neighbor's.
#[derive(Debug)]
pub struct ShardedCache {
    shards: Vec<CacheAligned<Mutex<Shard>>>,
    shard_capacity: usize,
    generation: AtomicU64,
}

impl ShardedCache {
    /// Creates a cache with `shards` independent shards sharing `capacity`
    /// total entries (each shard holds `capacity / shards`, minimum 1).
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        ShardedCache {
            shard_capacity: (capacity / shards).max(1),
            shards: (0..shards)
                .map(|_| CacheAligned::new(Mutex::new(Shard::default())))
                .collect(),
            generation: AtomicU64::new(0),
        }
    }

    /// The current invalidation generation. Capture it **before** computing
    /// a value to insert; [`ShardedCache::insert`] drops values computed
    /// against an older generation.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Looks up a prediction, refreshing its LRU position.
    pub fn get(&self, key: &PredKey) -> Option<CachedPrediction> {
        let mut shard = self.shards[key.shard_index(self.shards.len())]
            .lock()
            .expect("cache shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        shard.map.get_mut(key).map(|e| {
            e.last_used = tick;
            e.value
        })
    }

    /// Inserts a prediction computed at `generation`, evicting the shard's
    /// LRU entry if the shard is full. Values computed before the last
    /// invalidation are dropped (their model or fault plan is gone).
    pub fn insert(&self, key: PredKey, value: CachedPrediction, generation: u64) -> InsertOutcome {
        if generation != self.generation() {
            return InsertOutcome::StaleGeneration;
        }
        let mut shard = self.shards[key.shard_index(self.shards.len())]
            .lock()
            .expect("cache shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        let mut evicted = false;
        if !shard.map.contains_key(&key) && shard.map.len() >= self.shard_capacity {
            if let Some(lru) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                shard.map.remove(&lru);
                evicted = true;
            }
        }
        shard.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
        if evicted {
            InsertOutcome::InsertedEvicting
        } else {
            InsertOutcome::Inserted
        }
    }

    /// Clears every shard and bumps the generation, so in-flight values
    /// computed against the old model/fault plan can no longer be inserted.
    /// Returns the new generation.
    pub fn invalidate(&self) -> u64 {
        let gen = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard poisoned");
            shard.map.clear();
        }
        gen
    }

    /// Total entries across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteromap_graph::GraphStats;
    use heteromap_model::Workload;

    fn key(seed: u64) -> PredKey {
        let stats = GraphStats::from_known(seed + 1, (seed + 1) * 8, 5, 4);
        let i = IVector::from_normalized(
            [
                (seed % 11) as f64 / 10.0,
                ((seed / 11) % 11) as f64 / 10.0,
                0.2,
                0.3,
            ],
            stats,
        );
        PredKey::new(&Workload::Bfs.b_vector(), &i)
    }

    fn value(c: f64) -> CachedPrediction {
        let mut config = MConfig::gpu_default();
        config.cores = c;
        CachedPrediction {
            config,
            fallbacks: 0,
        }
    }

    #[test]
    fn get_after_insert_round_trips() {
        let cache = ShardedCache::new(4, 64);
        let k = key(1);
        assert!(cache.get(&k).is_none());
        assert_eq!(
            cache.insert(k, value(0.5), cache.generation()),
            InsertOutcome::Inserted
        );
        assert_eq!(cache.get(&k).unwrap(), value(0.5));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = ShardedCache::new(4, 1024);
        for s in 0..100 {
            cache.insert(key(s), value(s as f64 / 100.0), 0);
        }
        for s in 0..100 {
            assert_eq!(cache.get(&key(s)).unwrap(), value(s as f64 / 100.0));
        }
    }

    #[test]
    fn lru_eviction_prefers_stale_entries() {
        // Single shard, capacity 2: touching `a` makes `b` the LRU victim.
        let cache = ShardedCache::new(1, 2);
        let (a, b, c) = (key(1), key(2), key(3));
        cache.insert(a, value(0.1), 0);
        cache.insert(b, value(0.2), 0);
        assert!(cache.get(&a).is_some());
        assert_eq!(
            cache.insert(c, value(0.3), 0),
            InsertOutcome::InsertedEvicting
        );
        assert!(cache.get(&a).is_some(), "recently used survives");
        assert!(cache.get(&b).is_none(), "LRU entry evicted");
        assert!(cache.get(&c).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn invalidation_clears_and_rejects_stale_inserts() {
        let cache = ShardedCache::new(2, 16);
        let gen = cache.generation();
        cache.insert(key(1), value(0.1), gen);
        let new_gen = cache.invalidate();
        assert!(cache.is_empty());
        assert_eq!(new_gen, gen + 1);
        // A value computed before the invalidation must be dropped.
        assert_eq!(
            cache.insert(key(2), value(0.2), gen),
            InsertOutcome::StaleGeneration
        );
        assert!(cache.get(&key(2)).is_none());
        // Fresh-generation inserts work again.
        assert_eq!(
            cache.insert(key(2), value(0.2), new_gen),
            InsertOutcome::Inserted
        );
    }

    #[test]
    fn key_is_exact_bits_not_just_grid_bucket() {
        let stats = GraphStats::from_known(10, 80, 5, 4);
        let a = IVector::from_normalized([0.1, 0.2, 0.3, 0.4], stats);
        let b = IVector::from_normalized([0.1, 0.2, 0.3, 0.4000001], stats);
        let w = Workload::Bfs.b_vector();
        assert_ne!(PredKey::new(&w, &a), PredKey::new(&w, &b));
        assert_eq!(PredKey::new(&w, &a), PredKey::new(&w, &a));
    }

    #[test]
    fn key_covers_raw_stats_behind_equal_normalized_values() {
        // The decision tree reads `IVector::density()` (raw average degree),
        // so two inputs that discretize to the same grid cell but differ in
        // raw statistics must occupy distinct cache entries.
        let sparse = GraphStats::from_known(1_000, 2_000, 5, 4);
        let dense = GraphStats::from_known(1_000, 90_000, 5, 4);
        let a = IVector::from_normalized([0.1, 0.1, 0.0, 0.2], sparse);
        let b = IVector::from_normalized([0.1, 0.1, 0.0, 0.2], dense);
        assert_eq!(a.as_array(), b.as_array(), "same grid cell by construction");
        let w = Workload::Bfs.b_vector();
        assert_ne!(PredKey::new(&w, &a), PredKey::new(&w, &b));
    }
}
