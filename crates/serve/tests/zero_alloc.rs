//! Steady-state zero-allocation regression tests.
//!
//! The serving hot path — cache lookup, deterministic deploy, metrics — must
//! not touch the heap once warm. These tests bracket warm serving with the
//! obs counting-allocator probe (`alloc-probe` feature, enabled through this
//! crate's dev-dependencies) and assert the per-thread allocation delta is
//! exactly zero. If the probe is compiled out the tests skip rather than
//! report a vacuous pass.

use heteromap::HeteroMap;
use heteromap_graph::datasets::Dataset;
use heteromap_graph::GraphStats;
use heteromap_model::Workload;
use heteromap_serve::{ServeConfig, ServeEngine, ServeMode, ServeSource};

fn combos() -> Vec<(Workload, GraphStats)> {
    let mut out = Vec::new();
    for &w in &Workload::all() {
        for &d in &Dataset::all() {
            out.push((w, d.stats()));
        }
    }
    out
}

fn assert_steady_state_alloc_free(engine: &ServeEngine, what: &str) {
    let requests = combos();
    // Warm-up: populate the cache and grow every lazy buffer (thread-local
    // scratches, metrics, hash maps) to steady-state size.
    for _ in 0..2 {
        for &(w, stats) in &requests {
            engine.schedule_stats(w, stats);
        }
    }

    let before = heteromap_obs::thread_alloc_count();
    for _ in 0..3 {
        for &(w, stats) in &requests {
            let served = engine.schedule_stats(w, stats);
            assert_eq!(served.source, ServeSource::CacheHit, "{what}: warm = hit");
        }
    }
    let after = heteromap_obs::thread_alloc_count();
    assert_eq!(
        after - before,
        0,
        "{what}: steady-state cached serving allocated {} times",
        after - before
    );
}

#[test]
fn cached_steady_state_is_allocation_free() {
    if !heteromap_obs::probe_enabled() {
        eprintln!("alloc-probe feature off; skipping");
        return;
    }
    let engine = ServeEngine::new(
        HeteroMap::with_decision_tree(),
        ServeConfig::with_mode(ServeMode::Cached),
    );
    assert_steady_state_alloc_free(&engine, "cached/decision-tree");
}

#[test]
fn batched_steady_state_is_allocation_free() {
    // Batched mode's steady state is the same hit path; this guards the
    // mode dispatch itself against accidental allocation.
    if !heteromap_obs::probe_enabled() {
        eprintln!("alloc-probe feature off; skipping");
        return;
    }
    let engine = ServeEngine::new(
        HeteroMap::with_trained_deep(20, 5),
        ServeConfig::with_mode(ServeMode::CachedBatched),
    );
    assert_steady_state_alloc_free(&engine, "batched/deep");
}

#[test]
fn uncached_neural_inference_is_allocation_free_once_warm() {
    // The inference kernel itself (flat ping-pong arena + thread-local
    // scratch) must also run without heap traffic after the first call.
    if !heteromap_obs::probe_enabled() {
        eprintln!("alloc-probe feature off; skipping");
        return;
    }
    let engine = ServeEngine::new(
        HeteroMap::with_trained_deep(20, 5),
        ServeConfig::with_mode(ServeMode::Uncached),
    );
    let requests = combos();
    for &(w, stats) in &requests {
        engine.schedule_stats(w, stats);
    }
    let before = heteromap_obs::thread_alloc_count();
    for &(w, stats) in &requests {
        let served = engine.schedule_stats(w, stats);
        assert!(matches!(served.source, ServeSource::Computed { .. }));
    }
    let after = heteromap_obs::thread_alloc_count();
    assert_eq!(
        after - before,
        0,
        "uncached warm inference allocated {} times",
        after - before
    );
}
