//! Concurrency and determinism tests for the serving engine.
//!
//! The load-bearing property: serving is an *optimization*, never a
//! different answer. Cached, batched and uncached serving must return
//! bit-identical placements for the same (workload, statistics, fault plan)
//! at any thread count, while hits charge (near-)zero predictor overhead
//! and misses charge the full inference cost.

use heteromap::HeteroMap;
use heteromap_accel::system::MultiAcceleratorSystem;
use heteromap_graph::datasets::Dataset;
use heteromap_graph::GraphStats;
use heteromap_model::Workload;
use heteromap_predict::nn::TrainConfig;
use heteromap_predict::persist::{read_model, write_model, PersistedModel};
use heteromap_predict::predictor::Objective;
use heteromap_predict::{NeuralPredictor, Trainer};
use heteromap_serve::{ServeConfig, ServeEngine, ServeMode, ServeSource, Served};
use std::sync::OnceLock;

/// A mixed request stream over every (workload, dataset) combination, with
/// repeats so caches actually hit. `salt` interleaves the order.
fn mixed_requests(repeats: usize, salt: usize) -> Vec<(Workload, GraphStats)> {
    let workloads = Workload::all();
    let datasets = Dataset::all();
    let mut combos: Vec<(Workload, GraphStats)> = Vec::new();
    for &w in &workloads {
        for &d in &datasets {
            combos.push((w, d.stats()));
        }
    }
    (0..combos.len() * repeats)
        .map(|idx| combos[(idx * (salt * 2 + 1)) % combos.len()])
        .collect()
}

/// The trained deep predictor, trained once per test binary and cloned out
/// of the model-persistence round trip (training dominates test time;
/// deserialization is microseconds and bit-exact).
fn deep_nn() -> NeuralPredictor {
    static TRAINED: OnceLock<Vec<u8>> = OnceLock::new();
    let bytes = TRAINED.get_or_init(|| {
        // Small training run keeps the test fast; the NN still has real
        // inference_flops, so overhead charging is observable.
        let system = MultiAcceleratorSystem::primary();
        let trainer = Trainer::new(system).with_objective(Objective::Performance);
        let db = trainer.generate_database(40, 9);
        let config = TrainConfig {
            hidden: 128,
            seed: 9,
            ..TrainConfig::default()
        };
        let nn = NeuralPredictor::train(&db, config);
        let mut out = Vec::new();
        write_model(&PersistedModel::Nn(nn), &mut out).expect("serialize trained model");
        out
    });
    let PersistedModel::Nn(nn) = read_model(bytes.as_slice()).expect("reload trained model") else {
        panic!("expected a neural model");
    };
    nn
}

/// A deep-NN HeteroMap over the shared trained predictor.
fn deep_model() -> HeteroMap {
    HeteroMap::new(MultiAcceleratorSystem::primary(), Box::new(deep_nn()))
}

fn deep_engine(mode: ServeMode) -> ServeEngine {
    ServeEngine::new(deep_model(), ServeConfig::with_mode(mode))
}

fn assert_identical(a: &Served, b: &Served, what: &str) {
    assert_eq!(a.placement.config, b.placement.config, "{what}: config");
    // Completion time differs only by the charged overhead; everything the
    // deploy computed must agree bit-for-bit.
    assert_eq!(
        (a.placement.report.time_ms - a.placement.predictor_overhead_ms).to_bits(),
        (b.placement.report.time_ms - b.placement.predictor_overhead_ms).to_bits(),
        "{what}: base completion time"
    );
    assert_eq!(
        a.placement.report.energy_j.to_bits(),
        b.placement.report.energy_j.to_bits(),
        "{what}: energy"
    );
    assert_eq!(
        a.placement.report.utilization.to_bits(),
        b.placement.report.utilization.to_bits(),
        "{what}: utilization"
    );
}

#[test]
fn all_modes_agree_across_thread_counts() {
    let requests = mixed_requests(2, 1);
    let uncached = deep_engine(ServeMode::Uncached);
    let baseline = uncached.serve_all(&requests, 1);

    for mode in [
        ServeMode::Uncached,
        ServeMode::Cached,
        ServeMode::CachedBatched,
    ] {
        for threads in [1usize, 4, 16] {
            let engine = deep_engine(mode);
            let served = engine.serve_all(&requests, threads);
            assert_eq!(served.len(), baseline.len());
            for (s, b) in served.iter().zip(&baseline) {
                assert_identical(s, b, &format!("{mode:?} x{threads}"));
            }
        }
    }
}

#[test]
fn lane_counts_never_change_answers() {
    // The lane count shards batch assembly; it must never leak into
    // results. Pin a few counts spanning one lane to more lanes than
    // threads, and check each against the uncached single-thread baseline.
    // Configs, energy and utilization must agree bit-for-bit; the base
    // completion time is compared with a tolerance because the charged
    // overhead differs per batch composition and `(base + o) - o` can
    // legitimately differ in the last ulp.
    let requests = mixed_requests(2, 2);
    let baseline = deep_engine(ServeMode::Uncached).serve_all(&requests, 1);
    assert!(heteromap_serve::default_lanes() >= 1);
    for lanes in [1usize, 2, 8, 16] {
        let engine = ServeEngine::new(
            deep_model(),
            ServeConfig::with_mode(ServeMode::CachedBatched).with_lanes(lanes),
        );
        for threads in [1usize, 4] {
            let served = engine.serve_all(&requests, threads);
            assert_eq!(served.len(), baseline.len());
            for (s, b) in served.iter().zip(&baseline) {
                let what = format!("{lanes} lanes x{threads}");
                assert_eq!(s.placement.config, b.placement.config, "{what}: config");
                assert_eq!(
                    s.placement.report.energy_j.to_bits(),
                    b.placement.report.energy_j.to_bits(),
                    "{what}: energy"
                );
                assert_eq!(
                    s.placement.report.utilization.to_bits(),
                    b.placement.report.utilization.to_bits(),
                    "{what}: utilization"
                );
                let s_base = s.placement.report.time_ms - s.placement.predictor_overhead_ms;
                let b_base = b.placement.report.time_ms - b.placement.predictor_overhead_ms;
                assert!(
                    (s_base - b_base).abs() <= 1e-9 * b_base.abs().max(1.0),
                    "{what}: base completion time {s_base} vs {b_base}"
                );
            }
        }
    }
}

#[test]
fn zero_overhead_config_makes_placements_fully_bit_identical() {
    // With flop_ns = 0 every path charges zero overhead, so entire
    // placements — including time_ms — compare equal across modes.
    let requests = mixed_requests(2, 0);
    let config = ServeConfig {
        flop_ns: 0.0,
        hit_overhead_ms: 0.0,
        ..ServeConfig::default()
    };
    let make = |mode| {
        ServeEngine::new(
            HeteroMap::with_trained_deep(40, 9),
            ServeConfig { mode, ..config },
        )
    };
    let baseline = make(ServeMode::Uncached).serve_all(&requests, 1);
    for mode in [ServeMode::Cached, ServeMode::CachedBatched] {
        let served = make(mode).serve_all(&requests, 8);
        for (s, b) in served.iter().zip(&baseline) {
            assert_eq!(s.placement, b.placement, "{mode:?}");
        }
    }
}

#[test]
fn hits_charge_near_zero_overhead_and_misses_charge_full_inference_cost() {
    let engine = deep_engine(ServeMode::Cached);
    let expected_miss_ms = engine.miss_overhead_ms();
    assert!(
        expected_miss_ms > 0.0,
        "a trained NN must have nonzero inference cost"
    );

    let miss = engine.schedule(Workload::PageRank, Dataset::LiveJournal);
    assert_eq!(miss.source, ServeSource::Computed { batched: false });
    assert_eq!(
        miss.placement.predictor_overhead_ms.to_bits(),
        expected_miss_ms.to_bits(),
        "miss charges inference_flops x flop_ns deterministically"
    );

    let hit = engine.schedule(Workload::PageRank, Dataset::LiveJournal);
    assert_eq!(hit.source, ServeSource::CacheHit);
    assert_eq!(
        hit.placement.predictor_overhead_ms, 0.0,
        "default hit overhead is zero"
    );
    assert!(
        hit.placement.report.time_ms < miss.placement.report.time_ms,
        "the miss's completion time carries the inference cost: hit {} vs miss {}",
        hit.placement.report.time_ms,
        miss.placement.report.time_ms
    );
    assert_eq!(
        (miss.placement.report.time_ms - expected_miss_ms).to_bits(),
        hit.placement.report.time_ms.to_bits(),
        "hit and miss differ by exactly the charged overhead"
    );

    // A configured hit overhead is charged verbatim.
    let priced = ServeEngine::new(
        deep_model(),
        ServeConfig {
            hit_overhead_ms: 0.25,
            ..ServeConfig::default()
        },
    );
    priced.schedule(Workload::PageRank, Dataset::LiveJournal);
    let priced_hit = priced.schedule(Workload::PageRank, Dataset::LiveJournal);
    assert_eq!(priced_hit.placement.predictor_overhead_ms, 0.25);
}

#[test]
fn concurrent_identical_misses_single_flight_into_one_inference() {
    let engine = deep_engine(ServeMode::CachedBatched);
    // 64 concurrent requests for the SAME combination: one inference, the
    // rest either single-flight-wait on it or hit the cache afterwards.
    let requests: Vec<(Workload, GraphStats)> = (0..64)
        .map(|_| (Workload::Bfs, Dataset::Facebook.stats()))
        .collect();
    let served = engine.serve_all(&requests, 16);
    let computed = served
        .iter()
        .filter(|s| matches!(s.source, ServeSource::Computed { .. }))
        .count();
    assert!(computed >= 1);
    let snap = engine.metrics().snapshot();
    assert_eq!(
        snap.cache_misses, computed as u64,
        "every computed result is exactly one recorded miss"
    );
    assert_eq!(
        snap.cache_hits + snap.cache_misses,
        64,
        "every request is a hit or a miss"
    );
    assert_eq!(
        snap.batched_requests + snap.single_flight_waits,
        snap.cache_misses,
        "every miss either rides a batch or waits on an identical in-flight key"
    );
    assert_eq!(engine.cache_len(), 1, "one combination, one entry");
    // All 64 answers agree.
    for s in &served {
        assert_eq!(s.placement.config, served[0].placement.config);
    }
}

#[test]
fn batched_mode_coalesces_distinct_concurrent_misses() {
    let engine = deep_engine(ServeMode::CachedBatched);
    // One pass over all distinct combinations at high concurrency: batches
    // should form (fewer forward passes than misses) whenever two leaders'
    // drains overlap; with 16 workers on 81+ combos this is effectively
    // always, but the assertions below hold even in the degenerate case.
    let requests = mixed_requests(1, 2);
    engine.serve_all(&requests, 16);
    let snap = engine.metrics().snapshot();
    assert_eq!(snap.cache_misses, requests.len() as u64);
    assert_eq!(snap.batched_requests, requests.len() as u64);
    assert!(snap.batches >= 1 && snap.batches <= snap.batched_requests);
    assert!(snap.mean_batch_size >= 1.0);
    assert!(snap.queue_depth_peak >= 1);
}

#[test]
fn invalidation_under_concurrency_is_safe_and_counted() {
    let engine = deep_engine(ServeMode::CachedBatched);
    let requests = mixed_requests(1, 0);
    std::thread::scope(|scope| {
        let eng = &engine;
        let reqs = &requests;
        for worker in 0..4 {
            scope.spawn(move || {
                for (w, stats) in reqs.iter().skip(worker).step_by(4) {
                    eng.schedule_stats(*w, *stats);
                }
            });
        }
        scope.spawn(|| {
            for _ in 0..5 {
                engine.invalidate();
                std::thread::yield_now();
            }
        });
    });
    let snap = engine.metrics().snapshot();
    assert_eq!(snap.cache_invalidations, 5);
    // Every request resolved despite racing invalidations.
    assert_eq!(snap.requests, requests.len() as u64);
    // And the engine still serves correct answers afterwards.
    let (w, stats) = requests[0];
    let after = engine.schedule_stats(w, stats);
    let reference = engine.with_model(|m| m.schedule_stats(w, stats));
    assert_eq!(after.placement.config, reference.config);
}

#[test]
fn invalidation_races_batched_inference_while_faults_are_active() {
    use heteromap_accel::{FaultPlan, FaultState};
    use heteromap_model::Accelerator;
    use heteromap_predict::DecisionTree;

    let engine = deep_engine(ServeMode::CachedBatched);
    // Fault schedules the chaos thread cycles through mid-flight: flaky GPU,
    // throttled multicore, dead GPU, healthy again.
    let plans = [
        FaultPlan::transient(0.7, 0xBAD),
        FaultPlan::healthy().with_state(
            Accelerator::Multicore,
            FaultState::Degraded {
                surviving_core_fraction: 0.1,
            },
        ),
        FaultPlan::gpu_down(),
        FaultPlan::healthy(),
    ];
    let requests = mixed_requests(3, 1);
    let served: Vec<Served> = std::thread::scope(|scope| {
        let eng = &engine;
        let reqs = &requests;
        let workers: Vec<_> = (0..8)
            .map(|worker| {
                scope.spawn(move || {
                    reqs.iter()
                        .skip(worker)
                        .step_by(8)
                        .map(|(w, stats)| eng.schedule_stats(*w, *stats))
                        .collect::<Vec<Served>>()
                })
            })
            .collect();
        // The chaos thread: swap fault plans (each swap invalidates the
        // cache), interleave explicit invalidations, and hot-swap the
        // predictor once — all while batches are draining.
        scope.spawn(|| {
            for (i, plan) in plans.iter().cycle().take(12).enumerate() {
                engine.set_fault_plan(*plan);
                if i == 5 {
                    engine.replace_predictor(Box::new(DecisionTree::paper()));
                }
                engine.invalidate();
                std::thread::yield_now();
            }
        });
        workers
            .into_iter()
            .flat_map(|h| h.join().expect("serving worker panicked"))
            .collect()
    });

    // No panic, no deadlock, and every request resolved to a placement —
    // possibly a failed-over or incomplete one while the GPU was down, but
    // always a returned answer with a coherent attempt log.
    assert_eq!(served.len(), requests.len());
    for s in &served {
        assert!(
            s.placement.completed() || !s.placement.attempts.records.is_empty(),
            "an unfinished placement must carry the failure evidence"
        );
    }
    let snap = engine.metrics().snapshot();
    assert_eq!(snap.requests, requests.len() as u64);
    assert!(
        snap.cache_invalidations >= 12,
        "both invalidation paths count"
    );

    // The engine settles: with the final healthy plan installed, a fresh
    // answer matches the live model exactly.
    let (w, stats) = requests[0];
    let after = engine.schedule_stats(w, stats);
    let reference = engine.with_model(|m| m.schedule_stats(w, stats));
    assert_eq!(after.placement.config, reference.config);
    assert!(after.placement.completed());
}

#[test]
fn metrics_snapshot_reports_rates_distribution_and_latency() {
    let engine = deep_engine(ServeMode::CachedBatched);
    let requests = mixed_requests(3, 1);
    engine.serve_all(&requests, 4);
    let snap = engine.metrics().snapshot();

    assert_eq!(snap.requests, requests.len() as u64);
    assert!(snap.cache_hits > 0, "repeated combos must hit");
    assert!(
        snap.cache_hit_rate > 0.0 && snap.cache_hit_rate < 1.0,
        "hit rate {}",
        snap.cache_hit_rate
    );
    assert!(snap.mean_batch_size >= 1.0);
    assert!(snap.schedule_p50_ms > 0.0);
    assert!(snap.schedule_p99_ms >= snap.schedule_p50_ms);
    assert!(snap.schedule_p95_ms >= snap.schedule_p50_ms);
    assert!(
        snap.gpu_placements + snap.multicore_placements == snap.requests,
        "every request routes somewhere"
    );

    let json = snap.to_json();
    assert!(json.contains("\"cache_hit_rate\""));
    assert!(json.contains("\"schedule_p99_ms\""));
    assert!(!json.contains("NaN"));
}

#[test]
fn batched_serving_is_bit_identical_under_contention_with_racing_invalidation() {
    use std::sync::atomic::{AtomicBool, Ordering};

    // The tentpole invariant for the sharded batcher: 16 threads hammering
    // the batched engine while another thread repeatedly invalidates the
    // cache must still produce answers bit-identical to the single-threaded
    // uncached baseline. Invalidation changes which path (miss/batch/hit)
    // serves a request, never the answer — the model itself is untouched.
    let requests = mixed_requests(2, 3);
    let baseline = deep_engine(ServeMode::Uncached).serve_all(&requests, 1);

    let engine = deep_engine(ServeMode::CachedBatched);
    let done = AtomicBool::new(false);
    let served = std::thread::scope(|scope| {
        let invalidator = scope.spawn(|| {
            let mut rounds = 0u32;
            while !done.load(Ordering::Relaxed) {
                engine.invalidate();
                rounds += 1;
                std::thread::yield_now();
            }
            rounds
        });
        let out = engine.serve_all(&requests, 16);
        done.store(true, Ordering::Relaxed);
        let rounds = invalidator.join().expect("invalidator panicked");
        assert!(rounds >= 1, "invalidations actually raced the serving");
        out
    });

    assert_eq!(served.len(), baseline.len());
    for (s, b) in served.iter().zip(&baseline) {
        assert_identical(s, b, "batched x16 vs uncached x1 under invalidation");
    }
    let snap = engine.metrics().snapshot();
    assert_eq!(snap.requests, requests.len() as u64);
}

#[test]
fn blocked_forward_is_bit_identical_to_scalar_reference_across_combo_sweep() {
    // The optimized inference path (lane-unrolled dots, cache-blocked
    // batched GEMM, flat activation arena) must agree bit-for-bit with the
    // deliberately naive scalar reference on every (workload, dataset)
    // combination — singly and batched.
    let nn = deep_nn();
    let model = deep_model();
    let mut queries = Vec::new();
    for &w in &Workload::all() {
        for &d in &Dataset::all() {
            let i = model.ivector(&d.stats());
            queries.push((w.b_vector(), i));
        }
    }
    assert_eq!(queries.len(), 81, "the full 81-combo sweep");

    use heteromap_predict::Predictor;
    let batched = nn.predict_batch(&queries);
    for ((b, i), batch_cfg) in queries.iter().zip(&batched) {
        let single = nn.predict(b, i);
        let reference = nn.predict_reference(b, i);
        for (k, (fast, slow)) in single
            .as_array()
            .iter()
            .zip(reference.as_array().iter())
            .enumerate()
        {
            assert_eq!(
                fast.to_bits(),
                slow.to_bits(),
                "single vs reference, output {k}"
            );
        }
        for (k, (fast, slow)) in batch_cfg
            .as_array()
            .iter()
            .zip(reference.as_array().iter())
            .enumerate()
        {
            assert_eq!(
                fast.to_bits(),
                slow.to_bits(),
                "batched vs reference, output {k}"
            );
        }
    }
}
