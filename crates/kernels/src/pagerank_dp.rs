//! Push-based data-parallel PageRank ("PageRank-DP") — vertex division with
//! atomic contributions to shared rank accumulators (B1 + B6 + B12).

use crate::pagerank::DAMPING;
use crate::par::{atomic_add_f32, par_ranges};
use heteromap_graph::{CsrGraph, VertexId};
use std::sync::atomic::{AtomicU32, Ordering};

/// Runs parallel push PageRank for `iterations` rounds.
///
/// Push formulation: each vertex scatters `rank[v] / out_deg(v)` to its
/// out-neighbours with atomic f32 adds — the read-write shared (B10) and
/// contended (B12) profile the paper assigns to PageRank-DP. Accumulation is
/// in f32, so results agree with the pull kernel to ~1e-3.
pub fn pagerank_dp(graph: &CsrGraph, iterations: u32, threads: usize) -> Vec<f64> {
    let n = graph.vertex_count();
    if n == 0 {
        return Vec::new();
    }
    let mut rank = vec![1.0f32 / n as f32; n];
    for _ in 0..iterations {
        let next: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0.0f32.to_bits())).collect();
        let rank_ref = &rank;
        let next_ref = &next;
        // Dangling mass reduction.
        let dangling: f32 = (0..n)
            .filter(|&v| graph.out_degree(v as VertexId) == 0)
            .map(|v| rank[v])
            .sum::<f32>()
            / n as f32;
        par_ranges(n, threads, move |range| {
            for v in range {
                let deg = graph.out_degree(v as VertexId);
                if deg == 0 {
                    continue;
                }
                let share = rank_ref[v] / deg as f32;
                for &t in graph.neighbors(v as VertexId) {
                    atomic_add_f32(&next_ref[t as usize], share);
                }
            }
        });
        for (v, slot) in next.iter().enumerate() {
            let gathered = f32::from_bits(slot.load(Ordering::Relaxed));
            rank[v] = (1.0 - DAMPING as f32) / n as f32 + DAMPING as f32 * (gathered + dangling);
        }
    }
    rank.into_iter().map(f64::from).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::pagerank;
    use heteromap_graph::gen::{GraphGenerator, PowerLaw, UniformRandom};

    #[test]
    fn agrees_with_pull_pagerank() {
        let g = UniformRandom::new(150, 900).generate(1);
        let push = pagerank_dp(&g, 10, 4);
        let pull = pagerank(&g, 10, 4);
        for (i, (a, b)) in push.iter().zip(pull.iter()).enumerate() {
            assert!((a - b).abs() < 1e-3, "vertex {i}: {a} vs {b}");
        }
    }

    #[test]
    fn ranks_sum_to_one() {
        let g = PowerLaw::new(300, 3).generate(2);
        let r = pagerank_dp(&g, 15, 8);
        let total: f64 = r.iter().sum();
        assert!((total - 1.0).abs() < 1e-3, "sum {total}");
    }

    #[test]
    fn empty_graph_returns_empty() {
        let g = heteromap_graph::EdgeList::new(0).into_csr().unwrap();
        assert!(pagerank_dp(&g, 5, 2).is_empty());
    }

    #[test]
    fn ranks_are_positive() {
        let g = UniformRandom::new(100, 400).generate(3);
        assert!(pagerank_dp(&g, 10, 2).iter().all(|&r| r > 0.0));
    }
}
