//! Lock-free shared frontier buffers for level-synchronous traversals.
//!
//! The seed's BFS funnelled every thread's discoveries through a
//! `Mutex<Vec>` once per level; on power-law graphs whose middle levels hold
//! most of the vertices, that lock serializes exactly the part of the
//! traversal that should scale. [`SharedFrontier`] replaces it with a
//! fixed-capacity buffer and a single atomic cursor: workers accumulate
//! discoveries in per-worker local buffers and flush each batch with one
//! `fetch_add` reservation followed by a plain memcpy into the reserved
//! (disjoint) range. Two frontiers are double-buffered by the caller and
//! reused across levels, so a whole BFS allocates its frontier storage once.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A fixed-capacity vertex buffer supporting concurrent lock-free appends
/// from a parallel region and plain reads after the region's barrier.
///
/// Writes use a reserve-then-copy protocol: `fetch_add` on the cursor hands
/// each flush a private range, so concurrent flushes never overlap. The
/// caller must only read ([`SharedFrontier::as_slice`]) outside parallel
/// regions that write — level-synchronous traversals get this for free from
/// the barrier between levels.
pub struct SharedFrontier {
    buf: Box<[UnsafeCell<u32>]>,
    len: AtomicUsize,
}

// SAFETY: concurrent `push_slice` calls write disjoint reserved ranges, and
// reads only happen after the parallel region's barrier (which the thread
// pool's mutex/condvar handshake turns into a happens-before edge).
unsafe impl Sync for SharedFrontier {}

impl std::fmt::Debug for SharedFrontier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedFrontier")
            .field("len", &self.len())
            .field("capacity", &self.buf.len())
            .finish()
    }
}

impl SharedFrontier {
    /// Creates an empty frontier able to hold `capacity` vertices. For BFS
    /// the capacity is the vertex count: every vertex enters a frontier at
    /// most once.
    pub fn with_capacity(capacity: usize) -> Self {
        SharedFrontier {
            buf: (0..capacity).map(|_| UnsafeCell::new(0)).collect(),
            len: AtomicUsize::new(0),
        }
    }

    /// Number of vertices currently in the frontier.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the frontier holds no vertices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resets the frontier to empty, keeping its allocation.
    pub fn clear(&mut self) {
        *self.len.get_mut() = 0;
    }

    /// Appends `items` atomically: one cursor reservation, one copy.
    /// Callable concurrently from many workers.
    ///
    /// # Panics
    ///
    /// Panics if the reservation would exceed capacity (a kernel bug — BFS
    /// admits each vertex at most once, bounding the total by capacity).
    pub fn push_slice(&self, items: &[u32]) {
        if items.is_empty() {
            return;
        }
        let at = self.len.fetch_add(items.len(), Ordering::Relaxed);
        assert!(
            at + items.len() <= self.buf.len(),
            "frontier overflow: {} + {} > {}",
            at,
            items.len(),
            self.buf.len()
        );
        for (slot, &item) in self.buf[at..at + items.len()].iter().zip(items) {
            // SAFETY: `at..at + items.len()` is exclusively ours via the
            // cursor reservation above.
            unsafe { *slot.get() = item };
        }
    }

    /// The frontier's contents. Only sound outside parallel regions that
    /// push (BFS reads the *previous* level's frontier, which no worker
    /// writes).
    pub fn as_slice(&self) -> &[u32] {
        let len = self.len().min(self.buf.len());
        // SAFETY: `UnsafeCell<u32>` and `u32` share layout; no writer is
        // active per this method's contract, and `0..len` is initialized.
        unsafe { std::slice::from_raw_parts(self.buf.as_ptr() as *const u32, len) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::run_threads;

    #[test]
    fn concurrent_pushes_preserve_every_item() {
        let frontier = SharedFrontier::with_capacity(8 * 100);
        run_threads(8, |t| {
            let items: Vec<u32> = (0..100).map(|i| (t * 100 + i) as u32).collect();
            // Flush in uneven batches to exercise the cursor.
            for batch in items.chunks(7) {
                frontier.push_slice(batch);
            }
        });
        let mut seen: Vec<u32> = frontier.as_slice().to_vec();
        seen.sort_unstable();
        assert_eq!(seen, (0..800).collect::<Vec<u32>>());
    }

    #[test]
    fn clear_retains_capacity_and_resets_len() {
        let mut frontier = SharedFrontier::with_capacity(16);
        frontier.push_slice(&[1, 2, 3]);
        assert_eq!(frontier.len(), 3);
        frontier.clear();
        assert!(frontier.is_empty());
        frontier.push_slice(&[9; 16]);
        assert_eq!(frontier.as_slice(), &[9; 16]);
    }

    #[test]
    fn empty_push_is_noop() {
        let frontier = SharedFrontier::with_capacity(0);
        frontier.push_slice(&[]);
        assert!(frontier.is_empty());
        assert_eq!(frontier.as_slice(), &[] as &[u32]);
    }

    #[test]
    #[should_panic(expected = "frontier overflow")]
    fn overflow_panics() {
        let frontier = SharedFrontier::with_capacity(2);
        frontier.push_slice(&[1, 2, 3]);
    }
}
