//! Uniform kernel dispatch used by examples, tests and benches.

use crate::par::{ExecEngine, Scheduler};
use crate::{
    bfs, community, conncomp, dfs, kcore, labelprop, pagerank, pagerank_dp, spmv, sssp_bf,
    sssp_delta, triangle,
};
use heteromap_graph::{CsrGraph, VertexId};
use heteromap_model::mconfig::DeployLimits;
use heteromap_model::{MConfig, OmpSchedule, Workload};
use std::time::{Duration, Instant};

/// Output of one kernel execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum KernelOutput {
    /// BFS/DFS-style levels or orders per vertex.
    Levels(Vec<u32>),
    /// Shortest-path distances per vertex.
    Distances(Vec<f32>),
    /// Rank values per vertex.
    Ranks(Vec<f64>),
    /// Component/community labels per vertex.
    Labels(Vec<u32>),
    /// A single scalar (triangle count).
    Count(u64),
}

impl KernelOutput {
    /// A coarse checksum used to keep benches honest (prevents dead-code
    /// elimination and catches wild nondeterminism).
    pub fn checksum(&self) -> f64 {
        match self {
            KernelOutput::Levels(v) => v
                .iter()
                .map(|&x| if x == u32::MAX { 0.0 } else { x as f64 })
                .sum(),
            KernelOutput::Distances(d) => {
                d.iter().filter(|x| x.is_finite()).map(|&x| x as f64).sum()
            }
            KernelOutput::Ranks(r) => r.iter().sum(),
            KernelOutput::Labels(l) => l.iter().map(|&x| x as f64).sum(),
            KernelOutput::Count(c) => *c as f64,
        }
    }
}

/// Timed execution result.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRun {
    /// What the kernel produced.
    pub output: KernelOutput,
    /// Wall-clock duration of the kernel body.
    pub elapsed: Duration,
    /// Threads used.
    pub threads: usize,
}

/// Dispatches the paper's nine workloads — plus the GARDENIA extensions
/// (SpMV, k-core, label propagation) — onto the real kernel
/// implementations.
///
/// Every run executes on the process-wide persistent
/// [`ThreadPool`](crate::pool::ThreadPool) by default: the runner leases the
/// pool for the duration of each kernel invocation, so a full bench sweep
/// spawns each worker thread once instead of once per parallel region. Use
/// [`KernelRunner::with_engine`] with [`ExecEngine::SpawnPerCall`] to
/// measure against the legacy spawn-and-join behaviour.
///
/// # Example
///
/// ```
/// use heteromap_graph::gen::{GraphGenerator, UniformRandom};
/// use heteromap_kernels::KernelRunner;
/// use heteromap_model::Workload;
///
/// let g = UniformRandom::new(500, 3_000).generate(0);
/// let run = KernelRunner::new(4).run(Workload::Bfs, &g);
/// assert!(run.elapsed.as_nanos() > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelRunner {
    threads: usize,
    source: VertexId,
    pagerank_iterations: u32,
    community_iterations: u32,
    delta: f32,
    scheduler: Scheduler,
    engine: ExecEngine,
}

impl KernelRunner {
    /// Creates a runner using `threads` worker threads.
    pub fn new(threads: usize) -> Self {
        KernelRunner {
            threads: threads.max(1),
            source: 0,
            pagerank_iterations: 20,
            community_iterations: 10,
            delta: 4.0,
            scheduler: Scheduler::Static,
            engine: ExecEngine::Pooled,
        }
    }

    /// Builds a runner that *deploys* a predicted machine configuration on
    /// the host: total threads from `M2 x M3` (multicore) or scaled-down
    /// GPU global threading, the `M11` schedule, and an `M12`-derived
    /// dynamic grain. This is the reproduction's host-side stand-in for the
    /// paper's step-3 deployment.
    ///
    /// The resulting thread count is clamped to the host's actual
    /// parallelism (`std::thread::available_parallelism`), so a
    /// `host_threads` budget larger than the machine cannot oversubscribe
    /// it.
    pub fn from_mconfig(cfg: &MConfig, limits: &DeployLimits, host_threads: usize) -> Self {
        let deployed = match cfg.accelerator {
            heteromap_model::Accelerator::Multicore => limits.total_multicore_threads(cfg),
            heteromap_model::Accelerator::Gpu => limits.global_threads(cfg),
        } as usize;
        // Scale the accelerator's thread count into the host's budget.
        let hw_max = match cfg.accelerator {
            heteromap_model::Accelerator::Multicore => {
                (limits.max_cores * limits.max_threads_per_core) as usize
            }
            heteromap_model::Accelerator::Gpu => limits.max_global_threads as usize,
        };
        let available = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(usize::MAX);
        let threads =
            ((deployed * host_threads.max(1)).div_ceil(hw_max.max(1))).clamp(1, available.max(1));
        let scheduler = match cfg.schedule {
            OmpSchedule::Static => Scheduler::Static,
            _ => Scheduler::Dynamic {
                grain: ((cfg.chunk_size * 256.0) as usize).max(1),
            },
        };
        KernelRunner {
            threads,
            scheduler,
            ..KernelRunner::new(1)
        }
    }

    /// Sets the work-distribution policy (`M11`/`M12`).
    pub fn with_scheduler(mut self, scheduler: Scheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the execution engine (persistent pool vs spawn-per-call).
    pub fn with_engine(mut self, engine: ExecEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the traversal source vertex (default 0).
    pub fn with_source(mut self, source: VertexId) -> Self {
        self.source = source;
        self
    }

    /// Sets PageRank power iterations (default 20, as in the cost model).
    pub fn with_pagerank_iterations(mut self, iterations: u32) -> Self {
        self.pagerank_iterations = iterations;
        self
    }

    /// Sets label-propagation sweeps for the `Community` and `LabelProp`
    /// workloads (default 10).
    pub fn with_community_iterations(mut self, iterations: u32) -> Self {
        self.community_iterations = iterations;
        self
    }

    /// Sets the Δ-stepping bucket width (default 4.0).
    pub fn with_delta(mut self, delta: f32) -> Self {
        self.delta = delta;
        self
    }

    /// Threads this runner uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execution engine this runner uses.
    pub fn engine(&self) -> ExecEngine {
        self.engine
    }

    /// Runs `workload` on `graph`, timing the kernel body.
    ///
    /// # Panics
    ///
    /// Panics if the configured source vertex is out of bounds for a
    /// traversal workload on a non-empty graph.
    pub fn run(&self, workload: Workload, graph: &CsrGraph) -> KernelRun {
        let name = workload_name(workload);
        let _span = heteromap_obs::span_cat(name, "kernel");
        let _region = heteromap_obs::region_scope(name);
        let start = Instant::now();
        let output = crate::par::with_engine(self.engine, || self.dispatch(workload, graph));
        KernelRun {
            output,
            elapsed: start.elapsed(),
            threads: self.threads,
        }
    }

    fn dispatch(&self, workload: Workload, graph: &CsrGraph) -> KernelOutput {
        match workload {
            Workload::Bfs => KernelOutput::Levels(bfs::bfs_with(
                graph,
                self.source,
                self.threads,
                self.scheduler,
            )),
            Workload::Dfs => {
                KernelOutput::Levels(dfs::dfs(graph, self.source, self.threads).parent)
            }
            Workload::SsspBf => KernelOutput::Distances(sssp_bf::sssp_bf_with(
                graph,
                self.source,
                self.threads,
                self.scheduler,
            )),
            Workload::SsspDelta => KernelOutput::Distances(sssp_delta::sssp_delta(
                graph,
                self.source,
                self.delta,
                self.threads,
            )),
            Workload::PageRank => KernelOutput::Ranks(pagerank::pagerank(
                graph,
                self.pagerank_iterations,
                self.threads,
            )),
            Workload::PageRankDp => KernelOutput::Ranks(pagerank_dp::pagerank_dp(
                graph,
                self.pagerank_iterations,
                self.threads,
            )),
            Workload::TriangleCount => KernelOutput::Count(triangle::triangle_count_with(
                graph,
                self.threads,
                match self.scheduler {
                    // Triangle counting defaults to dynamic for hub balance.
                    Scheduler::Static => Scheduler::Dynamic { grain: 64 },
                    dynamic => dynamic,
                },
            )),
            Workload::Community => KernelOutput::Labels(community::community(
                graph,
                self.community_iterations,
                self.threads,
            )),
            Workload::ConnComp => {
                KernelOutput::Labels(conncomp::conncomp_with(graph, self.threads, self.scheduler))
            }
            Workload::Spmv => KernelOutput::Distances(spmv::spmv_with(
                graph,
                &spmv_input(graph.vertex_count()),
                self.threads,
                self.scheduler,
            )),
            Workload::KCore => {
                KernelOutput::Labels(kcore::kcore_with(graph, self.threads, self.scheduler))
            }
            Workload::LabelProp => KernelOutput::Labels(labelprop::labelprop(
                graph,
                self.community_iterations,
                self.threads,
            )),
            // `Workload` is non_exhaustive; future variants fail loudly.
            #[allow(unreachable_patterns)]
            other => unimplemented!("no kernel for {other}"),
        }
    }
}

/// Static workload name used as the span name and parallel-region label
/// (the observability layer stores `&'static str` only).
fn workload_name(workload: Workload) -> &'static str {
    match workload {
        Workload::Bfs => "bfs",
        Workload::Dfs => "dfs",
        Workload::SsspBf => "sssp_bf",
        Workload::SsspDelta => "sssp_delta",
        Workload::PageRank => "pagerank",
        Workload::PageRankDp => "pagerank_dp",
        Workload::TriangleCount => "triangle_count",
        Workload::Community => "community",
        Workload::ConnComp => "conncomp",
        Workload::Spmv => "spmv",
        Workload::KCore => "kcore",
        Workload::LabelProp => "labelprop",
        #[allow(unreachable_patterns)]
        _ => "kernel",
    }
}

/// The runner's fixed SpMV input vector: a deterministic, non-constant
/// pattern so checksums are sensitive to row permutations.
fn spmv_input(n: usize) -> Vec<f32> {
    (0..n).map(|i| 1.0 + (i % 7) as f32 * 0.25).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteromap_graph::gen::{GraphGenerator, UniformRandom};

    #[test]
    fn runs_all_nine_workloads() {
        let g = UniformRandom::new(200, 1_200).generate(1);
        let runner = KernelRunner::new(4);
        for w in Workload::all() {
            let run = runner.run(w, &g);
            assert!(run.output.checksum().is_finite(), "{w}");
        }
    }

    #[test]
    fn runs_the_extended_workload_set() {
        let g = UniformRandom::new(200, 1_200).generate(1);
        let runner = KernelRunner::new(4);
        for w in Workload::extended() {
            let run = runner.run(w, &g);
            assert!(run.output.checksum().is_finite(), "{w}");
        }
        // The GARDENIA kernels are deterministic across thread counts, so
        // their checksums must agree bit-for-bit between runners.
        for w in [Workload::Spmv, Workload::KCore, Workload::LabelProp] {
            let one = KernelRunner::new(1).run(w, &g).output;
            assert_eq!(KernelRunner::new(8).run(w, &g).output, one, "{w}");
        }
    }

    #[test]
    fn full_tracing_records_kernel_spans_and_worker_regions() {
        let g = UniformRandom::new(200, 1_200).generate(3);
        let runner = KernelRunner::new(4);
        heteromap_obs::set_level(heteromap_obs::TraceLevel::Full);
        let run = runner.run(Workload::Bfs, &g);
        heteromap_obs::set_level(heteromap_obs::TraceLevel::Off);
        assert!(run.output.checksum().is_finite());

        // The runner names a span per kernel invocation...
        assert!(!heteromap_obs::spans_named("bfs").is_empty());
        // ...and labels the pool's per-region worker timings with it, so
        // the utilization report can attribute busy time to kernels.
        let regions: Vec<_> = heteromap_obs::util::snapshot_regions()
            .0
            .into_iter()
            .filter(|r| r.label == "bfs")
            .collect();
        assert!(!regions.is_empty(), "pooled BFS must record regions");
        for region in &regions {
            assert!(!region.busy_ns.is_empty());
            let clamped: u64 = region.busy_ns.iter().map(|&b| b.min(region.wall_ns)).sum();
            assert!(clamped <= region.wall_ns * region.busy_ns.len() as u64);
        }
    }

    #[test]
    fn checksum_is_reproducible_for_deterministic_kernels() {
        let g = UniformRandom::new(150, 900).generate(2);
        let runner = KernelRunner::new(3);
        for w in [Workload::Bfs, Workload::PageRank, Workload::TriangleCount] {
            let a = runner.run(w, &g).output.checksum();
            let b = runner.run(w, &g).output.checksum();
            assert_eq!(a, b, "{w}");
        }
    }

    #[test]
    fn from_mconfig_deploys_threads_and_schedule() {
        let limits = DeployLimits {
            max_cores: 61,
            max_threads_per_core: 4,
            max_simd_width: 16,
            max_global_threads: 10_240,
            max_local_threads: 256,
            max_blocktime_ms: 1000,
        };
        let mut cfg = MConfig::multicore_default();
        cfg.cores = 1.0;
        cfg.threads_per_core = 1.0;
        cfg.schedule = OmpSchedule::Dynamic;
        cfg.chunk_size = 0.25;
        let r = KernelRunner::from_mconfig(&cfg, &limits, 8);
        // Full multicore deployment maps to the full host budget, capped by
        // what the host actually has.
        let ap = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(usize::MAX);
        assert_eq!(r.threads(), 8.min(ap));
        assert_eq!(r.scheduler, Scheduler::Dynamic { grain: 64 });
        // A one-core configuration scales down to a single host thread.
        cfg.cores = 0.0;
        cfg.threads_per_core = 0.0;
        let r = KernelRunner::from_mconfig(&cfg, &limits, 8);
        assert_eq!(r.threads(), 1);
    }

    #[test]
    fn from_mconfig_never_oversubscribes_the_host() {
        let limits = DeployLimits {
            max_cores: 61,
            max_threads_per_core: 4,
            max_simd_width: 16,
            max_global_threads: 10_240,
            max_local_threads: 256,
            max_blocktime_ms: 1000,
        };
        let cfg = MConfig::multicore_default();
        // An absurd host budget must still clamp to real parallelism.
        let r = KernelRunner::from_mconfig(&cfg, &limits, 1 << 20);
        let ap = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(usize::MAX);
        assert!(r.threads() <= ap, "{} > {}", r.threads(), ap);
        assert!(r.threads() >= 1);
    }

    #[test]
    fn scheduler_choice_preserves_results() {
        let g = UniformRandom::new(250, 1_500).generate(5);
        let stat = KernelRunner::new(4);
        let dyn_ = KernelRunner::new(4).with_scheduler(Scheduler::Dynamic { grain: 16 });
        for w in [Workload::Bfs, Workload::SsspBf, Workload::ConnComp] {
            assert_eq!(
                stat.run(w, &g).output.checksum(),
                dyn_.run(w, &g).output.checksum(),
                "{w}"
            );
        }
    }

    #[test]
    fn builder_setters_apply() {
        let r = KernelRunner::new(0)
            .with_source(5)
            .with_pagerank_iterations(3)
            .with_delta(2.0);
        assert_eq!(r.threads(), 1); // clamped up
        assert_eq!(r.source, 5);
        assert_eq!(r.pagerank_iterations, 3);
        assert_eq!(r.delta, 2.0);
        assert_eq!(r.engine(), ExecEngine::Pooled);
    }

    #[test]
    fn engines_agree_on_every_workload() {
        let g = UniformRandom::new(220, 1_400).generate(8);
        let pooled = KernelRunner::new(4).with_pagerank_iterations(6);
        let spawned = pooled.with_engine(ExecEngine::SpawnPerCall);
        assert_eq!(spawned.engine(), ExecEngine::SpawnPerCall);
        for w in Workload::all() {
            let a = pooled.run(w, &g).output.checksum();
            let b = spawned.run(w, &g).output.checksum();
            if matches!(w, Workload::Dfs) {
                // DFS trees are scheduling-dependent; both engines must
                // still reach the same vertex set.
                continue;
            }
            // 1e-4: PageRank-DP's atomic f32 adds reorder across runs.
            assert!((a - b).abs() < 1e-4, "{w}: pooled {a} vs spawn {b}");
        }
    }
}
