//! k-core decomposition — synchronous peeling waves (B4 push-pop
//! frontier + B5 degree reduction over B10 read-write shared counters),
//! the second GARDENIA widening of the benchmark space.
//!
//! Peels vertices level by level: at level `k`, every remaining vertex
//! whose remaining out-degree is `<= k` is removed in a wave (its core
//! number is `k`), decrementing the remaining degree of its in-neighbors;
//! waves repeat at the same level until a fixpoint, then `k` advances.
//! The level-`k` fixpoint is unique (peeling is confluent), so the core
//! numbers are bit-identical for every thread count, scheduler, and wave
//! interleaving — only *when* a vertex is removed within a level can
//! race, never *at which level*.

use crate::par::Scheduler;
use heteromap_graph::{CsrGraph, VertexId};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};

/// Core number of every vertex with [`Scheduler::Static`].
pub fn kcore(graph: &CsrGraph, threads: usize) -> Vec<u32> {
    kcore_with(graph, threads, Scheduler::Static)
}

/// [`kcore`] with an explicit work-distribution policy.
pub fn kcore_with(graph: &CsrGraph, threads: usize, scheduler: Scheduler) -> Vec<u32> {
    let n = graph.vertex_count();
    if n == 0 {
        return Vec::new();
    }
    let transpose = graph.transpose_cached();
    let deg: Vec<AtomicU32> = (0..n)
        .map(|v| AtomicU32::new(graph.out_degree(v as VertexId) as u32))
        .collect();
    let alive: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(true)).collect();
    let core: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let mut remaining = n;
    let mut k = 0u32;
    while remaining > 0 {
        // Waves at level k until the fixpoint: removing a vertex can drag
        // an in-neighbor's remaining degree down to k as well.
        loop {
            let removed = AtomicUsize::new(0);
            scheduler.for_each(n, threads, |range| {
                let mut local = 0usize;
                for v in range {
                    if alive[v].load(Ordering::Acquire) && deg[v].load(Ordering::Acquire) <= k {
                        alive[v].store(false, Ordering::Release);
                        core[v].store(k, Ordering::Relaxed);
                        local += 1;
                        for &u in transpose.neighbors(v as VertexId) {
                            // Saturating: a same-wave-removed neighbor's
                            // counter is dead and must not underflow.
                            let _ = deg[u as usize].fetch_update(
                                Ordering::AcqRel,
                                Ordering::Acquire,
                                |d| Some(d.saturating_sub(1)),
                            );
                        }
                    }
                }
                if local > 0 {
                    removed.fetch_add(local, Ordering::Relaxed);
                }
            });
            let wave = removed.load(Ordering::Relaxed);
            if wave == 0 {
                break;
            }
            remaining -= wave;
        }
        k += 1;
    }
    core.into_iter().map(AtomicU32::into_inner).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::kcore_seq;
    use heteromap_graph::gen::{GraphGenerator, PowerLaw, UniformRandom};
    use heteromap_graph::EdgeList;

    #[test]
    fn star_is_a_one_core() {
        let mut el = EdgeList::new(6);
        for i in 1..6 {
            el.push_undirected(0, i, 1.0);
        }
        let g = el.into_csr().unwrap();
        assert_eq!(kcore(&g, 4), vec![1; 6]);
    }

    #[test]
    fn clique_core_is_degree() {
        // K4 (undirected): every vertex sits in the 3-core.
        let mut el = EdgeList::new(4);
        for a in 0..4u32 {
            for b in (a + 1)..4u32 {
                el.push_undirected(a, b, 1.0);
            }
        }
        let g = el.into_csr().unwrap();
        assert_eq!(kcore(&g, 2), vec![3; 4]);
    }

    #[test]
    fn isolated_vertices_are_zero_core() {
        let g = EdgeList::new(3).into_csr().unwrap();
        assert_eq!(kcore(&g, 2), vec![0; 3]);
    }

    #[test]
    fn matches_sequential_reference_bit_for_bit() {
        for seed in 0..3 {
            let g = UniformRandom::new(250, 1_800).generate(seed);
            let reference = kcore_seq(&g);
            for threads in [1, 4, 16] {
                assert_eq!(kcore(&g, threads), reference, "threads={threads}");
            }
        }
    }

    #[test]
    fn scheduler_invariant_on_skewed_graphs() {
        let g = PowerLaw::new(350, 4).generate(1);
        let reference = kcore_seq(&g);
        assert_eq!(
            kcore_with(&g, 8, Scheduler::Dynamic { grain: 16 }),
            reference
        );
    }
}
