//! Label propagation — push-direction weighted majority vote (B1 + B6 FP
//! scoring over B10 read-write shared labels), the third GARDENIA
//! widening of the benchmark space.
//!
//! Complements [`community`](crate::community): where community detection
//! votes over a vertex's *out*-edges, label propagation here gathers the
//! labels *pushed at* a vertex along its in-edges (via the cached
//! transpose), the GARDENIA formulation. Each vertex's vote accumulates
//! serially in in-edge order and the argmax tie-breaks toward the smaller
//! label, so rounds are synchronous (double-buffered) and the result is
//! bit-identical for every thread count.

use crate::par::par_chunks_mut;
use heteromap_graph::{CsrGraph, VertexId};
use std::collections::HashMap;

/// Runs `iterations` synchronous rounds of push-direction weighted label
/// propagation and returns the final label of each vertex.
pub fn labelprop(graph: &CsrGraph, iterations: u32, threads: usize) -> Vec<u32> {
    let n = graph.vertex_count();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    if n == 0 {
        return labels;
    }
    let transpose = graph.transpose_cached();
    let mut next = labels.clone();
    for _ in 0..iterations {
        {
            let labels_ref = &labels;
            let transpose_ref = &*transpose;
            par_chunks_mut(&mut next, threads, |offset, next_chunk| {
                let mut votes: HashMap<u32, f32> = HashMap::new();
                for (off, nx) in next_chunk.iter_mut().enumerate() {
                    let v = (offset + off) as VertexId;
                    votes.clear();
                    // In-neighbors of v with the pushing edge's weight.
                    for (u, w) in transpose_ref.edges(v) {
                        *votes.entry(labels_ref[u as usize]).or_insert(0.0) += w;
                    }
                    let current = labels_ref[v as usize];
                    let mut best = (current, f32::NEG_INFINITY);
                    for (&label, &weight) in &votes {
                        if weight > best.1 || (weight == best.1 && label < best.0) {
                            best = (label, weight);
                        }
                    }
                    *nx = if votes.is_empty() { current } else { best.0 };
                }
            });
        }
        std::mem::swap(&mut labels, &mut next);
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::labelprop_seq;
    use heteromap_graph::gen::{Densifying, GraphGenerator, PowerLaw, UniformRandom};
    use heteromap_graph::EdgeList;

    #[test]
    fn strongly_weighted_source_dominates() {
        // 0 pushes hard at 1 and 2; they adopt 0's label.
        let mut el = EdgeList::new(3);
        el.push(0, 1, 10.0);
        el.push(0, 2, 10.0);
        el.push(1, 2, 0.1);
        let g = el.into_csr().unwrap();
        let labels = labelprop(&g, 3, 2);
        assert_eq!(labels, vec![0, 0, 0]);
    }

    #[test]
    fn vertices_without_in_edges_keep_their_labels() {
        let mut el = EdgeList::new(3);
        el.push(0, 1, 1.0);
        let g = el.into_csr().unwrap();
        let labels = labelprop(&g, 5, 1);
        assert_eq!(labels[0], 0, "no in-edges: label survives");
        assert_eq!(labels[2], 2);
    }

    #[test]
    fn matches_sequential_reference_bit_for_bit() {
        for seed in 0..3 {
            let g = UniformRandom::new(280, 2_000).generate(seed);
            let reference = labelprop_seq(&g, 8);
            for threads in [1, 4, 16] {
                assert_eq!(labelprop(&g, 8, threads), reference, "threads={threads}");
            }
        }
    }

    #[test]
    fn thread_count_invariant_on_skewed_and_densifying_graphs() {
        for g in [
            PowerLaw::new(300, 3).generate(4),
            Densifying::new(300, 6, 200).generate(4),
        ] {
            let one = labelprop(&g, 6, 1);
            for t in [4, 16] {
                assert_eq!(labelprop(&g, 6, t), one);
            }
        }
    }

    #[test]
    fn zero_iterations_is_identity() {
        let g = UniformRandom::new(50, 200).generate(0);
        assert_eq!(labelprop(&g, 0, 4), (0..50).collect::<Vec<u32>>());
    }
}
