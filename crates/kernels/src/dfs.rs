//! Parallel depth-first reachability with per-thread work stacks — the
//! push-pop (B4) workload of Fig. 5.
//!
//! True DFS ordering is inherently sequential; like CRONO's parallel DFS,
//! threads cooperate on a shared pool of stack segments: each thread pops
//! deep vertices from its own stack and donates its overflow to an idle
//! pool, producing a DFS-like (deep-first) spanning tree rather than the
//! unique recursive ordering. Tests verify the structural invariants every
//! such tree must satisfy.

use crate::UNREACHED;
use heteromap_graph::{CsrGraph, VertexId};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, Ordering};

/// Result of a parallel DFS traversal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfsResult {
    /// Parent of each vertex in the traversal tree (`UNREACHED` when not
    /// visited; the source is its own parent).
    pub parent: Vec<u32>,
    /// Number of vertices reached.
    pub visited: usize,
}

/// Runs parallel depth-first reachability from `source`.
///
/// # Panics
///
/// Panics if `source` is out of bounds.
pub fn dfs(graph: &CsrGraph, source: VertexId, threads: usize) -> DfsResult {
    let n = graph.vertex_count();
    assert!((source as usize) < n, "source out of bounds");
    let parent: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNREACHED)).collect();
    parent[source as usize].store(source, Ordering::Relaxed);
    let pool: Mutex<Vec<Vec<VertexId>>> = Mutex::new(vec![vec![source]]);
    let active = AtomicU32::new(0);

    crate::par::run_threads(threads.max(1), |_| {
        let mut stack: Vec<VertexId> = Vec::new();
        loop {
            if stack.is_empty() {
                let mut pool_guard = pool.lock();
                if let Some(seg) = pool_guard.pop() {
                    active.fetch_add(1, Ordering::SeqCst);
                    stack = seg;
                } else if active.load(Ordering::SeqCst) == 0 {
                    return; // no work anywhere and nobody producing
                } else {
                    drop(pool_guard);
                    std::thread::yield_now();
                    continue;
                }
            }
            while let Some(v) = stack.pop() {
                for &t in graph.neighbors(v) {
                    if parent[t as usize]
                        .compare_exchange(UNREACHED, v, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                    {
                        stack.push(t);
                    }
                }
                // Donate the shallow half of an oversized stack (push-pop
                // load balancing).
                if stack.len() > 64 {
                    let donated: Vec<VertexId> = stack.drain(..stack.len() / 2).collect();
                    pool.lock().push(donated);
                }
            }
            active.fetch_sub(1, Ordering::SeqCst);
        }
    });

    let parent: Vec<u32> = parent.into_iter().map(AtomicU32::into_inner).collect();
    let visited = parent.iter().filter(|&&p| p != UNREACHED).count();
    DfsResult { parent, visited }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::bfs_seq;
    use heteromap_graph::gen::{GraphGenerator, Grid, PowerLaw, UniformRandom};
    use heteromap_graph::EdgeList;

    fn check_tree(graph: &CsrGraph, source: VertexId, result: &DfsResult) {
        // Every visited vertex (except the source) has a parent that is
        // visited and actually adjacent (parent -> child edge exists).
        for (v, &p) in result.parent.iter().enumerate() {
            if p == UNREACHED || v as u32 == source {
                continue;
            }
            assert_ne!(result.parent[p as usize], UNREACHED, "orphan parent");
            assert!(
                graph.neighbors(p).contains(&(v as u32)),
                "parent {p} not adjacent to {v}"
            );
        }
        // The visited set equals BFS reachability.
        let reach = bfs_seq(graph, source);
        for (v, (&r, &p)) in reach.iter().zip(&result.parent).enumerate() {
            assert_eq!(
                r != UNREACHED,
                p != UNREACHED,
                "vertex {v} reachability mismatch"
            );
        }
    }

    #[test]
    fn covers_reachable_set_on_random_graph() {
        let g = UniformRandom::new(400, 2_400).generate(1);
        let r = dfs(&g, 0, 4);
        check_tree(&g, 0, &r);
    }

    #[test]
    fn covers_reachable_set_on_grid() {
        let g = Grid::new(20, 20).generate(0);
        let r = dfs(&g, 0, 8);
        assert_eq!(r.visited, 400);
        check_tree(&g, 0, &r);
    }

    #[test]
    fn covers_reachable_set_on_power_law() {
        let g = PowerLaw::new(700, 3).generate(3);
        let r = dfs(&g, 5, 6);
        check_tree(&g, 5, &r);
    }

    #[test]
    fn isolated_source_visits_only_itself() {
        let g = EdgeList::new(3).into_csr().unwrap();
        let r = dfs(&g, 1, 4);
        assert_eq!(r.visited, 1);
        assert_eq!(r.parent[1], 1);
    }

    #[test]
    fn single_thread_matches_reachability() {
        let g = UniformRandom::new(200, 900).generate(7);
        let r = dfs(&g, 0, 1);
        check_tree(&g, 0, &r);
    }
}
