//! Data-parallel Bellman-Ford SSSP — the paper's worked example (Fig. 6):
//! pure vertex division (B1 = 1) with atomic relaxations on the shared
//! distance array (B12) and a barrier per round (B13).

use crate::par::{atomic_min_f32, Scheduler};
use crate::Distance;
use heteromap_graph::{CsrGraph, VertexId};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Runs parallel Bellman-Ford from `source`, returning the shortest
/// distances (`f32::INFINITY` for unreachable vertices).
///
/// Each round relaxes all out-edges of all vertices in parallel (vertex
/// division); the algorithm converges in at most `diameter` rounds and stops
/// as soon as a round makes no improvement.
///
/// # Panics
///
/// Panics if `source` is out of bounds or any edge weight is negative.
pub fn sssp_bf(graph: &CsrGraph, source: VertexId, threads: usize) -> Vec<Distance> {
    sssp_bf_with(graph, source, threads, Scheduler::Static)
}

/// [`sssp_bf`] with an explicit work-distribution policy (the deployed
/// `M11`/`M12` choices).
pub fn sssp_bf_with(
    graph: &CsrGraph,
    source: VertexId,
    threads: usize,
    scheduler: Scheduler,
) -> Vec<Distance> {
    let n = graph.vertex_count();
    assert!((source as usize) < n, "source out of bounds");
    let dist: Vec<AtomicU32> = (0..n)
        .map(|_| AtomicU32::new(f32::INFINITY.to_bits()))
        .collect();
    dist[source as usize].store(0.0f32.to_bits(), Ordering::Relaxed);
    // n rounds upper-bounds convergence for non-negative weights.
    for _ in 0..n {
        let changed = AtomicBool::new(false);
        scheduler.for_each(n, threads, |range| {
            let mut local_changed = false;
            for v in range {
                let dv = f32::from_bits(dist[v].load(Ordering::Relaxed));
                if dv.is_infinite() {
                    continue;
                }
                for (t, w) in graph.edges(v as VertexId) {
                    assert!(w >= 0.0, "negative edge weight");
                    if atomic_min_f32(&dist[t as usize], dv + w) {
                        local_changed = true;
                    }
                }
            }
            if local_changed {
                changed.store(true, Ordering::Relaxed);
            }
        });
        if !changed.load(Ordering::Relaxed) {
            break;
        }
    }
    dist.into_iter()
        .map(|d| f32::from_bits(d.into_inner()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::dijkstra;
    use heteromap_graph::gen::{GraphGenerator, Grid, PowerLaw, UniformRandom};
    use heteromap_graph::EdgeList;

    fn assert_close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
            if x.is_infinite() || y.is_infinite() {
                assert_eq!(x.is_infinite(), y.is_infinite(), "vertex {i}: {x} vs {y}");
            } else {
                assert!((x - y).abs() < 1e-3, "vertex {i}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn matches_dijkstra_on_random_graphs() {
        for seed in 0..4 {
            let g = UniformRandom::new(200, 1_200).generate(seed);
            assert_close(&sssp_bf(&g, 0, 4), &dijkstra(&g, 0));
        }
    }

    #[test]
    fn matches_dijkstra_on_weighted_grid() {
        let g = Grid::new(15, 15).generate(3);
        assert_close(&sssp_bf(&g, 7, 8), &dijkstra(&g, 7));
    }

    #[test]
    fn matches_dijkstra_on_power_law() {
        let g = PowerLaw::new(600, 3).generate(5);
        assert_close(&sssp_bf(&g, 0, 6), &dijkstra(&g, 0));
    }

    #[test]
    fn source_distance_is_zero() {
        let g = UniformRandom::new(50, 200).generate(0);
        assert_eq!(sssp_bf(&g, 17, 2)[17], 0.0);
    }

    #[test]
    fn unreachable_is_infinite() {
        let mut el = EdgeList::new(3);
        el.push(0, 1, 2.0);
        let g = el.into_csr().unwrap();
        let d = sssp_bf(&g, 0, 2);
        assert!(d[2].is_infinite());
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let g = UniformRandom::new(300, 2_000).generate(9);
        let one = sssp_bf(&g, 0, 1);
        for t in [2, 8] {
            assert_close(&sssp_bf(&g, 0, t), &one);
        }
    }
}
