//! Minimal data-parallel helpers, pool-backed by default.
//!
//! Every helper funnels through [`run_threads`], which executes parallel
//! regions on the persistent [`crate::pool::ThreadPool`] unless the caller
//! scopes in [`ExecEngine::SpawnPerCall`] (the seed's spawn-and-join
//! behaviour, kept for baseline measurement and A/B testing).

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// Work-distribution policy for a parallel loop — the host realization of
/// the paper's `OMP for schedule` machine choice (`M11`) and chunk size
/// (`M12`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Contiguous static ranges, one per thread (`schedule(static)`).
    #[default]
    Static,
    /// Threads grab `grain`-sized chunks from a shared cursor
    /// (`schedule(dynamic, grain)`).
    Dynamic {
        /// Chunk size each thread claims at a time.
        grain: usize,
    },
}

impl Scheduler {
    /// Runs `work` over `0..n` on `threads` threads under this policy.
    pub fn for_each<F>(&self, n: usize, threads: usize, work: F)
    where
        F: Fn(std::ops::Range<usize>) + Sync,
    {
        self.for_each_worker(n, threads, |_, range| work(range));
    }

    /// Like [`Scheduler::for_each`] but also hands `work` the index of the
    /// worker executing the chunk (`0..threads`), so callers can keep
    /// per-worker state — local frontier buffers, scratch arrays — without
    /// locks. A worker may receive many chunks under dynamic scheduling.
    pub fn for_each_worker<F>(&self, n: usize, threads: usize, work: F)
    where
        F: Fn(usize, std::ops::Range<usize>) + Sync,
    {
        match *self {
            Scheduler::Static => {
                let threads = threads.max(1).min(n.max(1));
                let chunk = n.div_ceil(threads);
                run_threads(threads, |t| {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(n);
                    if lo < hi {
                        work(t, lo..hi);
                    }
                });
            }
            Scheduler::Dynamic { grain } => {
                let cursor = AtomicUsize::new(0);
                let grain = grain.max(1);
                run_threads(threads, |t| loop {
                    let start = cursor.fetch_add(grain, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = start.saturating_add(grain).min(n);
                    work(t, start..end);
                });
            }
        }
    }
}

/// Which execution engine parallel regions run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecEngine {
    /// The persistent [`crate::pool::ThreadPool`]: workers are spawned once
    /// and parked between regions (the default).
    #[default]
    Pooled,
    /// Fresh OS threads per region via scoped spawn — the seed behaviour,
    /// kept as the baseline for `exp_engine_speedup`.
    SpawnPerCall,
}

thread_local! {
    static ENGINE: Cell<ExecEngine> = const { Cell::new(ExecEngine::Pooled) };
}

/// The engine parallel regions entered from this thread currently use.
pub fn current_engine() -> ExecEngine {
    ENGINE.with(Cell::get)
}

/// Runs `f` with all parallel regions entered from this thread executing on
/// `engine`, restoring the previous engine afterwards (also on panic).
pub fn with_engine<R>(engine: ExecEngine, f: impl FnOnce() -> R) -> R {
    struct Restore(ExecEngine);
    impl Drop for Restore {
        fn drop(&mut self) {
            ENGINE.with(|e| e.set(self.0));
        }
    }
    let _restore = Restore(ENGINE.with(|e| e.replace(engine)));
    f()
}

/// Runs `work` on `threads` workers, each receiving its worker index.
/// Dispatches to the persistent pool or to spawn-per-call scoped threads
/// according to [`current_engine`]; either way this is a full barrier.
///
/// # Panics
///
/// Propagates panics from worker threads.
pub fn run_threads<F>(threads: usize, work: F)
where
    F: Fn(usize) + Sync,
{
    let threads = threads.max(1);
    if threads == 1 {
        work(0);
        return;
    }
    match current_engine() {
        ExecEngine::Pooled => crate::pool::ThreadPool::global().run(threads, work),
        ExecEngine::SpawnPerCall => run_threads_spawn(threads, work),
    }
}

/// The seed's spawn-and-join realization of a parallel region: `threads`
/// fresh scoped OS threads, created and joined inside the call.
pub fn run_threads_spawn<F>(threads: usize, work: F)
where
    F: Fn(usize) + Sync,
{
    let threads = threads.max(1);
    if threads == 1 {
        work(0);
        return;
    }
    crossbeam::thread::scope(|s| {
        for t in 0..threads {
            let work = &work;
            s.spawn(move |_| work(t));
        }
    })
    .expect("kernel worker thread panicked");
}

/// Splits `0..n` into `threads` contiguous ranges and runs `work(range)` in
/// parallel. Ranges are balanced to within one element.
pub fn par_ranges<F>(n: usize, threads: usize, work: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    Scheduler::Static.for_each(n, threads, work);
}

/// Dynamic work distribution: threads grab `grain`-sized chunks of `0..n`
/// from a shared cursor (the "OMP dynamic schedule" of the paper's M11).
/// The cursor is an `AtomicUsize`, so `n` near `u32::MAX` and grains larger
/// than `u32::MAX` are handled without wrapping or truncation.
pub fn par_dynamic<F>(n: usize, threads: usize, grain: usize, work: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    Scheduler::Dynamic { grain }.for_each(n, threads, work);
}

/// Splits `data` into `threads` contiguous chunks and runs
/// `work(offset, chunk)` in parallel, where `offset` is the chunk's start
/// index in `data`. Each chunk is an exclusive `&mut` — the pool-friendly
/// replacement for spawning scoped threads over `chunks_mut`.
pub fn par_chunks_mut<T, F>(data: &mut [T], threads: usize, work: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    if n == 0 {
        return;
    }
    let threads = threads.max(1).min(n);
    let chunk = n.div_ceil(threads);
    struct Base<T>(*mut T);
    // SAFETY: workers only dereference disjoint ranges of the allocation.
    unsafe impl<T: Send> Sync for Base<T> {}
    impl<T> Base<T> {
        // Accessor so closures capture the whole (Sync) wrapper rather
        // than the raw-pointer field (2021 disjoint capture).
        fn get(&self) -> *mut T {
            self.0
        }
    }
    let base = Base(data.as_mut_ptr());
    run_threads(threads, |t| {
        let lo = t * chunk;
        let hi = ((t + 1) * chunk).min(n);
        if lo < hi {
            // SAFETY: each worker index runs exactly once, so the
            // `lo..hi` ranges partition `data` into non-overlapping
            // slices; the barrier in `run_threads` keeps `data` borrowed
            // for the whole region.
            let slice = unsafe { std::slice::from_raw_parts_mut(base.get().add(lo), hi - lo) };
            work(lo, slice);
        }
    });
}

/// Atomically lowers `slot` to `min(slot, value)` for f32 bit-packed in
/// `AtomicU32`. Returns `true` if the value was lowered.
///
/// Relies on the fact that for non-negative finite f32 values the bit pattern
/// ordering matches numeric ordering.
pub fn atomic_min_f32(slot: &AtomicU32, value: f32) -> bool {
    debug_assert!(value >= 0.0, "atomic_min_f32 requires non-negative values");
    let new_bits = value.to_bits();
    let mut cur = slot.load(Ordering::Relaxed);
    loop {
        if f32::from_bits(cur) <= value {
            return false;
        }
        match slot.compare_exchange_weak(cur, new_bits, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(actual) => cur = actual,
        }
    }
}

/// Atomically adds `value` to an f32 bit-packed in `AtomicU32`.
pub fn atomic_add_f32(slot: &AtomicU32, value: f32) {
    let mut cur = slot.load(Ordering::Relaxed);
    loop {
        let next = (f32::from_bits(cur) + value).to_bits();
        match slot.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// Atomically adds `value` to an f64 bit-packed in `AtomicU64` — the
/// double-precision reduction primitive PageRank's dangling-mass phase uses
/// instead of a hand-rolled CAS loop at every call site.
pub fn atomic_add_f64(slot: &AtomicU64, value: f64) {
    let mut cur = slot.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + value).to_bits();
        match slot.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn par_ranges_covers_everything_once() {
        let n = 1003;
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        par_ranges(n, 7, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_dynamic_covers_everything_once() {
        let n = 501;
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        par_dynamic(n, 5, 16, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_dynamic_survives_grain_beyond_u32() {
        // Regression: the seed's `AtomicU32` cursor truncated `grain as u32`
        // and wrapped for large `n`; a grain past `u32::MAX` must now cover
        // the range in one claim instead of re-running chunks forever.
        let n = 257;
        let grain = u32::MAX as usize + 10;
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        par_dynamic(n, 4, grain, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_dynamic_cursor_does_not_overflow_on_huge_grains() {
        // `start + grain` saturates instead of overflowing `usize`.
        let n = 12;
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        par_dynamic(n, 3, usize::MAX, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn single_thread_runs_inline() {
        let count = AtomicUsize::new(0);
        run_threads(1, |t| {
            assert_eq!(t, 0);
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn atomic_min_lowers_concurrently() {
        let slot = AtomicU32::new(f32::INFINITY.to_bits());
        run_threads(8, |t| {
            atomic_min_f32(&slot, 100.0 - t as f32);
        });
        assert_eq!(f32::from_bits(slot.load(Ordering::Relaxed)), 93.0);
    }

    #[test]
    fn atomic_min_refuses_higher_values() {
        let slot = AtomicU32::new(1.0f32.to_bits());
        assert!(!atomic_min_f32(&slot, 2.0));
        assert_eq!(f32::from_bits(slot.load(Ordering::Relaxed)), 1.0);
    }

    #[test]
    fn atomic_add_sums_concurrently() {
        let slot = AtomicU32::new(0.0f32.to_bits());
        run_threads(4, |_| {
            for _ in 0..100 {
                atomic_add_f32(&slot, 1.0);
            }
        });
        assert_eq!(f32::from_bits(slot.load(Ordering::Relaxed)), 400.0);
    }

    #[test]
    fn atomic_add_f64_sums_concurrently() {
        let slot = AtomicU64::new(0.0f64.to_bits());
        run_threads(4, |_| {
            for _ in 0..250 {
                atomic_add_f64(&slot, 0.5);
            }
        });
        assert_eq!(f64::from_bits(slot.load(Ordering::Relaxed)), 500.0);
    }

    #[test]
    fn par_ranges_with_zero_items_is_noop() {
        par_ranges(0, 4, |_| panic!("no work expected"));
    }

    #[test]
    fn par_chunks_mut_partitions_exactly() {
        let mut data = vec![0usize; 1003];
        par_chunks_mut(&mut data, 7, |offset, chunk| {
            for (i, slot) in chunk.iter_mut().enumerate() {
                *slot = offset + i + 1;
            }
        });
        // Every element written exactly once with its own index.
        assert!(data.iter().enumerate().all(|(i, &v)| v == i + 1));
    }

    #[test]
    fn par_chunks_mut_handles_empty_and_tiny() {
        let mut empty: Vec<u32> = Vec::new();
        par_chunks_mut(&mut empty, 4, |_, _| panic!("no work expected"));
        let mut tiny = vec![0u32; 2];
        par_chunks_mut(&mut tiny, 8, |offset, chunk| {
            for slot in chunk.iter_mut() {
                *slot = offset as u32 + 10;
            }
        });
        assert_eq!(tiny, vec![10, 11]);
    }

    #[test]
    fn schedulers_cover_everything_once() {
        for sched in [Scheduler::Static, Scheduler::Dynamic { grain: 7 }] {
            let n = 333;
            let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
            sched.for_each(n, 5, |r| {
                for i in r {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "{sched:?}"
            );
        }
    }

    #[test]
    fn for_each_worker_reports_valid_indices() {
        for sched in [Scheduler::Static, Scheduler::Dynamic { grain: 16 }] {
            let threads = 5;
            let n = 400;
            let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
            sched.for_each_worker(n, threads, |worker, r| {
                assert!(worker < threads, "{sched:?}: worker {worker}");
                for i in r {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "{sched:?}"
            );
        }
    }

    #[test]
    fn engines_produce_identical_coverage() {
        for engine in [ExecEngine::Pooled, ExecEngine::SpawnPerCall] {
            with_engine(engine, || {
                assert_eq!(current_engine(), engine);
                let n = 512;
                let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
                par_ranges(n, 4, |r| {
                    for i in r {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "{engine:?}"
                );
            });
        }
        assert_eq!(current_engine(), ExecEngine::Pooled);
    }

    #[test]
    fn with_engine_restores_on_unwind() {
        let result = std::panic::catch_unwind(|| {
            with_engine(ExecEngine::SpawnPerCall, || panic!("scoped"));
        });
        assert!(result.is_err());
        assert_eq!(current_engine(), ExecEngine::Pooled);
    }

    #[test]
    fn default_scheduler_is_static() {
        assert_eq!(Scheduler::default(), Scheduler::Static);
    }

    #[test]
    fn default_engine_is_pooled() {
        assert_eq!(ExecEngine::default(), ExecEngine::Pooled);
    }
}
