//! Minimal data-parallel helpers built on `crossbeam` scoped threads.

use crossbeam::thread;
use std::sync::atomic::{AtomicU32, Ordering};

/// Work-distribution policy for a parallel loop — the host realization of
/// the paper's `OMP for schedule` machine choice (`M11`) and chunk size
/// (`M12`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Contiguous static ranges, one per thread (`schedule(static)`).
    #[default]
    Static,
    /// Threads grab `grain`-sized chunks from a shared cursor
    /// (`schedule(dynamic, grain)`).
    Dynamic {
        /// Chunk size each thread claims at a time.
        grain: usize,
    },
}

impl Scheduler {
    /// Runs `work` over `0..n` on `threads` threads under this policy.
    pub fn for_each<F>(&self, n: usize, threads: usize, work: F)
    where
        F: Fn(std::ops::Range<usize>) + Sync,
    {
        match *self {
            Scheduler::Static => par_ranges(n, threads, work),
            Scheduler::Dynamic { grain } => par_dynamic(n, threads, grain, work),
        }
    }
}

/// Runs `work` on `threads` scoped threads, each receiving its thread index.
///
/// # Panics
///
/// Propagates panics from worker threads.
pub fn run_threads<F>(threads: usize, work: F)
where
    F: Fn(usize) + Sync,
{
    let threads = threads.max(1);
    if threads == 1 {
        work(0);
        return;
    }
    thread::scope(|s| {
        for t in 0..threads {
            let work = &work;
            s.spawn(move |_| work(t));
        }
    })
    .expect("kernel worker thread panicked");
}

/// Splits `0..n` into `threads` contiguous ranges and runs `work(range)` in
/// parallel. Ranges are balanced to within one element.
pub fn par_ranges<F>(n: usize, threads: usize, work: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    let chunk = n.div_ceil(threads);
    run_threads(threads, |t| {
        let lo = t * chunk;
        let hi = ((t + 1) * chunk).min(n);
        if lo < hi {
            work(lo..hi);
        }
    });
}

/// Dynamic work distribution: threads grab `grain`-sized chunks of `0..n`
/// from a shared cursor (the "OMP dynamic schedule" of the paper's M11).
pub fn par_dynamic<F>(n: usize, threads: usize, grain: usize, work: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    let cursor = AtomicU32::new(0);
    let grain = grain.max(1);
    run_threads(threads, |_| loop {
        let start = cursor.fetch_add(grain as u32, Ordering::Relaxed) as usize;
        if start >= n {
            break;
        }
        let end = (start + grain).min(n);
        work(start..end);
    });
}

/// Atomically lowers `slot` to `min(slot, value)` for f32 bit-packed in
/// `AtomicU32`. Returns `true` if the value was lowered.
///
/// Relies on the fact that for non-negative finite f32 values the bit pattern
/// ordering matches numeric ordering.
pub fn atomic_min_f32(slot: &AtomicU32, value: f32) -> bool {
    debug_assert!(value >= 0.0, "atomic_min_f32 requires non-negative values");
    let new_bits = value.to_bits();
    let mut cur = slot.load(Ordering::Relaxed);
    loop {
        if f32::from_bits(cur) <= value {
            return false;
        }
        match slot.compare_exchange_weak(cur, new_bits, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(actual) => cur = actual,
        }
    }
}

/// Atomically adds `value` to an f32 bit-packed in `AtomicU32`.
pub fn atomic_add_f32(slot: &AtomicU32, value: f32) {
    let mut cur = slot.load(Ordering::Relaxed);
    loop {
        let next = (f32::from_bits(cur) + value).to_bits();
        match slot.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn par_ranges_covers_everything_once() {
        let n = 1003;
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        par_ranges(n, 7, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_dynamic_covers_everything_once() {
        let n = 501;
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        par_dynamic(n, 5, 16, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn single_thread_runs_inline() {
        let count = AtomicUsize::new(0);
        run_threads(1, |t| {
            assert_eq!(t, 0);
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn atomic_min_lowers_concurrently() {
        let slot = AtomicU32::new(f32::INFINITY.to_bits());
        run_threads(8, |t| {
            atomic_min_f32(&slot, 100.0 - t as f32);
        });
        assert_eq!(f32::from_bits(slot.load(Ordering::Relaxed)), 93.0);
    }

    #[test]
    fn atomic_min_refuses_higher_values() {
        let slot = AtomicU32::new(1.0f32.to_bits());
        assert!(!atomic_min_f32(&slot, 2.0));
        assert_eq!(f32::from_bits(slot.load(Ordering::Relaxed)), 1.0);
    }

    #[test]
    fn atomic_add_sums_concurrently() {
        let slot = AtomicU32::new(0.0f32.to_bits());
        run_threads(4, |_| {
            for _ in 0..100 {
                atomic_add_f32(&slot, 1.0);
            }
        });
        assert_eq!(f32::from_bits(slot.load(Ordering::Relaxed)), 400.0);
    }

    #[test]
    fn par_ranges_with_zero_items_is_noop() {
        par_ranges(0, 4, |_| panic!("no work expected"));
    }

    #[test]
    fn schedulers_cover_everything_once() {
        for sched in [Scheduler::Static, Scheduler::Dynamic { grain: 7 }] {
            let n = 333;
            let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
            sched.for_each(n, 5, |r| {
                for i in r {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "{sched:?}"
            );
        }
    }

    #[test]
    fn default_scheduler_is_static() {
        assert_eq!(Scheduler::default(), Scheduler::Static);
    }
}
