//! Community detection by synchronous label propagation — FP scoring over
//! read-write shared labels (B5 + B6 + B10 in Fig. 5).

use crate::par::par_chunks_mut;
use heteromap_graph::{CsrGraph, VertexId};
use std::collections::HashMap;

/// Runs `iterations` rounds of weighted label propagation and returns the
/// community label of each vertex.
///
/// Each round, every vertex adopts the label with the largest total incident
/// edge weight among its neighbours (ties break toward the smaller label, so
/// the algorithm is deterministic and thread-count invariant). Labels update
/// synchronously (double-buffered), the phase/barrier structure the paper's
/// B13 counts.
pub fn community(graph: &CsrGraph, iterations: u32, threads: usize) -> Vec<u32> {
    let n = graph.vertex_count();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut next = labels.clone();
    for _ in 0..iterations {
        {
            let labels_ref = &labels;
            par_chunks_mut(&mut next, threads, |offset, next_chunk| {
                let mut weights: HashMap<u32, f32> = HashMap::new();
                for (off, nx) in next_chunk.iter_mut().enumerate() {
                    let v = (offset + off) as VertexId;
                    weights.clear();
                    for (u, w) in graph.edges(v) {
                        *weights.entry(labels_ref[u as usize]).or_insert(0.0) += w;
                    }
                    let current = labels_ref[v as usize];
                    let mut best = (current, f32::NEG_INFINITY);
                    for (&label, &weight) in &weights {
                        if weight > best.1 || (weight == best.1 && label < best.0) {
                            best = (label, weight);
                        }
                    }
                    *nx = if weights.is_empty() { current } else { best.0 };
                }
            });
        }
        std::mem::swap(&mut labels, &mut next);
    }
    labels
}

/// Number of distinct communities in a labelling.
pub fn community_count(labels: &[u32]) -> usize {
    let mut seen: Vec<u32> = labels.to_vec();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteromap_graph::gen::{GraphGenerator, UniformRandom};
    use heteromap_graph::EdgeList;

    /// Two dense cliques joined by one weak edge.
    fn two_cliques() -> CsrGraph {
        let mut el = EdgeList::new(8);
        for a in 0..4u32 {
            for b in (a + 1)..4u32 {
                el.push_undirected(a, b, 5.0);
            }
        }
        for a in 4..8u32 {
            for b in (a + 1)..8u32 {
                el.push_undirected(a, b, 5.0);
            }
        }
        el.push_undirected(3, 4, 0.1);
        el.into_csr().unwrap()
    }

    #[test]
    fn separates_two_cliques() {
        let g = two_cliques();
        let labels = community(&g, 10, 4);
        // Clique members agree internally and differ across the weak link.
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[4]);
        assert_eq!(community_count(&labels), 2);
    }

    #[test]
    fn isolated_vertices_keep_their_labels() {
        let g = EdgeList::new(3).into_csr().unwrap();
        assert_eq!(community(&g, 5, 2), vec![0, 1, 2]);
    }

    #[test]
    fn thread_count_invariant() {
        let g = UniformRandom::new(200, 1_200).generate(3);
        let one = community(&g, 8, 1);
        for t in [2, 8] {
            assert_eq!(community(&g, 8, t), one);
        }
    }

    #[test]
    fn zero_iterations_is_identity() {
        let g = two_cliques();
        assert_eq!(community(&g, 0, 4), (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn community_count_counts_distinct() {
        assert_eq!(community_count(&[3, 3, 1, 1, 7]), 3);
        assert_eq!(community_count(&[]), 0);
    }
}
