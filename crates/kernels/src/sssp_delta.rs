//! Δ-stepping SSSP (GAP-style): distance buckets processed in order, with a
//! parallel relaxation phase per bucket and a reduction to select the next
//! bucket — the push-pop (B4) + reduction (B5) profile of Fig. 5.

use crate::par::{atomic_min_f32, par_ranges};
use crate::Distance;
use heteromap_graph::{CsrGraph, VertexId};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, Ordering};

/// Runs Δ-stepping from `source` with bucket width `delta`, returning the
/// shortest distances.
///
/// The current bucket's vertices are relaxed in parallel (light and heavy
/// edges together — a simplification that preserves correctness because
/// settled vertices re-relax no-ops); vertices whose tentative distance
/// drops into a future bucket are re-queued there.
///
/// # Panics
///
/// Panics if `source` is out of bounds, `delta` is not positive, or an edge
/// weight is negative.
pub fn sssp_delta(
    graph: &CsrGraph,
    source: VertexId,
    delta: Distance,
    threads: usize,
) -> Vec<Distance> {
    let n = graph.vertex_count();
    assert!((source as usize) < n, "source out of bounds");
    assert!(delta > 0.0, "delta must be positive");
    let dist: Vec<AtomicU32> = (0..n)
        .map(|_| AtomicU32::new(f32::INFINITY.to_bits()))
        .collect();
    dist[source as usize].store(0.0f32.to_bits(), Ordering::Relaxed);

    let mut buckets: Vec<Vec<VertexId>> = vec![vec![source]];
    let mut current = 0usize;
    loop {
        // Reduction phase: select the next non-empty bucket (B5).
        while current < buckets.len() && buckets[current].is_empty() {
            current += 1;
        }
        if current >= buckets.len() {
            break;
        }
        // Pop the bucket and relax it in parallel until it stops refilling
        // (light-edge reinsertions land back in the same bucket).
        while !buckets[current].is_empty() {
            let frontier = std::mem::take(&mut buckets[current]);
            let inserts: Mutex<Vec<(usize, VertexId)>> = Mutex::new(Vec::new());
            par_ranges(frontier.len(), threads, |range| {
                let mut local = Vec::new();
                for &v in &frontier[range] {
                    let dv = f32::from_bits(dist[v as usize].load(Ordering::Relaxed));
                    // Skip stale entries that already left this bucket.
                    if (dv / delta) as usize != current && dv.is_finite() {
                        if ((dv / delta) as usize) < current {
                            // settled earlier; re-relax is a cheap no-op pass
                        } else {
                            continue;
                        }
                    }
                    for (t, w) in graph.edges(v) {
                        assert!(w >= 0.0, "negative edge weight");
                        let nd = dv + w;
                        if atomic_min_f32(&dist[t as usize], nd) {
                            local.push(((nd / delta) as usize, t));
                        }
                    }
                }
                if !local.is_empty() {
                    inserts.lock().extend_from_slice(&local);
                }
            });
            let inserts = inserts.into_inner();
            for (b, v) in inserts {
                let b = b.max(current);
                if b >= buckets.len() {
                    buckets.resize(b + 1, Vec::new());
                }
                buckets[b].push(v);
            }
        }
        current += 1;
    }
    dist.into_iter()
        .map(|d| f32::from_bits(d.into_inner()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::dijkstra;
    use heteromap_graph::gen::{GraphGenerator, Grid, PowerLaw, UniformRandom};

    fn assert_close(a: &[f32], b: &[f32]) {
        for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
            if x.is_infinite() || y.is_infinite() {
                assert_eq!(x.is_infinite(), y.is_infinite(), "vertex {i}");
            } else {
                assert!((x - y).abs() < 1e-3, "vertex {i}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn matches_dijkstra_on_random_graphs() {
        for seed in 0..4 {
            let g = UniformRandom::new(250, 1_500).generate(seed);
            assert_close(&sssp_delta(&g, 0, 4.0, 4), &dijkstra(&g, 0));
        }
    }

    #[test]
    fn matches_dijkstra_on_grid() {
        let g = Grid::new(14, 14).generate(1);
        assert_close(&sssp_delta(&g, 0, 2.0, 8), &dijkstra(&g, 0));
    }

    #[test]
    fn matches_dijkstra_on_power_law() {
        let g = PowerLaw::new(500, 3).generate(4);
        assert_close(&sssp_delta(&g, 0, 8.0, 6), &dijkstra(&g, 0));
    }

    #[test]
    fn delta_width_does_not_change_answers() {
        let g = UniformRandom::new(200, 1_000).generate(2);
        let d1 = sssp_delta(&g, 0, 1.0, 4);
        let d8 = sssp_delta(&g, 0, 8.0, 4);
        let dhuge = sssp_delta(&g, 0, 1e9, 4);
        assert_close(&d1, &d8);
        assert_close(&d1, &dhuge);
    }

    #[test]
    #[should_panic(expected = "delta must be positive")]
    fn zero_delta_panics() {
        let g = UniformRandom::new(10, 30).generate(0);
        let _ = sssp_delta(&g, 0, 0.0, 1);
    }
}
