//! Persistent worker-thread pool — the execution engine behind every
//! parallel kernel loop.
//!
//! The paper's deployment step assumes the predicted `M` configuration runs
//! on an accelerator whose execution resources already exist; spawning and
//! joining fresh OS threads inside every parallel region (the seed's
//! `crossbeam::thread::scope` realization) charges a thread-creation tax
//! once per BFS level and twice per PageRank iteration, which dwarfs the
//! actual edge work on small and medium graphs. This pool spawns each
//! worker once, parks it on a condvar between parallel regions, and reuses
//! it for every subsequent kernel invocation, so a full 81-combination
//! bench sweep pays thread creation `O(threads)` times instead of
//! `O(levels x iterations x combos)` times.
//!
//! Design:
//!
//! * Workers are long-lived and numbered `1..=workers`; the calling thread
//!   always participates as index `0`, so a `run(threads, f)` region uses
//!   `threads - 1` pool workers plus the caller.
//! * Jobs are published by bumping an epoch under a mutex and waking the
//!   condvar; workers whose index is `>= threads` simply sleep through that
//!   epoch. The mutex/condvar handshake on entry and exit provides the
//!   happens-before edges kernels rely on, so kernel code may use relaxed
//!   atomics inside a region and plain reads after it.
//! * The pool grows on demand (a request for more threads than workers
//!   spawns the difference) and never shrinks until dropped; `Drop` signals
//!   shutdown and joins every worker, so no threads leak.
//! * Worker panics are caught, forwarded to the caller, and re-raised
//!   there after the region's barrier — matching the propagation semantics
//!   of the scoped-thread code this replaces, without poisoning the pool.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// A type-erased, lifetime-erased handle to the caller's `Fn(usize) + Sync`
/// closure. Safety rests on `ThreadPool::run` blocking until every
/// participant has finished before the closure's stack frame can die.
#[derive(Clone, Copy)]
struct Job {
    data: *const (),
    call: unsafe fn(*const (), usize),
}

// SAFETY: the pointee is `Sync` (enforced by the `F: Sync` bound at the only
// construction site) and outlives the job (the caller blocks on the barrier).
unsafe impl Send for Job {}

impl Job {
    fn erase<F: Fn(usize) + Sync>(f: &F) -> Job {
        unsafe fn shim<F: Fn(usize) + Sync>(data: *const (), index: usize) {
            // SAFETY: `data` was erased from an `&F` that `run` keeps alive
            // until after the completion barrier.
            unsafe { (*(data as *const F))(index) }
        }
        Job {
            data: f as *const F as *const (),
            call: shim::<F>,
        }
    }
}

/// Payload of a worker panic, stashed for re-raising on the caller.
type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

struct State {
    /// Bumped once per published job; workers detect new work by comparing
    /// against their last-seen epoch.
    epoch: u64,
    /// The current job, present while `remaining > 0`.
    job: Option<Job>,
    /// Worker indices `1..participants` run the current job.
    participants: usize,
    /// Pool workers that have not yet finished the current job.
    remaining: usize,
    /// First worker panic of the current job, re-raised by the caller.
    panic: Option<PanicPayload>,
    /// Set once by `Drop`; workers exit at the next wakeup.
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here between jobs.
    work_cv: Condvar,
    /// The caller parks here while workers drain the current job.
    done_cv: Condvar,
}

/// A pool of long-lived, parked worker threads executing indexed parallel
/// regions (see the module docs for the design).
///
/// # Example
///
/// ```
/// use heteromap_kernels::pool::ThreadPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = ThreadPool::new(3);
/// let hits = AtomicUsize::new(0);
/// pool.run(4, |_worker| {
///     hits.fetch_add(1, Ordering::Relaxed);
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 4);
/// ```
pub struct ThreadPool {
    shared: Arc<Shared>,
    /// Join handles of spawned workers; guarded so `run(&self)` can grow
    /// the pool on demand.
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Serializes parallel regions: one region owns all workers at a time.
    region: Mutex<()>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("workers", &self.worker_count())
            .finish()
    }
}

impl ThreadPool {
    /// Creates a pool with `workers` pre-spawned worker threads. The pool
    /// grows on demand if a region requests more parallelism.
    pub fn new(workers: usize) -> Self {
        let pool = ThreadPool {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    epoch: 0,
                    job: None,
                    participants: 0,
                    remaining: 0,
                    panic: None,
                    shutdown: false,
                }),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
            }),
            workers: Mutex::new(Vec::new()),
            region: Mutex::new(()),
        };
        pool.ensure_workers(workers);
        pool
    }

    /// The process-wide pool every kernel runs on by default. Sized lazily:
    /// it starts empty and grows to the largest parallelism any region has
    /// requested.
    pub fn global() -> &'static ThreadPool {
        static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
        GLOBAL.get_or_init(|| ThreadPool::new(0))
    }

    /// Number of live pool workers (excluding callers).
    pub fn worker_count(&self) -> usize {
        self.workers.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Spawns workers until at least `target` exist.
    fn ensure_workers(&self, target: usize) {
        let mut workers = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        while workers.len() < target {
            let index = workers.len() + 1;
            let shared = Arc::clone(&self.shared);
            let handle = std::thread::Builder::new()
                .name(format!("heteromap-worker-{index}"))
                .spawn(move || worker_loop(shared, index))
                .expect("failed to spawn pool worker");
            workers.push(handle);
        }
    }

    /// Runs `work(t)` for every `t in 0..threads`, the caller participating
    /// as index 0, and returns once all participants have finished (a full
    /// barrier). `threads == 1` runs inline with no synchronization.
    ///
    /// # Panics
    ///
    /// Propagates panics from `work` (caller's or any worker's) after the
    /// barrier, so borrowed data is never touched past its lifetime.
    pub fn run<F>(&self, threads: usize, work: F)
    where
        F: Fn(usize) + Sync,
    {
        let threads = threads.max(1);
        // Under full tracing, sample each participant's busy time and report
        // the region to the observability layer (per-worker utilization,
        // the paper's Fig. 13 analogue). The instrumented closure adds two
        // clock reads per participant per region — negligible next to the
        // condvar handshake — and nothing at all below `Full`.
        if heteromap_obs::level() == heteromap_obs::TraceLevel::Full {
            let label = heteromap_obs::current_region_label();
            let busy: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
            let entered = Instant::now();
            self.run_inner(threads, |t| {
                let began = Instant::now();
                work(t);
                busy[t].fetch_add(began.elapsed().as_nanos() as u64, Ordering::Relaxed);
            });
            heteromap_obs::record_region(
                label,
                entered.elapsed().as_nanos() as u64,
                busy.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            );
        } else {
            self.run_inner(threads, work);
        }
    }

    fn run_inner<F>(&self, threads: usize, work: F)
    where
        F: Fn(usize) + Sync,
    {
        if threads == 1 {
            work(0);
            return;
        }
        self.ensure_workers(threads - 1);
        // One region at a time; kernels never nest parallel regions.
        let _region = self.region.lock().unwrap_or_else(|e| e.into_inner());
        {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            debug_assert_eq!(st.remaining, 0, "previous region leaked workers");
            st.job = Some(Job::erase(&work));
            st.participants = threads;
            st.remaining = threads - 1;
            st.epoch += 1;
            self.shared.work_cv.notify_all();
        }
        // The caller is participant 0.
        let caller = catch_unwind(AssertUnwindSafe(|| work(0)));
        // Barrier: `work` must stay alive until every worker is done.
        let worker_panic = {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            while st.remaining > 0 {
                st = self
                    .shared
                    .done_cv
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
            st.job = None;
            st.panic.take()
        };
        if let Err(payload) = caller {
            resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        let handles = std::mem::take(&mut *self.workers.lock().unwrap_or_else(|e| e.into_inner()));
        for handle in handles {
            // A worker that panicked outside a job is already gone; either
            // way it no longer holds the Arc after join.
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    if index < st.participants {
                        break st.job.expect("published epoch carries a job");
                    }
                    // Not a participant this round; sleep through it.
                }
                st = shared.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: the caller blocks on the completion barrier, keeping
            // the closure alive; `index` is unique among participants.
            unsafe { (job.call)(job.data, index) }
        }));
        let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Err(payload) = result {
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done_cv.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_index_exactly_once() {
        let pool = ThreadPool::new(3);
        for threads in [1, 2, 4, 8] {
            let hits: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
            pool.run(threads, |t| {
                hits[t].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn grows_on_demand() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.worker_count(), 0);
        pool.run(5, |_| {});
        assert_eq!(pool.worker_count(), 4);
        // Shrinking requests reuse the existing workers.
        pool.run(2, |_| {});
        assert_eq!(pool.worker_count(), 4);
    }

    #[test]
    fn reuse_is_deterministic() {
        let pool = ThreadPool::new(4);
        let run_sum = || {
            let sum = AtomicUsize::new(0);
            pool.run(5, |t| {
                sum.fetch_add(t * t, Ordering::Relaxed);
            });
            sum.load(Ordering::Relaxed)
        };
        let first = run_sum();
        for _ in 0..100 {
            assert_eq!(run_sum(), first);
        }
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(3, |t| {
                if t == 2 {
                    panic!("boom from worker");
                }
            });
        }));
        assert!(result.is_err());
        // The pool is still usable after a worker panic.
        let hits = AtomicUsize::new(0);
        pool.run(3, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn caller_panic_propagates_after_barrier() {
        let pool = ThreadPool::new(2);
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(3, |t| {
                if t == 0 {
                    panic!("boom from caller");
                }
                finished.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err());
        // Both workers completed before the panic escaped the barrier.
        assert_eq!(finished.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn drop_terminates_all_workers() {
        let pool = ThreadPool::new(6);
        pool.run(7, |_| {});
        let probe = Arc::downgrade(&pool.shared);
        drop(pool);
        // Every worker held an Arc<Shared>; after Drop joins them all, the
        // caller's was the last and the allocation is gone — no leaked
        // threads can remain.
        assert!(probe.upgrade().is_none(), "worker threads leaked");
    }

    #[test]
    fn single_thread_runs_inline_without_workers() {
        let pool = ThreadPool::new(0);
        let hits = AtomicUsize::new(0);
        pool.run(1, |t| {
            assert_eq!(t, 0);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        assert_eq!(pool.worker_count(), 0);
    }
}
