//! Parallel triangle counting by sorted-adjacency intersection — the
//! reduction-heavy (B5), read-only-shared (B9) workload of Fig. 5.

use crate::par::Scheduler;
use heteromap_graph::{CsrGraph, VertexId};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts triangles (unordered vertex triples mutually connected), assuming
/// an undirected graph stored with both edge directions.
///
/// Each triangle `v < u < w` is counted exactly once at its smallest vertex.
/// Work is distributed dynamically because hub vertices carry quadratic
/// intersection cost (the degree-skew imbalance the paper's M11 dynamic
/// scheduling addresses).
pub fn triangle_count(graph: &CsrGraph, threads: usize) -> u64 {
    triangle_count_with(graph, threads, Scheduler::Dynamic { grain: 64 })
}

/// [`triangle_count`] with an explicit work-distribution policy (static
/// scheduling suffers the hub imbalance the paper's M11 discussion names).
pub fn triangle_count_with(graph: &CsrGraph, threads: usize, scheduler: Scheduler) -> u64 {
    let n = graph.vertex_count();
    let total = AtomicU64::new(0);
    scheduler.for_each(n, threads, |range| {
        let mut local = 0u64;
        for v in range {
            let v = v as VertexId;
            let nv = graph.neighbors(v);
            for &u in nv {
                if u <= v {
                    continue;
                }
                local += intersect_above(nv, graph.neighbors(u), u);
            }
        }
        total.fetch_add(local, Ordering::Relaxed);
    });
    total.load(Ordering::Relaxed)
}

/// Counts elements common to both sorted slices that are `> floor`.
fn intersect_above(a: &[VertexId], b: &[VertexId], floor: VertexId) -> u64 {
    let (mut i, mut j, mut count) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                if a[i] > floor {
                    count += 1;
                }
                i += 1;
                j += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::triangle_seq;
    use heteromap_graph::gen::{GraphGenerator, PowerLaw, UniformRandom};
    use heteromap_graph::EdgeList;

    fn undirected_random(n: usize, m: usize, seed: u64) -> CsrGraph {
        // Symmetrize a random graph so triangle semantics hold.
        let g = UniformRandom::new(n, m).generate(seed);
        let mut el = EdgeList::new(n);
        for v in 0..n as VertexId {
            for &t in g.neighbors(v) {
                el.push_undirected(v, t, 1.0);
            }
        }
        el.dedup();
        el.into_csr().unwrap()
    }

    #[test]
    fn matches_sequential_on_random_graphs() {
        for seed in 0..3 {
            let g = undirected_random(120, 900, seed);
            assert_eq!(triangle_count(&g, 4), triangle_seq(&g), "seed {seed}");
        }
    }

    #[test]
    fn matches_sequential_on_power_law() {
        let g = PowerLaw::new(400, 4).generate(1);
        assert_eq!(triangle_count(&g, 8), triangle_seq(&g));
    }

    #[test]
    fn counts_k5() {
        // K5 has C(5,3) = 10 triangles.
        let mut el = EdgeList::new(5);
        for a in 0..5u32 {
            for b in (a + 1)..5u32 {
                el.push_undirected(a, b, 1.0);
            }
        }
        let g = el.into_csr().unwrap();
        assert_eq!(triangle_count(&g, 3), 10);
    }

    #[test]
    fn triangle_free_graph_counts_zero() {
        // Bipartite 3x3: no odd cycles.
        let mut el = EdgeList::new(6);
        for a in 0..3u32 {
            for b in 3..6u32 {
                el.push_undirected(a, b, 1.0);
            }
        }
        let g = el.into_csr().unwrap();
        assert_eq!(triangle_count(&g, 4), 0);
    }

    #[test]
    fn thread_count_invariant() {
        let g = undirected_random(200, 2_000, 9);
        let one = triangle_count(&g, 1);
        assert_eq!(triangle_count(&g, 7), one);
    }
}
