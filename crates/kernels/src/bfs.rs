//! Level-synchronous parallel breadth-first search.
//!
//! BFS is the paper's canonical "Pareto-Division" (B3) workload: each level's
//! frontier is divided among threads, with a global barrier between levels.

use crate::par::Scheduler;
use crate::UNREACHED;
use heteromap_graph::{CsrGraph, VertexId};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, Ordering};

/// Runs parallel BFS from `source`, returning the level of every vertex
/// (`UNREACHED` for unreachable vertices).
///
/// # Panics
///
/// Panics if `source` is out of bounds.
///
/// # Example
///
/// ```
/// use heteromap_graph::EdgeList;
/// use heteromap_kernels::bfs::bfs;
///
/// let mut el = EdgeList::new(3);
/// el.push(0, 1, 1.0);
/// el.push(1, 2, 1.0);
/// let g = el.into_csr().unwrap();
/// assert_eq!(bfs(&g, 0, 2), vec![0, 1, 2]);
/// ```
pub fn bfs(graph: &CsrGraph, source: VertexId, threads: usize) -> Vec<u32> {
    bfs_with(graph, source, threads, Scheduler::Static)
}

/// [`bfs`] with an explicit work-distribution policy for the frontier loop.
pub fn bfs_with(
    graph: &CsrGraph,
    source: VertexId,
    threads: usize,
    scheduler: Scheduler,
) -> Vec<u32> {
    let n = graph.vertex_count();
    assert!((source as usize) < n, "source out of bounds");
    let levels: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNREACHED)).collect();
    levels[source as usize].store(0, Ordering::Relaxed);
    let mut frontier = vec![source];
    let mut level = 0u32;
    while !frontier.is_empty() {
        let next = Mutex::new(Vec::with_capacity(frontier.len()));
        scheduler.for_each(frontier.len(), threads, |range| {
            let mut local = Vec::new();
            for &v in &frontier[range] {
                for &t in graph.neighbors(v) {
                    if levels[t as usize]
                        .compare_exchange(
                            UNREACHED,
                            level + 1,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        )
                        .is_ok()
                    {
                        local.push(t);
                    }
                }
            }
            if !local.is_empty() {
                next.lock().extend_from_slice(&local);
            }
        });
        frontier = next.into_inner();
        level += 1;
    }
    levels.into_iter().map(AtomicU32::into_inner).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::bfs_seq;
    use heteromap_graph::gen::{GraphGenerator, Grid, PowerLaw, UniformRandom};
    use heteromap_graph::EdgeList;

    #[test]
    fn matches_sequential_on_random_graphs() {
        for seed in 0..4 {
            let g = UniformRandom::new(300, 1_800).generate(seed);
            assert_eq!(bfs(&g, 0, 4), bfs_seq(&g, 0), "seed {seed}");
        }
    }

    #[test]
    fn matches_sequential_on_grid() {
        let g = Grid::new(12, 17).generate(0);
        assert_eq!(bfs(&g, 5, 3), bfs_seq(&g, 5));
    }

    #[test]
    fn matches_sequential_on_power_law() {
        let g = PowerLaw::new(800, 4).generate(2);
        assert_eq!(bfs(&g, 10, 8), bfs_seq(&g, 10));
    }

    #[test]
    fn unreachable_vertices_are_marked() {
        let mut el = EdgeList::new(4);
        el.push(0, 1, 1.0);
        let g = el.into_csr().unwrap();
        let l = bfs(&g, 0, 2);
        assert_eq!(l[0], 0);
        assert_eq!(l[1], 1);
        assert_eq!(l[2], UNREACHED);
        assert_eq!(l[3], UNREACHED);
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let g = UniformRandom::new(500, 3_000).generate(7);
        let reference = bfs(&g, 0, 1);
        for threads in [2, 4, 16] {
            assert_eq!(bfs(&g, 0, threads), reference);
        }
    }

    #[test]
    #[should_panic(expected = "source out of bounds")]
    fn bad_source_panics() {
        let g = EdgeList::new(2).into_csr().unwrap();
        let _ = bfs(&g, 9, 1);
    }
}
