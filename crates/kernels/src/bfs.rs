//! Level-synchronous parallel breadth-first search.
//!
//! BFS is the paper's canonical "Pareto-Division" (B3) workload: each level's
//! frontier is divided among threads, with a global barrier between levels.
//!
//! Two traversal refinements on top of the persistent execution engine:
//!
//! * **Lock-free frontiers** — the next frontier is a
//!   [`SharedFrontier`]: workers collect discoveries in per-worker local
//!   buffers (pre-sized from degree statistics, reused across levels) and
//!   flush each batch with a single atomic-cursor reservation. No lock is
//!   taken anywhere in the level loop, and the two frontier buffers are
//!   double-buffered across levels, so frontier storage is allocated once
//!   per traversal.
//! * **Direction optimization** (Beamer-style) — on sufficiently dense
//!   graphs the traversal switches from top-down *push* (scan the frontier's
//!   out-edges) to bottom-up *pull* (scan unvisited vertices' in-edges via
//!   the cached transpose) when the frontier's edge count crosses
//!   `unexplored / ALPHA`, and back once the frontier shrinks below
//!   `V / BETA`. Power-law graphs stop paying the full push cost on the big
//!   middle levels. Levels are direction-independent, so results stay
//!   bit-identical with the sequential reference.

use crate::frontier::SharedFrontier;
use crate::par::Scheduler;
use crate::UNREACHED;
use heteromap_graph::{CsrGraph, VertexId};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

/// Push→pull switch: go bottom-up when the frontier's out-edges exceed
/// `unexplored_edges / ALPHA` (Beamer's α).
const ALPHA: usize = 14;
/// Pull→push switch: return top-down when the frontier shrinks below
/// `vertex_count / BETA` (Beamer's β).
const BETA: usize = 24;
/// Direction optimization only pays off when pull levels can amortize the
/// transpose and the dense-frontier scan: require this average degree.
const DIR_OPT_MIN_AVG_DEGREE: f64 = 4.0;
/// ... and at least this many vertices.
const DIR_OPT_MIN_VERTICES: usize = 256;

/// Runs parallel BFS from `source`, returning the level of every vertex
/// (`UNREACHED` for unreachable vertices).
///
/// # Panics
///
/// Panics if `source` is out of bounds.
///
/// # Example
///
/// ```
/// use heteromap_graph::EdgeList;
/// use heteromap_kernels::bfs::bfs;
///
/// let mut el = EdgeList::new(3);
/// el.push(0, 1, 1.0);
/// el.push(1, 2, 1.0);
/// let g = el.into_csr().unwrap();
/// assert_eq!(bfs(&g, 0, 2), vec![0, 1, 2]);
/// ```
pub fn bfs(graph: &CsrGraph, source: VertexId, threads: usize) -> Vec<u32> {
    bfs_with(graph, source, threads, Scheduler::Static)
}

/// Whether [`bfs_with`] will use direction-optimizing traversal on `graph`
/// (the density gate: dense enough that pull levels win, large enough to
/// amortize the cached transpose).
pub fn direction_optimizing(graph: &CsrGraph) -> bool {
    graph.vertex_count() >= DIR_OPT_MIN_VERTICES && graph.average_degree() >= DIR_OPT_MIN_AVG_DEGREE
}

/// [`bfs`] with an explicit work-distribution policy for the frontier loop.
pub fn bfs_with(
    graph: &CsrGraph,
    source: VertexId,
    threads: usize,
    scheduler: Scheduler,
) -> Vec<u32> {
    let n = graph.vertex_count();
    assert!((source as usize) < n, "source out of bounds");
    let threads = threads.max(1);
    let levels: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNREACHED)).collect();
    levels[source as usize].store(0, Ordering::Relaxed);

    // Double-buffered frontiers, allocated once and reused every level.
    let mut cur = SharedFrontier::with_capacity(n);
    let mut next = SharedFrontier::with_capacity(n);
    cur.push_slice(&[source]);

    // Per-worker discovery buffers, reused across levels. Pre-sized from
    // degree statistics: a worker's static share of a full frontier emits at
    // most `chunk * avg_degree` vertices in expectation, plus one hub.
    let chunk = n.div_ceil(threads);
    let avg_degree = graph.average_degree().ceil() as usize;
    let local_capacity = chunk
        .saturating_mul(avg_degree.max(1))
        .saturating_add(graph.max_degree())
        .min(n);
    let locals: Vec<Mutex<Vec<u32>>> = (0..threads)
        .map(|_| Mutex::new(Vec::with_capacity(local_capacity)))
        .collect();

    let dir_opt = direction_optimizing(graph);
    let transpose = if dir_opt {
        Some(graph.transpose_cached())
    } else {
        None
    };

    let mut level = 0u32;
    let mut bottom_up = false;
    // Edges not yet explored, for the α heuristic (an estimate: edges out of
    // already-visited vertices are subtracted as their levels retire).
    let mut unexplored_edges = graph.edge_count();
    while !cur.is_empty() {
        if let Some(transpose) = &transpose {
            // Frontier out-edge volume drives the direction choice.
            let frontier_edges: usize = cur.as_slice().iter().map(|&v| graph.out_degree(v)).sum();
            if !bottom_up && frontier_edges * ALPHA > unexplored_edges {
                bottom_up = true;
            } else if bottom_up && cur.len() * BETA < n {
                bottom_up = false;
            }
            unexplored_edges = unexplored_edges.saturating_sub(frontier_edges);
            if bottom_up {
                // Pull: every unvisited vertex scans its in-neighbours for a
                // parent on the current level. Exactly one worker owns each
                // vertex, so a plain store suffices.
                scheduler.for_each_worker(n, threads, |worker, range| {
                    let mut local = locals[worker].lock().unwrap_or_else(|e| e.into_inner());
                    for v in range {
                        if levels[v].load(Ordering::Relaxed) != UNREACHED {
                            continue;
                        }
                        for &u in transpose.neighbors(v as VertexId) {
                            if levels[u as usize].load(Ordering::Relaxed) == level {
                                levels[v].store(level + 1, Ordering::Relaxed);
                                local.push(v as u32);
                                break;
                            }
                        }
                    }
                    next.push_slice(&local);
                    local.clear();
                });
                std::mem::swap(&mut cur, &mut next);
                next.clear();
                level += 1;
                continue;
            }
        }
        // Push: divide the frontier, claim neighbours by CAS.
        let frontier = cur.as_slice();
        scheduler.for_each_worker(frontier.len(), threads, |worker, range| {
            let mut local = locals[worker].lock().unwrap_or_else(|e| e.into_inner());
            for &v in &frontier[range] {
                for &t in graph.neighbors(v) {
                    if levels[t as usize]
                        .compare_exchange(
                            UNREACHED,
                            level + 1,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        )
                        .is_ok()
                    {
                        local.push(t);
                    }
                }
            }
            next.push_slice(&local);
            local.clear();
        });
        std::mem::swap(&mut cur, &mut next);
        next.clear();
        level += 1;
    }
    levels.into_iter().map(AtomicU32::into_inner).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::bfs_seq;
    use heteromap_graph::gen::{GraphGenerator, Grid, PowerLaw, UniformRandom};
    use heteromap_graph::EdgeList;

    #[test]
    fn matches_sequential_on_random_graphs() {
        for seed in 0..4 {
            let g = UniformRandom::new(300, 1_800).generate(seed);
            assert_eq!(bfs(&g, 0, 4), bfs_seq(&g, 0), "seed {seed}");
        }
    }

    #[test]
    fn matches_sequential_on_grid() {
        let g = Grid::new(12, 17).generate(0);
        assert_eq!(bfs(&g, 5, 3), bfs_seq(&g, 5));
    }

    #[test]
    fn matches_sequential_on_power_law() {
        let g = PowerLaw::new(800, 4).generate(2);
        assert_eq!(bfs(&g, 10, 8), bfs_seq(&g, 10));
    }

    #[test]
    fn direction_optimized_matches_sequential_on_dense_graphs() {
        // Dense enough to pass the gate and trigger pull levels.
        for seed in 0..3 {
            let g = UniformRandom::new(600, 6_000).generate(seed);
            assert!(direction_optimizing(&g), "gate should open: seed {seed}");
            assert_eq!(bfs(&g, 0, 4), bfs_seq(&g, 0), "seed {seed}");
        }
    }

    #[test]
    fn sparse_graphs_stay_top_down() {
        let g = Grid::new(30, 30).generate(0);
        assert!(!direction_optimizing(&g));
    }

    #[test]
    fn dynamic_scheduler_matches_static_on_dense_graphs() {
        let g = UniformRandom::new(500, 5_000).generate(11);
        assert_eq!(
            bfs_with(&g, 0, 4, Scheduler::Dynamic { grain: 32 }),
            bfs_with(&g, 0, 4, Scheduler::Static),
        );
    }

    #[test]
    fn unreachable_vertices_are_marked() {
        let mut el = EdgeList::new(4);
        el.push(0, 1, 1.0);
        let g = el.into_csr().unwrap();
        let l = bfs(&g, 0, 2);
        assert_eq!(l[0], 0);
        assert_eq!(l[1], 1);
        assert_eq!(l[2], UNREACHED);
        assert_eq!(l[3], UNREACHED);
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let g = UniformRandom::new(500, 3_000).generate(7);
        let reference = bfs(&g, 0, 1);
        for threads in [2, 4, 16] {
            assert_eq!(bfs(&g, 0, threads), reference);
        }
    }

    #[test]
    #[should_panic(expected = "source out of bounds")]
    fn bad_source_panics() {
        let g = EdgeList::new(2).into_csr().unwrap();
        let _ = bfs(&g, 9, 1);
    }
}
