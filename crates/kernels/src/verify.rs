//! Sequential reference implementations used to validate the parallel
//! kernels (and as the single-thread baselines in the examples).

use crate::{Distance, UNREACHED};
use heteromap_graph::{CsrGraph, VertexId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Sequential BFS levels from `source` (`UNREACHED` if unreachable).
pub fn bfs_seq(graph: &CsrGraph, source: VertexId) -> Vec<u32> {
    let n = graph.vertex_count();
    let mut levels = vec![UNREACHED; n];
    let mut q = VecDeque::new();
    levels[source as usize] = 0;
    q.push_back(source);
    while let Some(v) = q.pop_front() {
        let l = levels[v as usize];
        for &t in graph.neighbors(v) {
            if levels[t as usize] == UNREACHED {
                levels[t as usize] = l + 1;
                q.push_back(t);
            }
        }
    }
    levels
}

/// Dijkstra shortest-path distances from `source` — the ground truth for
/// both SSSP kernels. Unreachable vertices get `f32::INFINITY`.
pub fn dijkstra(graph: &CsrGraph, source: VertexId) -> Vec<Distance> {
    let n = graph.vertex_count();
    let mut dist = vec![f32::INFINITY; n];
    let mut heap: BinaryHeap<Reverse<(u64, VertexId)>> = BinaryHeap::new();
    dist[source as usize] = 0.0;
    heap.push(Reverse((0, source)));
    while let Some(Reverse((dbits, v))) = heap.pop() {
        let d = f64::from_bits(dbits) as f32;
        if d > dist[v as usize] {
            continue;
        }
        for (t, w) in graph.edges(v) {
            let nd = d + w;
            if nd < dist[t as usize] {
                dist[t as usize] = nd;
                heap.push(Reverse(((nd as f64).to_bits(), t)));
            }
        }
    }
    dist
}

/// Sequential recursive-order DFS preorder from `source`; returns the visit
/// order index per vertex (`UNREACHED` if unreachable).
pub fn dfs_seq(graph: &CsrGraph, source: VertexId) -> Vec<u32> {
    let n = graph.vertex_count();
    let mut order = vec![UNREACHED; n];
    let mut stack = vec![source];
    let mut counter = 0;
    while let Some(v) = stack.pop() {
        if order[v as usize] != UNREACHED {
            continue;
        }
        order[v as usize] = counter;
        counter += 1;
        // Push in reverse so the smallest neighbour is visited first.
        for &t in graph.neighbors(v).iter().rev() {
            if order[t as usize] == UNREACHED {
                stack.push(t);
            }
        }
    }
    order
}

/// Sequential pull PageRank with damping 0.85 over `iterations` rounds.
pub fn pagerank_seq(graph: &CsrGraph, iterations: u32) -> Vec<f64> {
    let n = graph.vertex_count();
    if n == 0 {
        return Vec::new();
    }
    let transpose = graph.transpose();
    let damping = 0.85;
    let mut rank = vec![1.0 / n as f64; n];
    let out_deg: Vec<usize> = (0..n).map(|v| graph.out_degree(v as VertexId)).collect();
    for _ in 0..iterations {
        let mut next = vec![(1.0 - damping) / n as f64; n];
        // Dangling mass is redistributed uniformly.
        let dangling: f64 = (0..n)
            .filter(|&v| out_deg[v] == 0)
            .map(|v| rank[v])
            .sum::<f64>()
            / n as f64;
        for (v, nx) in next.iter_mut().enumerate() {
            let mut sum = 0.0;
            for &u in transpose.neighbors(v as VertexId) {
                sum += rank[u as usize] / out_deg[u as usize] as f64;
            }
            *nx += damping * (sum + dangling);
        }
        rank = next;
    }
    rank
}

/// Sequential triangle count (each triangle counted once).
pub fn triangle_seq(graph: &CsrGraph) -> u64 {
    let n = graph.vertex_count();
    let mut count = 0u64;
    for v in 0..n as VertexId {
        let nv = graph.neighbors(v);
        for &u in nv {
            if u <= v {
                continue;
            }
            // Count w > u adjacent to both v and u.
            let nu = graph.neighbors(u);
            let (mut i, mut j) = (0, 0);
            while i < nv.len() && j < nu.len() {
                match nv[i].cmp(&nu[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        if nv[i] > u {
                            count += 1;
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    count
}

/// Sequential connected components over the *undirected closure* of the
/// graph (union-find); returns the minimum vertex id of each component.
pub fn conncomp_seq(graph: &CsrGraph) -> Vec<u32> {
    let n = graph.vertex_count();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], v: u32) -> u32 {
        let mut root = v;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = v;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for v in 0..n as u32 {
        for &t in graph.neighbors(v) {
            let (a, b) = (find(&mut parent, v), find(&mut parent, t));
            if a != b {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                parent[hi as usize] = lo;
            }
        }
    }
    (0..n as u32).map(|v| find(&mut parent, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteromap_graph::gen::{GraphGenerator, UniformRandom};
    use heteromap_graph::EdgeList;

    fn diamond() -> CsrGraph {
        let mut el = EdgeList::new(4);
        el.push(0, 1, 1.0);
        el.push(0, 2, 4.0);
        el.push(1, 3, 1.0);
        el.push(2, 3, 1.0);
        el.into_csr().unwrap()
    }

    #[test]
    fn dijkstra_picks_shorter_path() {
        let d = dijkstra(&diamond(), 0);
        assert_eq!(d, vec![0.0, 1.0, 4.0, 2.0]);
    }

    #[test]
    fn bfs_seq_levels() {
        assert_eq!(bfs_seq(&diamond(), 0), vec![0, 1, 1, 2]);
    }

    #[test]
    fn dfs_seq_visits_smallest_first() {
        let order = dfs_seq(&diamond(), 0);
        // 0 -> 1 -> 3 -> backtrack -> 2
        assert_eq!(order, vec![0, 1, 3, 2]);
    }

    #[test]
    fn pagerank_sums_to_one() {
        let g = UniformRandom::new(100, 600).generate(1);
        let r = pagerank_seq(&g, 20);
        let total: f64 = r.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "sum {total}");
    }

    #[test]
    fn triangle_counts_k4() {
        // Complete graph on 4 vertices has 4 triangles.
        let mut el = EdgeList::new(4);
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a != b {
                    el.push(a, b, 1.0);
                }
            }
        }
        let g = el.into_csr().unwrap();
        assert_eq!(triangle_seq(&g), 4);
    }

    #[test]
    fn triangle_counts_triangle_once() {
        let mut el = EdgeList::new(3);
        el.push_undirected(0, 1, 1.0);
        el.push_undirected(1, 2, 1.0);
        el.push_undirected(0, 2, 1.0);
        let g = el.into_csr().unwrap();
        assert_eq!(triangle_seq(&g), 1);
    }

    #[test]
    fn conncomp_two_components() {
        let mut el = EdgeList::new(5);
        el.push_undirected(0, 1, 1.0);
        el.push_undirected(3, 4, 1.0);
        let g = el.into_csr().unwrap();
        let c = conncomp_seq(&g);
        assert_eq!(c, vec![0, 0, 2, 3, 3]);
    }
}
