//! Sequential reference implementations used to validate the parallel
//! kernels (and as the single-thread baselines in the examples).

use crate::{Distance, UNREACHED};
use heteromap_graph::{CsrGraph, VertexId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Sequential BFS levels from `source` (`UNREACHED` if unreachable).
pub fn bfs_seq(graph: &CsrGraph, source: VertexId) -> Vec<u32> {
    let n = graph.vertex_count();
    let mut levels = vec![UNREACHED; n];
    let mut q = VecDeque::new();
    levels[source as usize] = 0;
    q.push_back(source);
    while let Some(v) = q.pop_front() {
        let l = levels[v as usize];
        for &t in graph.neighbors(v) {
            if levels[t as usize] == UNREACHED {
                levels[t as usize] = l + 1;
                q.push_back(t);
            }
        }
    }
    levels
}

/// Dijkstra shortest-path distances from `source` — the ground truth for
/// both SSSP kernels. Unreachable vertices get `f32::INFINITY`.
pub fn dijkstra(graph: &CsrGraph, source: VertexId) -> Vec<Distance> {
    let n = graph.vertex_count();
    let mut dist = vec![f32::INFINITY; n];
    let mut heap: BinaryHeap<Reverse<(u64, VertexId)>> = BinaryHeap::new();
    dist[source as usize] = 0.0;
    heap.push(Reverse((0, source)));
    while let Some(Reverse((dbits, v))) = heap.pop() {
        let d = f64::from_bits(dbits) as f32;
        if d > dist[v as usize] {
            continue;
        }
        for (t, w) in graph.edges(v) {
            let nd = d + w;
            if nd < dist[t as usize] {
                dist[t as usize] = nd;
                heap.push(Reverse(((nd as f64).to_bits(), t)));
            }
        }
    }
    dist
}

/// Sequential recursive-order DFS preorder from `source`; returns the visit
/// order index per vertex (`UNREACHED` if unreachable).
pub fn dfs_seq(graph: &CsrGraph, source: VertexId) -> Vec<u32> {
    let n = graph.vertex_count();
    let mut order = vec![UNREACHED; n];
    let mut stack = vec![source];
    let mut counter = 0;
    while let Some(v) = stack.pop() {
        if order[v as usize] != UNREACHED {
            continue;
        }
        order[v as usize] = counter;
        counter += 1;
        // Push in reverse so the smallest neighbour is visited first.
        for &t in graph.neighbors(v).iter().rev() {
            if order[t as usize] == UNREACHED {
                stack.push(t);
            }
        }
    }
    order
}

/// Sequential pull PageRank with damping 0.85 over `iterations` rounds.
pub fn pagerank_seq(graph: &CsrGraph, iterations: u32) -> Vec<f64> {
    let n = graph.vertex_count();
    if n == 0 {
        return Vec::new();
    }
    let transpose = graph.transpose();
    let damping = 0.85;
    let mut rank = vec![1.0 / n as f64; n];
    let out_deg: Vec<usize> = (0..n).map(|v| graph.out_degree(v as VertexId)).collect();
    for _ in 0..iterations {
        let mut next = vec![(1.0 - damping) / n as f64; n];
        // Dangling mass is redistributed uniformly.
        let dangling: f64 = (0..n)
            .filter(|&v| out_deg[v] == 0)
            .map(|v| rank[v])
            .sum::<f64>()
            / n as f64;
        for (v, nx) in next.iter_mut().enumerate() {
            let mut sum = 0.0;
            for &u in transpose.neighbors(v as VertexId) {
                sum += rank[u as usize] / out_deg[u as usize] as f64;
            }
            *nx += damping * (sum + dangling);
        }
        rank = next;
    }
    rank
}

/// Sequential triangle count (each triangle counted once).
pub fn triangle_seq(graph: &CsrGraph) -> u64 {
    let n = graph.vertex_count();
    let mut count = 0u64;
    for v in 0..n as VertexId {
        let nv = graph.neighbors(v);
        for &u in nv {
            if u <= v {
                continue;
            }
            // Count w > u adjacent to both v and u.
            let nu = graph.neighbors(u);
            let (mut i, mut j) = (0, 0);
            while i < nv.len() && j < nu.len() {
                match nv[i].cmp(&nu[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        if nv[i] > u {
                            count += 1;
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    count
}

/// Sequential connected components over the *undirected closure* of the
/// graph (union-find); returns the minimum vertex id of each component.
pub fn conncomp_seq(graph: &CsrGraph) -> Vec<u32> {
    let n = graph.vertex_count();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], v: u32) -> u32 {
        let mut root = v;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = v;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for v in 0..n as u32 {
        for &t in graph.neighbors(v) {
            let (a, b) = (find(&mut parent, v), find(&mut parent, t));
            if a != b {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                parent[hi as usize] = lo;
            }
        }
    }
    (0..n as u32).map(|v| find(&mut parent, v)).collect()
}

/// Sequential sparse matrix–vector multiply over the CSR adjacency:
/// `y[v] = Σ w(v,t) · x[t]`, accumulating in CSR edge order (the same
/// order the parallel kernel uses, so results are bit-identical).
pub fn spmv_seq(graph: &CsrGraph, x: &[f32]) -> Vec<f32> {
    let n = graph.vertex_count();
    assert_eq!(x.len(), n, "input vector length must match vertex count");
    (0..n as VertexId)
        .map(|v| {
            let mut sum = 0.0f32;
            for (t, w) in graph.edges(v) {
                sum += w * x[t as usize];
            }
            sum
        })
        .collect()
}

/// Sequential k-core decomposition by textbook peeling: at level `k`,
/// repeatedly remove every remaining vertex of remaining out-degree
/// `<= k` (decrementing its in-neighbors) until a fixpoint, then advance
/// `k`. The peeling fixpoint is unique, so this matches the parallel
/// wave-based kernel bit for bit.
pub fn kcore_seq(graph: &CsrGraph) -> Vec<u32> {
    let n = graph.vertex_count();
    let transpose = graph.transpose();
    let mut deg: Vec<u32> = (0..n)
        .map(|v| graph.out_degree(v as VertexId) as u32)
        .collect();
    let mut alive = vec![true; n];
    let mut core = vec![0u32; n];
    let mut remaining = n;
    let mut k = 0u32;
    while remaining > 0 {
        loop {
            let wave: Vec<usize> = (0..n).filter(|&v| alive[v] && deg[v] <= k).collect();
            if wave.is_empty() {
                break;
            }
            for &v in &wave {
                alive[v] = false;
                core[v] = k;
                for &u in transpose.neighbors(v as VertexId) {
                    deg[u as usize] = deg[u as usize].saturating_sub(1);
                }
            }
            remaining -= wave.len();
        }
        k += 1;
    }
    core
}

/// Sequential push-direction weighted label propagation: each round every
/// vertex adopts the label with the largest total in-edge weight (ties
/// toward the smaller label), updating synchronously.
pub fn labelprop_seq(graph: &CsrGraph, iterations: u32) -> Vec<u32> {
    let n = graph.vertex_count();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    if n == 0 {
        return labels;
    }
    let transpose = graph.transpose();
    for _ in 0..iterations {
        let mut next = labels.clone();
        for (v, nx) in next.iter_mut().enumerate() {
            let mut votes: std::collections::HashMap<u32, f32> = std::collections::HashMap::new();
            for (u, w) in transpose.edges(v as VertexId) {
                *votes.entry(labels[u as usize]).or_insert(0.0) += w;
            }
            let current = labels[v];
            let mut best = (current, f32::NEG_INFINITY);
            for (&label, &weight) in &votes {
                if weight > best.1 || (weight == best.1 && label < best.0) {
                    best = (label, weight);
                }
            }
            *nx = if votes.is_empty() { current } else { best.0 };
        }
        labels = next;
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteromap_graph::gen::{GraphGenerator, UniformRandom};
    use heteromap_graph::EdgeList;

    fn diamond() -> CsrGraph {
        let mut el = EdgeList::new(4);
        el.push(0, 1, 1.0);
        el.push(0, 2, 4.0);
        el.push(1, 3, 1.0);
        el.push(2, 3, 1.0);
        el.into_csr().unwrap()
    }

    #[test]
    fn dijkstra_picks_shorter_path() {
        let d = dijkstra(&diamond(), 0);
        assert_eq!(d, vec![0.0, 1.0, 4.0, 2.0]);
    }

    #[test]
    fn bfs_seq_levels() {
        assert_eq!(bfs_seq(&diamond(), 0), vec![0, 1, 1, 2]);
    }

    #[test]
    fn dfs_seq_visits_smallest_first() {
        let order = dfs_seq(&diamond(), 0);
        // 0 -> 1 -> 3 -> backtrack -> 2
        assert_eq!(order, vec![0, 1, 3, 2]);
    }

    #[test]
    fn pagerank_sums_to_one() {
        let g = UniformRandom::new(100, 600).generate(1);
        let r = pagerank_seq(&g, 20);
        let total: f64 = r.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "sum {total}");
    }

    #[test]
    fn triangle_counts_k4() {
        // Complete graph on 4 vertices has 4 triangles.
        let mut el = EdgeList::new(4);
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a != b {
                    el.push(a, b, 1.0);
                }
            }
        }
        let g = el.into_csr().unwrap();
        assert_eq!(triangle_seq(&g), 4);
    }

    #[test]
    fn triangle_counts_triangle_once() {
        let mut el = EdgeList::new(3);
        el.push_undirected(0, 1, 1.0);
        el.push_undirected(1, 2, 1.0);
        el.push_undirected(0, 2, 1.0);
        let g = el.into_csr().unwrap();
        assert_eq!(triangle_seq(&g), 1);
    }

    #[test]
    fn spmv_seq_by_hand() {
        let y = spmv_seq(&diamond(), &[1.0, 2.0, 3.0, 4.0]);
        // Row 0: 1*x1 + 4*x2; rows 1,2: edge to 3; row 3: empty.
        assert_eq!(y, vec![2.0 + 12.0, 4.0, 4.0, 0.0]);
    }

    #[test]
    fn kcore_seq_peels_a_lollipop() {
        // Triangle 0-1-2 with a tail 2-3: tail is 1-core, triangle 2-core.
        let mut el = EdgeList::new(4);
        el.push_undirected(0, 1, 1.0);
        el.push_undirected(1, 2, 1.0);
        el.push_undirected(0, 2, 1.0);
        el.push_undirected(2, 3, 1.0);
        let g = el.into_csr().unwrap();
        assert_eq!(kcore_seq(&g), vec![2, 2, 2, 1]);
    }

    #[test]
    fn labelprop_seq_ties_break_to_smaller_label() {
        // 1 and 2 push at 3 with equal weight: 3 adopts the smaller label.
        let mut el = EdgeList::new(4);
        el.push(1, 3, 1.0);
        el.push(2, 3, 1.0);
        let g = el.into_csr().unwrap();
        assert_eq!(labelprop_seq(&g, 1)[3], 1);
    }

    #[test]
    fn conncomp_two_components() {
        let mut el = EdgeList::new(5);
        el.push_undirected(0, 1, 1.0);
        el.push_undirected(3, 4, 1.0);
        let g = el.into_csr().unwrap();
        let c = conncomp_seq(&g);
        assert_eq!(c, vec![0, 0, 2, 3, 3]);
    }
}
