//! Parallel connected components by min-label propagation — indirect
//! label-chasing (B8) with read-write shared labels (B10), per Fig. 5.

use crate::par::Scheduler;
use heteromap_graph::{CsrGraph, VertexId};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Computes connected components over the undirected closure of `graph`
/// (each directed edge connects both endpoints), returning for every vertex
/// the minimum vertex id in its component.
///
/// Uses Shiloach-Vishkin-style hooking with full pointer-jumping
/// (shortcutting) between rounds — the "data-manipulated addressing" the
/// paper flags as B8 for Conn. Comp.
pub fn conncomp(graph: &CsrGraph, threads: usize) -> Vec<u32> {
    conncomp_with(graph, threads, Scheduler::Static)
}

/// [`conncomp`] with an explicit work-distribution policy.
pub fn conncomp_with(graph: &CsrGraph, threads: usize, scheduler: Scheduler) -> Vec<u32> {
    let n = graph.vertex_count();
    let labels: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    loop {
        let changed = AtomicBool::new(false);
        // Hook: adopt the smaller label across each edge.
        scheduler.for_each(n, threads, |range| {
            let mut local_changed = false;
            for v in range {
                let lv = labels[v].load(Ordering::Relaxed);
                for &t in graph.neighbors(v as VertexId) {
                    let lt = labels[t as usize].load(Ordering::Relaxed);
                    if lt < lv {
                        if lower(&labels[v], lt) {
                            local_changed = true;
                        }
                    } else if lv < lt && lower(&labels[t as usize], lv) {
                        local_changed = true;
                    }
                }
            }
            if local_changed {
                changed.store(true, Ordering::Relaxed);
            }
        });
        // Shortcut: chase labels to their roots (pointer jumping).
        scheduler.for_each(n, threads, |range| {
            for v in range {
                let mut l = labels[v].load(Ordering::Relaxed);
                loop {
                    let parent = labels[l as usize].load(Ordering::Relaxed);
                    if parent == l {
                        break;
                    }
                    l = parent;
                }
                labels[v].fetch_min(l, Ordering::Relaxed);
            }
        });
        if !changed.load(Ordering::Relaxed) {
            break;
        }
    }
    labels.into_iter().map(AtomicU32::into_inner).collect()
}

/// Atomically lowers a label; returns `true` if it decreased.
fn lower(slot: &AtomicU32, value: u32) -> bool {
    slot.fetch_min(value, Ordering::Relaxed) > value
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::conncomp_seq;
    use heteromap_graph::gen::{GraphGenerator, Grid, UniformRandom};
    use heteromap_graph::EdgeList;

    /// Normalizes directed-reachability differences: compare against
    /// union-find over the same (undirected-closure) edge set.
    fn check(graph: &CsrGraph, threads: usize) {
        assert_eq!(conncomp(graph, threads), conncomp_seq(graph));
    }

    #[test]
    fn matches_union_find_on_random_graphs() {
        for seed in 0..4 {
            let g = UniformRandom::new(300, 600).generate(seed);
            check(&g, 4);
        }
    }

    #[test]
    fn grid_is_one_component() {
        let g = Grid::new(15, 15).generate(0);
        let c = conncomp(&g, 8);
        assert!(c.iter().all(|&l| l == 0));
    }

    #[test]
    fn disjoint_edges_form_separate_components() {
        let mut el = EdgeList::new(6);
        el.push_undirected(0, 1, 1.0);
        el.push_undirected(2, 3, 1.0);
        let g = el.into_csr().unwrap();
        assert_eq!(conncomp(&g, 2), vec![0, 0, 2, 2, 4, 5]);
    }

    #[test]
    fn labels_are_component_minima() {
        let g = UniformRandom::new(200, 260).generate(5);
        let c = conncomp(&g, 4);
        for (v, &l) in c.iter().enumerate() {
            assert!(l as usize <= v);
            assert_eq!(c[l as usize], l, "label {l} is not a root");
        }
    }

    #[test]
    fn thread_count_invariant() {
        let g = UniformRandom::new(250, 400).generate(6);
        let one = conncomp(&g, 1);
        assert_eq!(conncomp(&g, 8), one);
    }
}
