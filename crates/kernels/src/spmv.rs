//! Sparse matrix–vector multiply — vertex-division FP with coalesced
//! row access (B1 + B6 + B9 in Fig. 5), the first GARDENIA widening of
//! the benchmark space beyond classic traversals.
//!
//! The CSR graph *is* the sparse matrix: row `v` holds the weights of
//! `v`'s out-edges, so `y = A·x` is one serial dot product per vertex.
//! Rows are disjoint output slots, so there is no cross-thread
//! accumulation anywhere — the result is bit-identical for every thread
//! count and scheduler, which is what lets the dynamic engine fold SpMV
//! outputs into its cross-thread resolution digests.

use crate::par::Scheduler;
use heteromap_graph::{CsrGraph, VertexId};
use std::sync::atomic::{AtomicU32, Ordering};

/// `y = A·x` over the CSR adjacency with [`Scheduler::Static`].
pub fn spmv(graph: &CsrGraph, x: &[f32], threads: usize) -> Vec<f32> {
    spmv_with(graph, x, threads, Scheduler::Static)
}

/// [`spmv`] with an explicit work-distribution policy.
///
/// # Panics
///
/// Panics if `x.len()` differs from the vertex count.
pub fn spmv_with(graph: &CsrGraph, x: &[f32], threads: usize, scheduler: Scheduler) -> Vec<f32> {
    let n = graph.vertex_count();
    assert_eq!(x.len(), n, "input vector length must match vertex count");
    // Output slots are disjoint per row; the atomic is only a Sync-safe
    // carrier for the f32 bits, never contended.
    let y: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    scheduler.for_each(n, threads, |range| {
        for v in range {
            let mut sum = 0.0f32;
            for (t, w) in graph.edges(v as VertexId) {
                sum += w * x[t as usize];
            }
            y[v].store(sum.to_bits(), Ordering::Relaxed);
        }
    });
    y.into_iter()
        .map(|bits| f32::from_bits(bits.into_inner()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::spmv_seq;
    use heteromap_graph::gen::{GraphGenerator, PowerLaw, UniformRandom};
    use heteromap_graph::EdgeList;

    fn unit_x(n: usize) -> Vec<f32> {
        (0..n).map(|i| 1.0 + (i % 7) as f32 * 0.25).collect()
    }

    #[test]
    fn small_matrix_by_hand() {
        let mut el = EdgeList::new(3);
        el.push(0, 1, 2.0);
        el.push(0, 2, 3.0);
        el.push(2, 0, 0.5);
        let g = el.into_csr().unwrap();
        let y = spmv(&g, &[1.0, 10.0, 100.0], 2);
        assert_eq!(y, vec![2.0 * 10.0 + 3.0 * 100.0, 0.0, 0.5]);
    }

    #[test]
    fn matches_sequential_reference_bit_for_bit() {
        for seed in 0..3 {
            let g = UniformRandom::new(300, 2_400).generate(seed);
            let x = unit_x(300);
            let reference = spmv_seq(&g, &x);
            for threads in [1, 4, 16] {
                assert_eq!(spmv(&g, &x, threads), reference, "threads={threads}");
            }
        }
    }

    #[test]
    fn scheduler_and_thread_count_invariant_on_skewed_graphs() {
        let g = PowerLaw::new(400, 4).generate(2);
        let x = unit_x(400);
        let reference = spmv(&g, &x, 1);
        for threads in [2, 8] {
            assert_eq!(
                spmv_with(&g, &x, threads, Scheduler::Dynamic { grain: 8 }),
                reference
            );
        }
    }

    #[test]
    fn empty_graph_yields_empty_vector() {
        let g = EdgeList::new(0).into_csr().unwrap();
        assert!(spmv(&g, &[], 4).is_empty());
    }
}
