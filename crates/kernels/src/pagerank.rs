//! Pull-based PageRank — FP-heavy vertex division with a convergence
//! reduction (B1 + B5 + B6 in Fig. 5).

use crate::par::{atomic_add_f64, par_chunks_mut, par_ranges};
use heteromap_graph::{CsrGraph, VertexId};
use std::sync::atomic::AtomicU64;

/// Damping factor used by all PageRank kernels (the standard 0.85).
pub const DAMPING: f64 = 0.85;

/// Runs parallel pull PageRank for `iterations` rounds, returning the rank
/// vector (which sums to ≈ 1).
///
/// Pull formulation: each vertex gathers `rank[u] / out_deg(u)` over its
/// in-neighbours — read-only sharing (B9), no atomics in the inner loop.
/// Dangling-vertex mass is redistributed uniformly via a parallel reduction.
/// The in-neighbour view comes from the graph's cached transpose, so
/// repeated PageRank calls on one graph pay the `O(V + E)` transpose once.
pub fn pagerank(graph: &CsrGraph, iterations: u32, threads: usize) -> Vec<f64> {
    let n = graph.vertex_count();
    if n == 0 {
        return Vec::new();
    }
    let transpose = graph.transpose_cached();
    let out_deg: Vec<usize> = (0..n).map(|v| graph.out_degree(v as VertexId)).collect();
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        // Reduction: dangling mass (B5 phase).
        let dangling_bits = AtomicU64::new(0.0f64.to_bits());
        par_ranges(n, threads, |range| {
            let local: f64 = range.filter(|&v| out_deg[v] == 0).map(|v| rank[v]).sum();
            atomic_add_f64(&dangling_bits, local);
        });
        let dangling = f64::from_bits(dangling_bits.into_inner()) / n as f64;
        // Vertex-division gather phase (B1): each worker owns a disjoint
        // slice of `next`, so no synchronization is needed.
        par_chunks_mut(&mut next, threads, |offset, next_chunk| {
            for (off, nx) in next_chunk.iter_mut().enumerate() {
                let v = offset + off;
                let mut sum = 0.0;
                for &u in transpose.neighbors(v as VertexId) {
                    sum += rank[u as usize] / out_deg[u as usize] as f64;
                }
                *nx = (1.0 - DAMPING) / n as f64 + DAMPING * (sum + dangling);
            }
        });
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::pagerank_seq;
    use heteromap_graph::gen::{GraphGenerator, PowerLaw, UniformRandom};
    use heteromap_graph::EdgeList;

    fn assert_close(a: &[f64], b: &[f64]) {
        for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
            assert!((x - y).abs() < 1e-9, "vertex {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matches_sequential_reference() {
        let g = UniformRandom::new(150, 900).generate(1);
        assert_close(&pagerank(&g, 15, 4), &pagerank_seq(&g, 15));
    }

    #[test]
    fn matches_sequential_on_power_law() {
        let g = PowerLaw::new(400, 3).generate(2);
        assert_close(&pagerank(&g, 10, 8), &pagerank_seq(&g, 10));
    }

    #[test]
    fn ranks_sum_to_one() {
        let g = UniformRandom::new(200, 1_000).generate(3);
        let r = pagerank(&g, 20, 4);
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn hub_outranks_leaf() {
        // Star pointing at the hub: hub collects rank.
        let mut el = EdgeList::new(5);
        for i in 1..5 {
            el.push(i, 0, 1.0);
        }
        let g = el.into_csr().unwrap();
        let r = pagerank(&g, 30, 2);
        assert!(r[0] > r[1] * 2.0, "hub {} leaf {}", r[0], r[1]);
    }

    #[test]
    fn empty_graph_returns_empty() {
        let g = EdgeList::new(0).into_csr().unwrap();
        assert!(pagerank(&g, 5, 2).is_empty());
    }

    #[test]
    fn thread_count_invariant() {
        let g = UniformRandom::new(100, 700).generate(4);
        let base = pagerank(&g, 10, 1);
        for t in [2, 6] {
            assert_close(&pagerank(&g, 10, t), &base);
        }
    }
}
