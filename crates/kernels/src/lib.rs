//! Real multithreaded graph-analytics kernels.
//!
//! The paper's benchmarks come from CRONO, GAP, MiBench, Rodinia and
//! Pannotia; this crate reimplements the nine evaluated kernels in Rust on a
//! persistent worker-thread [`pool`], so the reproduction can execute the
//! actual algorithms on host hardware (the accelerator *performance* numbers
//! come from `heteromap-accel`'s simulator — see DESIGN.md §2 — but
//! correctness, thread-count scaling and the algorithms themselves are real):
//!
//! * [`bfs`] — level-synchronous breadth-first search,
//! * [`sssp_bf`] — Bellman-Ford shortest paths (data-parallel relaxation),
//! * [`sssp_delta`] — Δ-stepping shortest paths (buckets + reductions),
//! * [`dfs`] — work-list depth-first reachability,
//! * [`pagerank`] / [`pagerank_dp`] — pull- and push-based PageRank,
//! * [`triangle`] — triangle counting by sorted intersection,
//! * [`conncomp`] — connected components by label propagation,
//! * [`community`] — community detection by label propagation,
//! * [`spmv`] / [`kcore`] / [`labelprop`] — the GARDENIA widening of the
//!   benchmark space (sparse matrix–vector multiply, k-core peeling,
//!   push-direction label propagation),
//! * [`verify`] — sequential reference implementations used in tests,
//! * [`runner`] — uniform dispatch used by examples and benches.
//!
//! The execution engine lives in [`pool`] (long-lived parked workers,
//! spawned once per process) and [`frontier`] (lock-free shared frontier
//! buffers); [`par`] exposes the schedulers and the engine toggle.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bfs;
pub mod community;
pub mod conncomp;
pub mod dfs;
pub mod frontier;
pub mod kcore;
pub mod labelprop;
pub mod pagerank;
pub mod pagerank_dp;
pub mod par;
pub mod pool;
pub mod runner;
pub mod spmv;
pub mod sssp_bf;
pub mod sssp_delta;
pub mod triangle;
pub mod verify;

pub use par::ExecEngine;
pub use runner::{KernelOutput, KernelRunner};

/// Distance value used by the shortest-path kernels.
pub type Distance = f32;

/// Sentinel for "unreached" in level/distance arrays.
pub const UNREACHED: u32 = u32::MAX;
