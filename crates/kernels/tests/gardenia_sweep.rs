//! The 81-combo validation sweep for the GARDENIA kernels.
//!
//! 3 new kernels (SpMV, k-core, label propagation) × 9 generated graphs ×
//! 3 thread counts (1, 4, 16) = 81 combinations, each asserted
//! *bit-identical* to its sequential scalar reference. This is the
//! kernel-side half of the dynamic engine's determinism story: the
//! resolution digests of `exp_dynamic_adaptive` can only be bit-identical
//! across thread counts if the kernels underneath are.

use heteromap_graph::gen::{
    Densifying, GraphGenerator, Grid, Kronecker, PowerLaw, RMat, SmallWorld, UniformRandom,
};
use heteromap_graph::CsrGraph;
use heteromap_kernels::verify::{kcore_seq, labelprop_seq, spmv_seq};
use heteromap_kernels::{kcore::kcore, labelprop::labelprop, spmv::spmv};

const THREADS: [usize; 3] = [1, 4, 16];
const LP_ITERATIONS: u32 = 8;

fn nine_graphs() -> Vec<(String, CsrGraph)> {
    let gens: Vec<(Box<dyn GraphGenerator>, u64)> = vec![
        (Box::new(UniformRandom::new(300, 2_000)), 1),
        (Box::new(UniformRandom::new(120, 300)), 2),
        (Box::new(Kronecker::new(7, 5.0)), 3),
        (Box::new(RMat::new(7, 4.0, 0.57, 0.19, 0.19)), 4),
        (Box::new(Grid::new(15, 12)), 5),
        (Box::new(PowerLaw::new(280, 4)), 6),
        (Box::new(SmallWorld::new(260, 3, 0.1)), 7),
        (Box::new(Densifying::new(240, 5, 180)), 8),
        (Box::new(Densifying::new(240, 8, 260).with_hub_pool(1)), 9),
    ];
    gens.into_iter()
        .map(|(g, seed)| (format!("{}#{seed}", g.name()), g.generate(seed)))
        .collect()
}

fn spmv_x(n: usize) -> Vec<f32> {
    (0..n).map(|i| 1.0 + (i % 7) as f32 * 0.25).collect()
}

#[test]
fn gardenia_kernels_match_scalar_references_on_81_combos() {
    let graphs = nine_graphs();
    assert_eq!(graphs.len(), 9);
    let mut combos = 0usize;
    for (name, g) in &graphs {
        let x = spmv_x(g.vertex_count());
        let spmv_ref = spmv_seq(g, &x);
        let kcore_ref = kcore_seq(g);
        let lp_ref = labelprop_seq(g, LP_ITERATIONS);
        for threads in THREADS {
            assert_eq!(spmv(g, &x, threads), spmv_ref, "spmv {name} t={threads}");
            assert_eq!(kcore(g, threads), kcore_ref, "kcore {name} t={threads}");
            assert_eq!(
                labelprop(g, LP_ITERATIONS, threads),
                lp_ref,
                "labelprop {name} t={threads}"
            );
            combos += 3;
        }
    }
    assert_eq!(combos, 81, "the sweep must cover exactly 81 combos");
}
