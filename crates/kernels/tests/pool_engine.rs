//! Integration tests for the persistent execution engine: every kernel,
//! routed through `KernelRunner` onto the shared pool, must match the
//! sequential verifiers at 1, 4 and 16 threads — bit-identical for integer
//! kernels, reference-tolerance for floating-point kernels — and repeated
//! runs on the same (reused) pool must be deterministic.

use heteromap_graph::gen::{GraphGenerator, PowerLaw, UniformRandom};
use heteromap_graph::{CsrGraph, EdgeList, VertexId};
use heteromap_kernels::verify::{bfs_seq, conncomp_seq, dijkstra, pagerank_seq, triangle_seq};
use heteromap_kernels::{ExecEngine, KernelOutput, KernelRunner};
use heteromap_model::Workload;

const THREAD_COUNTS: [usize; 3] = [1, 4, 16];

/// A directed test graph dense enough to open BFS's direction-optimizing
/// gate, plus a sparser one and a power-law one.
fn test_graphs() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("uniform-sparse", UniformRandom::new(300, 1_500).generate(3)),
        ("uniform-dense", UniformRandom::new(400, 4_000).generate(5)),
        ("power-law", PowerLaw::new(500, 4).generate(7)),
    ]
}

/// Symmetrized graph for triangle counting.
fn symmetrized(g: &CsrGraph) -> CsrGraph {
    let mut el = EdgeList::new(g.vertex_count());
    for v in 0..g.vertex_count() as VertexId {
        for &t in g.neighbors(v) {
            el.push_undirected(v, t, 1.0);
        }
    }
    el.dedup();
    el.into_csr().expect("valid symmetrized graph")
}

fn assert_f32_close(tag: &str, got: &[f32], want: &[f32]) {
    assert_eq!(got.len(), want.len(), "{tag}");
    for (i, (&a, &b)) in got.iter().zip(want).enumerate() {
        if a.is_infinite() || b.is_infinite() {
            assert_eq!(a.is_infinite(), b.is_infinite(), "{tag}: vertex {i}");
        } else {
            assert!((a - b).abs() < 1e-3, "{tag}: vertex {i}: {a} vs {b}");
        }
    }
}

fn assert_f64_close(tag: &str, got: &[f64], want: &[f64], tol: f64) {
    assert_eq!(got.len(), want.len(), "{tag}");
    for (i, (&a, &b)) in got.iter().zip(want).enumerate() {
        assert!((a - b).abs() < tol, "{tag}: vertex {i}: {a} vs {b}");
    }
}

#[test]
fn all_nine_kernels_match_verifiers_at_every_thread_count() {
    for (name, g) in test_graphs() {
        let tri_graph = symmetrized(&g);
        let seq_levels = bfs_seq(&g, 0);
        let seq_dist = dijkstra(&g, 0);
        let seq_ranks = pagerank_seq(&g, 8);
        let seq_comps = conncomp_seq(&g);
        let seq_triangles = triangle_seq(&tri_graph);
        for threads in THREAD_COUNTS {
            let runner = KernelRunner::new(threads).with_pagerank_iterations(8);
            let tag = format!("{name}/t{threads}");
            for w in Workload::all() {
                let graph = if w == Workload::TriangleCount {
                    &tri_graph
                } else {
                    &g
                };
                match (w, runner.run(w, graph).output) {
                    // Integer kernels: bit-identical with the reference.
                    (Workload::Bfs, KernelOutput::Levels(levels)) => {
                        assert_eq!(levels, seq_levels, "{tag}: bfs")
                    }
                    (Workload::ConnComp, KernelOutput::Labels(labels)) => {
                        assert_eq!(labels, seq_comps, "{tag}: conncomp")
                    }
                    (Workload::TriangleCount, KernelOutput::Count(c)) => {
                        assert_eq!(c, seq_triangles, "{tag}: triangle")
                    }
                    (Workload::Dfs, KernelOutput::Levels(parent)) => {
                        // DFS trees are scheduling-dependent; the visited
                        // set must equal BFS reachability.
                        for (v, (&p, &l)) in parent.iter().zip(&seq_levels).enumerate() {
                            assert_eq!(
                                p != u32::MAX,
                                l != u32::MAX,
                                "{tag}: dfs reachability of {v}"
                            );
                        }
                    }
                    (Workload::Community, KernelOutput::Labels(labels)) => {
                        // No sequential oracle; label propagation is
                        // double-buffered, so any thread count must equal
                        // the single-threaded labelling.
                        let one = KernelRunner::new(1).run(w, graph).output;
                        assert_eq!(KernelOutput::Labels(labels), one, "{tag}: community");
                    }
                    // FP kernels: reference-tolerance.
                    (Workload::SsspBf, KernelOutput::Distances(d)) => {
                        assert_f32_close(&format!("{tag}: sssp_bf"), &d, &seq_dist)
                    }
                    (Workload::SsspDelta, KernelOutput::Distances(d)) => {
                        assert_f32_close(&format!("{tag}: sssp_delta"), &d, &seq_dist)
                    }
                    (Workload::PageRank, KernelOutput::Ranks(r)) => {
                        assert_f64_close(&format!("{tag}: pagerank"), &r, &seq_ranks, 1e-9)
                    }
                    (Workload::PageRankDp, KernelOutput::Ranks(r)) => {
                        // Push PageRank accumulates in f32.
                        assert_f64_close(&format!("{tag}: pagerank_dp"), &r, &seq_ranks, 1e-3)
                    }
                    (w, out) => panic!("{tag}: unexpected output {out:?} for {w}"),
                }
            }
        }
    }
}

#[test]
fn repeated_runs_on_the_reused_pool_are_deterministic() {
    let g = UniformRandom::new(350, 2_400).generate(11);
    let runner = KernelRunner::new(4).with_pagerank_iterations(6);
    // Deterministic kernels must produce identical outputs when the same
    // pool workers are reused across many invocations.
    for w in [
        Workload::Bfs,
        Workload::SsspBf,
        Workload::SsspDelta,
        Workload::PageRank,
        Workload::ConnComp,
        Workload::Community,
        Workload::TriangleCount,
    ] {
        let first = runner.run(w, &g).output;
        for round in 0..5 {
            assert_eq!(runner.run(w, &g).output, first, "{w}: round {round}");
        }
    }
}

#[test]
fn spawn_per_call_engine_matches_pool_engine() {
    let g = PowerLaw::new(400, 5).generate(2);
    let pooled = KernelRunner::new(4);
    let spawned = pooled.with_engine(ExecEngine::SpawnPerCall);
    for w in [Workload::Bfs, Workload::SsspBf, Workload::ConnComp] {
        assert_eq!(
            pooled.run(w, &g).output,
            spawned.run(w, &g).output,
            "{w}: engines disagree"
        );
    }
}
