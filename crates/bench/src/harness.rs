//! Shared experiment harness for the scheduler-comparison figures
//! (Figs. 11–15): per-combination tuned baselines, the trained HeteroMap
//! predictor, and the ideal.

use crate::{all_combos, geomean};
use heteromap::HeteroMap;
use heteromap_accel::cost::WorkloadContext;
use heteromap_accel::system::MultiAcceleratorSystem;
use heteromap_graph::datasets::Dataset;
use heteromap_model::mspace::MSpace;
use heteromap_model::{Accelerator, MConfig, Workload};
use heteromap_predict::{Autotuner, Objective};

/// Per-combination results of one scheduler comparison.
#[derive(Debug, Clone)]
pub struct ComboRow {
    /// The benchmark.
    pub workload: Workload,
    /// The input.
    pub dataset: Dataset,
    /// Best tuned GPU-only completion time (ms) or energy (J).
    pub gpu_only: f64,
    /// Best tuned multicore-only cost.
    pub multicore_only: f64,
    /// HeteroMap's cost (predictor overhead included).
    pub heteromap: f64,
    /// Ideal (exhaustively tuned over both machines) cost.
    pub ideal: f64,
    /// Accelerator HeteroMap selected.
    pub selected: Accelerator,
    /// Utilization HeteroMap achieved.
    pub utilization: f64,
    /// Best single-accelerator utilizations `(gpu, multicore)`.
    pub utilization_baselines: (f64, f64),
}

/// A full scheduler comparison over the 81 combinations.
#[derive(Debug, Clone)]
pub struct SchedulerComparison {
    /// Per-combination rows in workload-major order.
    pub rows: Vec<ComboRow>,
}

impl SchedulerComparison {
    /// Runs the comparison: trains a Deep.128 HeteroMap for `system` with
    /// `train_samples` synthetic combinations, then evaluates everything.
    pub fn run(
        system: &MultiAcceleratorSystem,
        objective: Objective,
        train_samples: usize,
        seed: u64,
    ) -> Self {
        let hm = HeteroMap::train_deep_for(system.clone(), train_samples, seed, objective);
        Self::run_with(system, objective, &hm)
    }

    /// Runs the comparison with an already-built HeteroMap instance.
    pub fn run_with(system: &MultiAcceleratorSystem, objective: Objective, hm: &HeteroMap) -> Self {
        let space = MSpace::new();
        let gpu_cfgs = space.enumerate_for(Accelerator::Gpu);
        let mc_cfgs = space.enumerate_for(Accelerator::Multicore);
        let cost = |ctx: &WorkloadContext, cfg: &MConfig| -> (f64, f64) {
            let r = system.deploy(ctx, cfg);
            let c = match objective {
                Objective::Performance => r.time_ms,
                Objective::Energy => r.energy_j,
            };
            (c, r.utilization)
        };
        let rows = all_combos()
            .into_iter()
            .map(|(workload, dataset)| {
                let ctx = WorkloadContext::for_workload(workload, dataset.stats());
                let best_over = |cfgs: &[MConfig]| -> (f64, f64) {
                    cfgs.iter()
                        .map(|c| cost(&ctx, c))
                        .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite costs"))
                        .expect("non-empty config list")
                };
                let (gpu_only, gpu_util) = best_over(&gpu_cfgs);
                let (multicore_only, mc_util) = best_over(&mc_cfgs);
                let ideal = Autotuner::exhaustive().tune(|c| cost(&ctx, c).0).cost;
                let placement = hm.schedule(workload, dataset);
                let heteromap = match objective {
                    Objective::Performance => placement.report.time_ms,
                    Objective::Energy => placement.report.energy_j,
                };
                ComboRow {
                    workload,
                    dataset,
                    gpu_only,
                    multicore_only,
                    heteromap,
                    ideal,
                    selected: placement.accelerator(),
                    utilization: placement.report.utilization,
                    utilization_baselines: (gpu_util, mc_util),
                }
            })
            .collect();
        SchedulerComparison { rows }
    }

    /// Geomean of a per-row metric.
    pub fn geomean_of<F: Fn(&ComboRow) -> f64>(&self, f: F) -> f64 {
        geomean(&self.rows.iter().map(f).collect::<Vec<_>>())
    }

    /// The headline speedups `(over_gpu_pct, over_multicore_pct,
    /// gap_from_ideal_pct)`.
    pub fn headline(&self) -> (f64, f64, f64) {
        let hm = self.geomean_of(|r| r.heteromap);
        let gpu = self.geomean_of(|r| r.gpu_only);
        let mc = self.geomean_of(|r| r.multicore_only);
        let ideal = self.geomean_of(|r| r.ideal);
        (
            (gpu / hm - 1.0) * 100.0,
            (mc / hm - 1.0) * 100.0,
            (hm / ideal - 1.0) * 100.0,
        )
    }

    /// Rows for one workload, in Table I dataset order.
    pub fn rows_for(&self, workload: Workload) -> Vec<&ComboRow> {
        self.rows
            .iter()
            .filter(|r| r.workload == workload)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteromap_predict::DecisionTree;

    #[test]
    fn comparison_covers_all_combinations() {
        // Decision tree avoids training cost in tests.
        let system = MultiAcceleratorSystem::primary();
        let hm = HeteroMap::new(system.clone(), Box::new(DecisionTree::paper()));
        let cmp = SchedulerComparison::run_with(&system, Objective::Performance, &hm);
        assert_eq!(cmp.rows.len(), 81);
        for r in &cmp.rows {
            assert!(r.ideal <= r.gpu_only + 1e-9);
            assert!(r.ideal <= r.multicore_only + 1e-9);
            assert!(r.heteromap > 0.0);
        }
        let (over_gpu, over_mc, gap) = cmp.headline();
        assert!(over_gpu.is_finite() && over_mc.is_finite());
        // The predictor can be worse than ideal but never absurdly so.
        assert!(gap > -1.0 && gap < 500.0, "gap {gap}");
    }
}
