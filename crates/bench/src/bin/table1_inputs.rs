//! Regenerates **Table I: Input Datasets** — the published statistics of the
//! nine evaluation graphs, plus a structural check of each scaled surrogate.

use heteromap_bench::TextTable;
use heteromap_graph::datasets::Dataset;

fn human(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2}B", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}K", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

fn main() {
    println!("Table I: Input Datasets (published full-scale statistics)\n");
    let mut t = TextTable::new(["Evaluation Data", "#V", "#E", "Max.Deg", "Diameter"]);
    for d in Dataset::all() {
        let s = d.stats();
        t.row([
            format!("{}({})", d.full_name(), d.abbrev()),
            human(s.vertices),
            human(s.edges),
            human(s.max_degree),
            s.diameter.to_string(),
        ]);
    }
    println!("{}", t.render());

    println!("Scaled structural surrogates (host-executable, ~2K vertices):\n");
    let mut t = TextTable::new(["Surrogate", "#V", "#E", "Max.Deg", "Diameter", "Avg.Deg"]);
    for d in Dataset::all() {
        let g = d.surrogate_graph(2_000, 7);
        let s = g.stats();
        t.row([
            d.abbrev().to_string(),
            s.vertices.to_string(),
            s.edges.to_string(),
            s.max_degree.to_string(),
            s.diameter.to_string(),
            format!("{:.1}", s.average_degree()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Surrogates preserve each dataset's *shape* (degree family, density\n\
         regime, diameter regime) for real kernel execution; the simulator\n\
         consumes the published statistics above (DESIGN.md §2)."
    );
}
