//! **Observability overhead**: the cost of the tracing subsystem at every
//! level, against a span-free baseline built from the same components.
//!
//! The flight recorder is designed to be deployable in production serving
//! processes, which only holds if the *disabled* instrumentation is free.
//! `HeteroMap::schedule_context` carries the pipeline spans
//! (schedule/ivector/predict/deploy) while the components it composes —
//! [`HeteroMap::ivector`], [`HeteroMap::predict_config`],
//! [`HeteroMap::deploy_predicted`] — are deliberately uninstrumented, so an
//! exact span-free baseline can be assembled from public API. This bench
//! sweeps all 81 (workload, dataset) combinations through both paths at
//! each trace level, takes the min-of-reps per variant (the stable floor),
//! and writes the overhead ratios to `BENCH_obs.json`:
//!
//! * `overhead_disabled` — spans compiled in but `HETEROMAP_TRACE=off`
//!   (one relaxed atomic load per span site); must stay within 1%;
//! * `overhead_spans` / `overhead_full` — the price of actually recording.
//!
//! The final full-trace sweep is exported as a chrome://tracing profile and
//! re-parsed through the crate's own JSON parser; the bench panics unless
//! every pipeline stage contributed at least one span (the CI smoke check).
//!
//! Pass `--quick` for a CI-sized run (fewer repetitions).

use heteromap::HeteroMap;
use heteromap_accel::cost::WorkloadContext;
use heteromap_bench::{all_combos, TextTable};
use heteromap_model::Workload;
use heteromap_obs::TraceLevel;
use std::time::Instant;

use heteromap_graph::GraphStats;

/// The four spans `schedule_context` emits, i.e. the pipeline stages the
/// exported trace must cover.
const PIPELINE_STAGES: [&str; 4] = ["schedule", "ivector", "predict", "deploy"];

/// One timed repetition: the full 81-combination sweep, `inner` times.
fn sweep_instrumented(hm: &HeteroMap, combos: &[(Workload, GraphStats)], inner: usize) -> f64 {
    let start = Instant::now();
    let mut sum = 0.0;
    for _ in 0..inner {
        for &(w, stats) in combos {
            let ctx = WorkloadContext::for_workload(w, stats);
            sum += hm.schedule_context(&ctx).report.time_ms;
        }
    }
    assert!(sum.is_finite() && sum > 0.0);
    start.elapsed().as_secs_f64() * 1e3
}

/// The span-free twin of [`sweep_instrumented`]: identical work (including
/// the timed predict step) assembled from the uninstrumented components.
fn sweep_baseline(hm: &HeteroMap, combos: &[(Workload, GraphStats)], inner: usize) -> f64 {
    let start = Instant::now();
    let mut sum = 0.0;
    for _ in 0..inner {
        for &(w, stats) in combos {
            let ctx = WorkloadContext::for_workload(w, stats);
            let i = hm.ivector(&ctx.stats);
            let predict_start = Instant::now();
            let (config, fallbacks) = hm.predict_config(&ctx.b, &i);
            let overhead_ms = predict_start.elapsed().as_secs_f64() * 1e3;
            sum += hm
                .deploy_predicted(&ctx, config, overhead_ms, fallbacks)
                .report
                .time_ms;
        }
    }
    assert!(sum.is_finite() && sum > 0.0);
    start.elapsed().as_secs_f64() * 1e3
}

/// Min of `reps` timed repetitions (the noise floor of the variant).
fn min_of_reps(reps: usize, mut rep: impl FnMut() -> f64) -> f64 {
    let _ = rep(); // warmup: caches, lazy statics, ring registration
    (0..reps).map(|_| rep()).fold(f64::INFINITY, f64::min)
}

/// Exports the chrome trace from the last full-trace sweep and checks —
/// through the crate's own parser — that it is valid JSON with at least
/// one complete-event span per pipeline stage.
fn export_and_check_trace() -> (std::path::PathBuf, usize) {
    let path = heteromap_obs::trace_file_path();
    let snap = heteromap_obs::write_chrome_trace(&path).expect("write chrome trace");
    let text = std::fs::read_to_string(&path).expect("re-read chrome trace");
    let doc = heteromap_obs::json::parse(&text).expect("trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("trace must carry a traceEvents array");
    for stage in PIPELINE_STAGES {
        let spans = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(|p| p.as_str()) == Some("X")
                    && e.get("name").and_then(|n| n.as_str()) == Some(stage)
            })
            .count();
        assert!(spans >= 1, "pipeline stage {stage:?} produced no spans");
    }
    println!("\nper-phase breakdown of the exported trace:");
    print!("{}", snap.phase_table());
    (path, snap.spans.len())
}

fn main() {
    let args = heteromap_bench::apply_obs_flags(std::env::args().skip(1));
    let quick = args.iter().any(|a| a == "--quick");
    // Each rep is `inner` full sweeps so the timed unit sits well above
    // clock granularity; min-of-reps then strips scheduler noise.
    let (reps, inner) = if quick { (15, 5) } else { (60, 20) };

    let combos: Vec<(Workload, GraphStats)> = all_combos()
        .into_iter()
        .map(|(w, d)| (w, d.stats()))
        .collect();
    let hm = HeteroMap::with_decision_tree();

    println!(
        "Observability overhead: {} combinations x {inner} sweeps/rep, \
         min of {reps} reps{}\n",
        combos.len(),
        if quick { " [quick]" } else { "" },
    );

    // The baseline never records, so the level during its measurement is
    // irrelevant — but keep it Off for symmetry with the disabled variant.
    heteromap_obs::set_level(TraceLevel::Off);
    let baseline_ms = min_of_reps(reps, || sweep_baseline(&hm, &combos, inner));

    let mut variant_ms = [0.0f64; 3];
    for (slot, level) in [TraceLevel::Off, TraceLevel::Spans, TraceLevel::Full]
        .into_iter()
        .enumerate()
    {
        heteromap_obs::set_level(level);
        heteromap_obs::reset();
        variant_ms[slot] = min_of_reps(reps, || sweep_instrumented(&hm, &combos, inner));
    }
    let [disabled_ms, spans_ms, full_ms] = variant_ms;

    // One final recorded sweep at Full so the exported trace reflects a
    // clean run rather than the tail of the timing loop.
    heteromap_obs::set_level(TraceLevel::Full);
    heteromap_obs::reset();
    let _ = sweep_instrumented(&hm, &combos, 1);
    let (trace_path, trace_spans) = export_and_check_trace();
    heteromap_obs::set_level(TraceLevel::Off);

    let overhead = |ms: f64| ms / baseline_ms - 1.0;
    let (overhead_disabled, overhead_spans, overhead_full) =
        (overhead(disabled_ms), overhead(spans_ms), overhead(full_ms));

    let mut table = TextTable::new(["variant", "min ms/rep", "overhead"]);
    table.row([
        "baseline (span-free)".into(),
        format!("{baseline_ms:.3}"),
        "-".to_string(),
    ]);
    for (tag, ms, ratio) in [
        ("disabled (off)", disabled_ms, overhead_disabled),
        ("spans", spans_ms, overhead_spans),
        ("full", full_ms, overhead_full),
    ] {
        table.row([
            tag.to_string(),
            format!("{ms:.3}"),
            format!("{:+.2}%", ratio * 100.0),
        ]);
    }
    println!("\n{}", table.render());
    if overhead_disabled > 0.01 {
        println!(
            "WARNING: disabled-instrumentation overhead {:.2}% exceeds the 1% budget",
            overhead_disabled * 100.0
        );
    }

    // The workspace has no serde_json (offline vendoring); the artifact
    // goes through the shared heteromap-obs JSON writer.
    use heteromap_obs::json::{escape, num};
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"obs_overhead\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    json.push_str(&format!("  \"combinations\": {},\n", combos.len()));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!("  \"trials\": {reps},\n"));
    json.push_str(&format!("  \"sweeps_per_rep\": {inner},\n"));
    json.push_str(&format!("  \"baseline_ms\": {},\n", num(baseline_ms)));
    json.push_str(&format!("  \"disabled_ms\": {},\n", num(disabled_ms)));
    json.push_str(&format!("  \"spans_ms\": {},\n", num(spans_ms)));
    json.push_str(&format!("  \"full_ms\": {},\n", num(full_ms)));
    json.push_str(&format!(
        "  \"overhead_disabled\": {},\n",
        num(overhead_disabled)
    ));
    json.push_str(&format!("  \"overhead_spans\": {},\n", num(overhead_spans)));
    json.push_str(&format!("  \"overhead_full\": {},\n", num(overhead_full)));
    json.push_str(&format!("  \"trace_spans\": {trace_spans},\n"));
    json.push_str(&format!(
        "  \"trace_file\": {}\n",
        escape(&trace_path.display().to_string())
    ));
    json.push_str("}\n");
    heteromap_obs::json::parse(&json).expect("artifact must be valid JSON");
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    println!(
        "wrote BENCH_obs.json and {} ({trace_spans} spans)",
        trace_path.display()
    );
}
