//! Regenerates **Table II: Primary Accelerator Configuration** (plus the
//! §VI-A secondary accelerators).

use heteromap_accel::AcceleratorSpec;
use heteromap_bench::TextTable;

fn main() {
    println!("Table II: Accelerator Configurations\n");
    let specs = [
        AcceleratorSpec::gtx_750ti(),
        AcceleratorSpec::xeon_phi_7120p(),
        AcceleratorSpec::gtx_970(),
        AcceleratorSpec::cpu_40core(),
    ];
    let mut t = TextTable::new([
        "",
        "Cores",
        "Threads",
        "Freq(GHz)",
        "Cache(MB)",
        "Coherent",
        "Mem(GB)",
        "BW(GB/s)",
        "SP(TF)",
        "DP(TF)",
        "TDP(W)",
    ]);
    for s in &specs {
        t.row([
            s.name.to_string(),
            s.cores.to_string(),
            s.hw_threads().to_string(),
            format!("{:.2}", s.freq_ghz),
            format!("{:.1}", s.cache_mb),
            if s.coherent { "Yes" } else { "No" }.to_string(),
            format!("{:.0}", s.mem_gb),
            format!("{:.0}", s.mem_bw_gbs),
            format!("{:.2}", s.sp_tflops),
            format!("{:.2}", s.dp_tflops),
            format!("{:.0}", s.tdp_w),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Primary pair: GTX-750Ti + Xeon Phi 7120P, memories pinned to the\n\
         smaller capacity (2 GB) as in the paper; the GTX-970 and 40-core\n\
         CPU form the §VII-D secondary pairs."
    );
}
