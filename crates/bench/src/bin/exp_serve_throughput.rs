//! **Serving throughput**: the prediction-serving engine's cached and
//! batched paths vs the uncached per-request baseline.
//!
//! A long-running serving process answers repeated `(B, I)` queries; the
//! paper's 0.1-increment grid makes that key space finite, so a placement
//! cache converts most requests from a neural forward pass into a hash
//! lookup plus the deterministic analytic deploy. This experiment serves a
//! mixed stream over every (workload, dataset) combination — with repeats,
//! so the cache warms like a real deployment — across serving modes and
//! thread counts, and reports requests/second, the cached-vs-uncached
//! speedup, hit rates and latency percentiles. Results are written to
//! `BENCH_serve.json`.
//!
//! Pass `--quick` for a CI-sized run (fewer repeats, one thread count).

use heteromap::HeteroMap;
use heteromap_accel::system::MultiAcceleratorSystem;
use heteromap_bench::{all_combos, TextTable};
use heteromap_graph::GraphStats;
use heteromap_model::Workload;
use heteromap_predict::nn::TrainConfig;
use heteromap_predict::persist::{read_model, write_model, PersistedModel};
use heteromap_predict::predictor::Objective;
use heteromap_predict::{NeuralPredictor, Trainer};
use heteromap_serve::{ServeConfig, ServeEngine, ServeMode};

struct Row {
    mode: ServeMode,
    threads: usize,
    throughput_rps: f64,
    hit_rate: f64,
    mean_batch: f64,
    p50_ms: f64,
    p99_ms: f64,
}

fn mode_tag(mode: ServeMode) -> &'static str {
    match mode {
        ServeMode::Uncached => "uncached",
        ServeMode::Cached => "cached",
        ServeMode::CachedBatched => "cached+batched",
    }
}

/// Serves the stream on a fresh engine and returns the measured row.
fn run_mode(
    model: impl Fn() -> HeteroMap,
    mode: ServeMode,
    requests: &[(Workload, GraphStats)],
    threads: usize,
) -> Row {
    let engine = ServeEngine::new(model(), ServeConfig::with_mode(mode));
    let report = engine.run_closed_loop(requests, threads);
    let snap = engine.metrics().snapshot();
    Row {
        mode,
        threads,
        throughput_rps: report.throughput_rps,
        hit_rate: if snap.cache_hit_rate.is_nan() {
            0.0
        } else {
            snap.cache_hit_rate
        },
        mean_batch: if snap.mean_batch_size.is_nan() {
            0.0
        } else {
            snap.mean_batch_size
        },
        p50_ms: snap.schedule_p50_ms,
        p99_ms: snap.schedule_p99_ms,
    }
}

fn main() {
    let args = heteromap_bench::apply_obs_flags(std::env::args().skip(1));
    let quick = args.iter().any(|a| a == "--quick");
    let repeats = if quick { 4 } else { 24 };
    let thread_counts: &[usize] = if quick { &[4] } else { &[1, 4, 16] };

    // The mixed 81-combination stream: every (workload, dataset) pair,
    // interleaved, repeated so the cache warms like a real serving process.
    let combos: Vec<(Workload, GraphStats)> = all_combos()
        .into_iter()
        .map(|(w, d)| (w, d.stats()))
        .collect();
    let requests: Vec<(Workload, GraphStats)> = (0..combos.len() * repeats)
        .map(|idx| combos[(idx * 7) % combos.len()])
        .collect();

    // One offline training run; every engine reloads the same persisted
    // weights, so the comparison isolates the serving path.
    println!("training Deep.128 once (shared across modes)...");
    let system = MultiAcceleratorSystem::primary();
    let trainer = Trainer::new(system.clone()).with_objective(Objective::Performance);
    let db = trainer.generate_database(if quick { 60 } else { 300 }, 42);
    let nn = NeuralPredictor::train(
        &db,
        TrainConfig {
            hidden: 128,
            seed: 42,
            ..TrainConfig::default()
        },
    );
    let mut weights = Vec::new();
    write_model(&PersistedModel::Nn(nn), &mut weights).expect("serialize trained model");
    let model = || {
        let PersistedModel::Nn(nn) = read_model(weights.as_slice()).expect("reload trained model")
        else {
            panic!("expected a neural model");
        };
        HeteroMap::new(system.clone(), Box::new(nn))
    };

    println!(
        "serving {} requests over {} combinations ({} repeats){}\n",
        requests.len(),
        combos.len(),
        repeats,
        if quick { " [quick]" } else { "" },
    );

    let mut rows: Vec<Row> = Vec::new();
    for &threads in thread_counts {
        for mode in [
            ServeMode::Uncached,
            ServeMode::Cached,
            ServeMode::CachedBatched,
        ] {
            let row = run_mode(model, mode, &requests, threads);
            println!(
                "{:>14} x{:<2} {:>12.0} req/s  hit {:>5.1}%  p50 {:.4} ms  p99 {:.4} ms",
                mode_tag(row.mode),
                row.threads,
                row.throughput_rps,
                row.hit_rate * 100.0,
                row.p50_ms,
                row.p99_ms,
            );
            rows.push(row);
        }
    }

    let mut table = TextTable::new([
        "mode",
        "threads",
        "req/s",
        "hit rate",
        "mean batch",
        "p50 ms",
        "p99 ms",
        "vs uncached",
    ]);
    let mut speedups: Vec<(usize, &'static str, f64)> = Vec::new();
    for r in &rows {
        let baseline = rows
            .iter()
            .find(|b| b.threads == r.threads && b.mode == ServeMode::Uncached)
            .expect("uncached baseline per thread count");
        let speedup = r.throughput_rps / baseline.throughput_rps;
        if r.mode != ServeMode::Uncached {
            speedups.push((r.threads, mode_tag(r.mode), speedup));
        }
        table.row([
            mode_tag(r.mode).to_string(),
            r.threads.to_string(),
            format!("{:.0}", r.throughput_rps),
            format!("{:.1}%", r.hit_rate * 100.0),
            format!("{:.1}", r.mean_batch),
            format!("{:.4}", r.p50_ms),
            format!("{:.4}", r.p99_ms),
            format!("{speedup:.2}x"),
        ]);
    }
    println!("\n{}", table.render());

    let best_cached = speedups.iter().map(|(_, _, s)| *s).fold(0.0f64, f64::max);
    println!("best cached-vs-uncached throughput speedup: {best_cached:.2}x");
    if best_cached < 5.0 {
        // The acceptance bar for the serving subsystem; don't fail the
        // bench (CI machines vary), but flag it loudly.
        println!("WARNING: below the 5x serving-speedup target");
    }

    // No serde_json in the offline workspace; string fields go through the
    // shared heteromap-obs JSON writer.
    use heteromap_obs::json::escape;
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"serve_throughput\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"requests\": {},\n", requests.len()));
    json.push_str(&format!("  \"combinations\": {},\n", combos.len()));
    json.push_str(&format!("  \"repeats\": {repeats},\n"));
    json.push_str(&format!("  \"best_cached_speedup\": {best_cached:.4},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": {}, \"threads\": {}, \"throughput_rps\": {:.2}, \
             \"hit_rate\": {:.4}, \"mean_batch_size\": {:.2}, \
             \"p50_ms\": {:.6}, \"p99_ms\": {:.6}}}{}\n",
            escape(mode_tag(r.mode)),
            r.threads,
            r.throughput_rps,
            r.hit_rate,
            r.mean_batch,
            r.p50_ms,
            r.p99_ms,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json ({} result rows)", rows.len());
}
