//! **Serving throughput**: the prediction-serving engine's cached and
//! batched paths vs the uncached per-request baseline.
//!
//! A long-running serving process answers repeated `(B, I)` queries; the
//! paper's 0.1-increment grid makes that key space finite, so a placement
//! cache converts most requests from a neural forward pass into a hash
//! lookup plus the deterministic analytic deploy. This experiment serves a
//! mixed stream over every (workload, dataset) combination — with repeats,
//! so the cache warms like a real deployment — across serving modes and
//! thread counts, and reports requests/second, the cached-vs-uncached
//! speedup, hit rates and latency percentiles. Results are written to
//! `BENCH_serve.json`.
//!
//! Two reduced profiles exist for CI:
//!
//! - `--smoke`: fewer repeats but the **full** {1, 4, 16} thread sweep, so
//!   the structural acceptance gate below still covers every thread count.
//! - `--quick`: legacy minimal profile (one thread count), kept for local
//!   iteration.
//!
//! **Hard gate (every run, every thread count):** `cached+batched` must
//! stay within 5% of `cached` — batching sits on top of the cache, so any
//! regression means the assembly path is burning time on the hit path. The
//! process exits non-zero on violation. Wall-clock *scaling* targets
//! (uncached 16t ≥ 4× 1t, cached ≥ 1M req/s at 16t) are physical claims
//! about parallel hardware and are only asserted when the host actually
//! has the cores (`available_parallelism() ≥ 16`); otherwise they are
//! reported but not enforced.

use heteromap::HeteroMap;
use heteromap_accel::system::MultiAcceleratorSystem;
use heteromap_bench::{all_combos, TextTable};
use heteromap_graph::GraphStats;
use heteromap_model::Workload;
use heteromap_predict::nn::TrainConfig;
use heteromap_predict::persist::{read_model, write_model, PersistedModel};
use heteromap_predict::predictor::Objective;
use heteromap_predict::{NeuralPredictor, Trainer};
use heteromap_serve::{ServeConfig, ServeEngine, ServeMode, ServeSource};

struct Row {
    mode: ServeMode,
    threads: usize,
    throughput_rps: f64,
    hit_rate: f64,
    mean_batch: f64,
    p50_ms: f64,
    p99_ms: f64,
}

fn mode_tag(mode: ServeMode) -> &'static str {
    match mode {
        ServeMode::Uncached => "uncached",
        ServeMode::Cached => "cached",
        ServeMode::CachedBatched => "cached+batched",
    }
}

/// Serves the stream on a fresh engine `trials` times and returns the
/// best-throughput row. One pass over the stream is only a few
/// milliseconds of serving, so a single OS-scheduler hiccup can swing a
/// lone measurement by ±10%; best-of-N makes the mode-vs-mode ratios
/// reflect the code, not the timeslice lottery.
fn run_mode(
    model: impl Fn() -> HeteroMap,
    mode: ServeMode,
    requests: &[(Workload, GraphStats)],
    threads: usize,
    trials: usize,
) -> Row {
    let mut best: Option<Row> = None;
    for _ in 0..trials {
        let engine = ServeEngine::new(model(), ServeConfig::with_mode(mode));
        let report = engine.run_closed_loop(requests, threads);
        let snap = engine.metrics().snapshot();
        let row = Row {
            mode,
            threads,
            throughput_rps: report.throughput_rps,
            hit_rate: if snap.cache_hit_rate.is_nan() {
                0.0
            } else {
                snap.cache_hit_rate
            },
            mean_batch: if snap.mean_batch_size.is_nan() {
                0.0
            } else {
                snap.mean_batch_size
            },
            p50_ms: snap.schedule_p50_ms,
            p99_ms: snap.schedule_p99_ms,
        };
        if best
            .as_ref()
            .is_none_or(|b| row.throughput_rps > b.throughput_rps)
        {
            best = Some(row);
        }
    }
    best.expect("at least one trial")
}

/// Measures the steady-state allocation count of one full warm pass on a
/// cached engine via the obs counting-allocator probe. `None` when the
/// probe feature is compiled out.
fn measure_steady_state_allocs(
    model: impl Fn() -> HeteroMap,
    requests: &[(Workload, GraphStats)],
) -> Option<u64> {
    if !heteromap_obs::probe_enabled() {
        return None;
    }
    let engine = ServeEngine::new(model(), ServeConfig::with_mode(ServeMode::Cached));
    // Two warm passes: populate the cache and grow every lazy buffer.
    for _ in 0..2 {
        for &(w, stats) in requests {
            engine.schedule_stats(w, stats);
        }
    }
    let before = heteromap_obs::thread_alloc_count();
    for &(w, stats) in requests {
        let served = engine.schedule_stats(w, stats);
        assert_eq!(served.source, ServeSource::CacheHit, "warm pass must hit");
    }
    let after = heteromap_obs::thread_alloc_count();
    Some(after - before)
}

fn main() {
    let args = heteromap_bench::apply_obs_flags(std::env::args().skip(1));
    let smoke = args.iter().any(|a| a == "--smoke");
    let quick = args.iter().any(|a| a == "--quick");
    // Serving a pass takes milliseconds even at the largest size (training
    // dominates wall time, which is why --smoke/--quick shrink the training
    // database, not the stream). The stream must be long enough that
    // per-trial constants — 16 thread spawns, cold TLS scratch — don't
    // drown the steady-state signal the hard gates measure, so every
    // profile serves the full-length stream.
    let repeats = 192;
    // --smoke keeps the full thread sweep: the batched-vs-cached gate must
    // hold at every thread count, so CI has to actually run them all.
    let thread_counts: &[usize] = if quick { &[4] } else { &[1, 4, 16] };
    let trials = 7;
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    // The mixed 81-combination stream: every (workload, dataset) pair,
    // interleaved, repeated so the cache warms like a real serving process.
    let combos: Vec<(Workload, GraphStats)> = all_combos()
        .into_iter()
        .map(|(w, d)| (w, d.stats()))
        .collect();
    let requests: Vec<(Workload, GraphStats)> = (0..combos.len() * repeats)
        .map(|idx| combos[(idx * 7) % combos.len()])
        .collect();

    // One offline training run; every engine reloads the same persisted
    // weights, so the comparison isolates the serving path.
    println!("training Deep.128 once (shared across modes)...");
    let system = MultiAcceleratorSystem::primary();
    let trainer = Trainer::new(system.clone()).with_objective(Objective::Performance);
    let db = trainer.generate_database(if smoke || quick { 60 } else { 300 }, 42);
    let nn = NeuralPredictor::train(
        &db,
        TrainConfig {
            hidden: 128,
            seed: 42,
            ..TrainConfig::default()
        },
    );
    let mut weights = Vec::new();
    write_model(&PersistedModel::Nn(nn), &mut weights).expect("serialize trained model");
    let model = || {
        let PersistedModel::Nn(nn) = read_model(weights.as_slice()).expect("reload trained model")
        else {
            panic!("expected a neural model");
        };
        HeteroMap::new(system.clone(), Box::new(nn))
    };

    println!(
        "serving {} requests over {} combinations ({} repeats, best of {} trials, {} host cpus){}\n",
        requests.len(),
        combos.len(),
        repeats,
        trials,
        host_cpus,
        if smoke {
            " [smoke]"
        } else if quick {
            " [quick]"
        } else {
            ""
        },
    );

    let mut rows: Vec<Row> = Vec::new();
    for &threads in thread_counts {
        for mode in [
            ServeMode::Uncached,
            ServeMode::Cached,
            ServeMode::CachedBatched,
        ] {
            let row = run_mode(model, mode, &requests, threads, trials);
            println!(
                "{:>14} x{:<2} {:>12.0} req/s  hit {:>5.1}%  p50 {:.6} ms  p99 {:.6} ms",
                mode_tag(row.mode),
                row.threads,
                row.throughput_rps,
                row.hit_rate * 100.0,
                row.p50_ms,
                row.p99_ms,
            );
            rows.push(row);
        }
    }

    let mut table = TextTable::new([
        "mode",
        "threads",
        "req/s",
        "hit rate",
        "mean batch",
        "p50 ms",
        "p99 ms",
        "vs uncached",
    ]);
    let mut speedups: Vec<(usize, &'static str, f64)> = Vec::new();
    for r in &rows {
        let baseline = rows
            .iter()
            .find(|b| b.threads == r.threads && b.mode == ServeMode::Uncached)
            .expect("uncached baseline per thread count");
        let speedup = r.throughput_rps / baseline.throughput_rps;
        if r.mode != ServeMode::Uncached {
            speedups.push((r.threads, mode_tag(r.mode), speedup));
        }
        table.row([
            mode_tag(r.mode).to_string(),
            r.threads.to_string(),
            format!("{:.0}", r.throughput_rps),
            format!("{:.1}%", r.hit_rate * 100.0),
            format!("{:.1}", r.mean_batch),
            format!("{:.6}", r.p50_ms),
            format!("{:.6}", r.p99_ms),
            format!("{speedup:.2}x"),
        ]);
    }
    println!("\n{}", table.render());

    let best_cached = speedups.iter().map(|(_, _, s)| *s).fold(0.0f64, f64::max);
    println!("best cached-vs-uncached throughput speedup: {best_cached:.2}x");
    if best_cached < 5.0 {
        // The acceptance bar for the serving subsystem; don't fail the
        // bench (CI machines vary), but flag it loudly.
        println!("WARNING: below the 5x serving-speedup target");
    }

    // ---- Hard gate: batching must never cost the hit path. This is a
    // structural property of the sharded assembly design (the cache is
    // checked before any batching machinery engages), so it holds on any
    // host at any thread count and failures exit non-zero.
    let mut gate_failed = false;
    for &threads in thread_counts {
        let find = |mode| {
            rows.iter()
                .find(|r| r.threads == threads && r.mode == mode)
                .expect("row per (mode, threads)")
        };
        let cached = find(ServeMode::Cached);
        let batched = find(ServeMode::CachedBatched);
        let ratio = batched.throughput_rps / cached.throughput_rps;
        let ok = batched.throughput_rps >= 0.95 * cached.throughput_rps;
        println!(
            "gate x{threads:<2} cached+batched/cached = {ratio:.3} (>= 0.95) {}",
            if ok { "PASS" } else { "FAIL" }
        );
        gate_failed |= !ok;
    }

    // ---- Scaling targets: only enforceable when the host has the cores.
    let has_1_and_16 = thread_counts.contains(&1) && thread_counts.contains(&16);
    let mut uncached_scaling_16t = f64::NAN;
    let mut cached_rps_16t = f64::NAN;
    if has_1_and_16 {
        let rps = |mode, threads| {
            rows.iter()
                .find(|r| r.threads == threads && r.mode == mode)
                .map_or(f64::NAN, |r| r.throughput_rps)
        };
        uncached_scaling_16t = rps(ServeMode::Uncached, 16) / rps(ServeMode::Uncached, 1);
        cached_rps_16t = rps(ServeMode::Cached, 16);
        let enforce = host_cpus >= 16;
        println!(
            "scaling: uncached 16t/1t = {uncached_scaling_16t:.2}x (target >= 4x), \
             cached 16t = {cached_rps_16t:.0} req/s (target >= 1M) [{}]",
            if enforce {
                "enforced"
            } else {
                "reported only: host lacks 16 cores"
            }
        );
        if enforce {
            gate_failed |= uncached_scaling_16t < 4.0;
            gate_failed |= cached_rps_16t < 1_000_000.0;
        }
    }

    // ---- Zero-allocation steady state, measured with the counting
    // allocator the bench crate compiles in via the obs `alloc-probe`
    // feature. Any allocation on the warm hit path is a regression.
    let steady_allocs = measure_steady_state_allocs(model, &requests);
    match steady_allocs {
        Some(n) => {
            println!(
                "steady-state allocations over {} warm requests: {n}",
                requests.len()
            );
            if n != 0 {
                println!("FAIL: warm cached serving touched the heap {n} times");
                gate_failed = true;
            }
        }
        None => println!("alloc probe compiled out; steady-state allocation check skipped"),
    }

    // No serde_json in the offline workspace; string fields go through the
    // shared heteromap-obs JSON writer.
    use heteromap_obs::json::escape;
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"serve_throughput\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str(&format!("  \"requests\": {},\n", requests.len()));
    json.push_str(&format!("  \"combinations\": {},\n", combos.len()));
    json.push_str(&format!("  \"repeats\": {repeats},\n"));
    json.push_str(&format!("  \"trials\": {trials},\n"));
    json.push_str(&format!("  \"best_cached_speedup\": {best_cached:.4},\n"));
    match steady_allocs {
        Some(n) => json.push_str(&format!("  \"steady_state_allocs\": {n},\n")),
        None => json.push_str("  \"steady_state_allocs\": null,\n"),
    }
    if uncached_scaling_16t.is_finite() {
        json.push_str(&format!(
            "  \"uncached_scaling_16t\": {uncached_scaling_16t:.4},\n"
        ));
    }
    if cached_rps_16t.is_finite() {
        json.push_str(&format!("  \"cached_rps_16t\": {cached_rps_16t:.2},\n"));
    }
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": {}, \"threads\": {}, \"throughput_rps\": {:.2}, \
             \"hit_rate\": {:.4}, \"mean_batch_size\": {:.2}, \
             \"p50_ms\": {:.6}, \"p99_ms\": {:.6}, \
             \"p50_ns\": {:.0}, \"p99_ns\": {:.0}}}{}\n",
            escape(mode_tag(r.mode)),
            r.threads,
            r.throughput_rps,
            r.hit_rate,
            r.mean_batch,
            r.p50_ms,
            r.p99_ms,
            r.p50_ms * 1e6,
            r.p99_ms * 1e6,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json ({} result rows)", rows.len());

    if gate_failed {
        eprintln!("SERVE GATE FAILED: see FAIL lines above");
        std::process::exit(1);
    }
}
