//! Ablation: discretization grid resolution. The paper uses 0.1 increments
//! and notes "finer increments may be applied, however we keep the model
//! simple" — this sweep quantifies what finer grids buy the decision tree.

use heteromap_accel::system::MultiAcceleratorSystem;
use heteromap_bench::TextTable;
use heteromap_model::Grid;
use heteromap_predict::{DecisionTree, Evaluator, Objective};

fn main() {
    let evaluator = Evaluator::new(MultiAcceleratorSystem::primary(), Objective::Performance);
    println!("Ablation: discretization grid (paper default: 10 steps = 0.1)\n");
    let mut t = TextTable::new([
        "grid steps",
        "SpeedUp vs GPU(%)",
        "Accuracy(%)",
        "Gap vs ideal(%)",
    ]);
    for steps in [2u32, 5, 10, 20, 50, 100] {
        let mut tree = DecisionTree::paper();
        tree.grid = Grid::new(steps);
        let r = evaluator.evaluate(&tree);
        t.row([
            steps.to_string(),
            format!("{:.1}", r.speedup_over_gpu_pct),
            format!("{:.1}", r.accuracy_pct),
            format!("{:.1}", r.gap_from_ideal_pct),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Note: accuracy compares integer choices on the paper's 0.1 grid, so\n\
         coarser prediction grids lose resolution against the ideal."
    );
}
