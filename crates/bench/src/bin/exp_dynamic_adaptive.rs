//! **Dynamic-graph adaptive acceptance**: a densifying trace driven
//! through `heteromap-dyngraph`'s phase loop, hard-gating that mid-run
//! re-prediction + live migration beats a static one-shot deployment.
//!
//! The trace has two injected phase changes over a LabelProp workload:
//!
//! 1. **Densification** — hub-attachment batches push the average degree
//!    past the decision tree's density refinement (`avg_deg > 5.76`) and
//!    collapse the path skeleton's diameter, so the quantized `I4` (and
//!    the frontier-density drift detector) force a re-prediction that
//!    migrates GPU → multicore. The dense FP-heavy phase is exactly where
//!    the GTX 750 Ti pays its double-precision penalty and misses its 2 MB
//!    L2, while the working set still fits the Phi's aggregate cache.
//! 2. **Mega-hub formation** — single-hub batches spike the maximum
//!    degree, moving the quantized `I3` and the per-worker utilization
//!    signal (degree-skew starves the unlucky lane), forcing a second
//!    re-prediction within the burst window.
//!
//! Hard gates (process exits non-zero):
//!
//! * adaptive **strictly beats** static makespan (§V-A overheads charged);
//! * **100%** of injected phase changes are detected (a re-prediction
//!   fires inside each burst window);
//! * **zero** re-predictions in calm phases (constant statistics must
//!   keep the detectors quiet);
//! * the run actually flips accelerators (GPU first epoch, multicore
//!   last) — the makespan gate must not pass vacuously;
//! * run digests are **bit-identical** at 1, 4 and 16 host threads, for
//!   the adaptive and the static mode alike;
//! * the re-prediction/migration events are visible in `obs::metrics`
//!   (`dyn_repredictions_total` / `dyn_migrations_total`, the series the
//!   Prometheus golden test freezes).
//!
//! Writes `BENCH_dyn.json`. Pass `--smoke` for the CI-sized run.

use heteromap::HeteroMap;
use heteromap_dyngraph::{DeltaBatch, DynGraph, DynRunReport, DynRunner, DynRunnerConfig};
use heteromap_graph::datasets::LiteratureMaxima;
use heteromap_graph::gen::Densifying;
use heteromap_model::Workload;
use heteromap_obs::json::{self, num};
use heteromap_obs::metrics::drift::{Direction, DriftConfig};
use heteromap_obs::metrics::{global, prometheus_text, SeriesValue};

/// Thread budgets every digest must agree across.
const THREADS: [usize; 3] = [1, 4, 16];
/// Seed for the densification batches.
const DENSIFY_SEED: u64 = 23;
/// Seed for the mega-hub batches (decorrelated from densification).
const HUB_SEED: u64 = 61;

/// Trace geometry: calm / densify-burst / calm / hub-burst / calm.
struct TraceSpec {
    vertices: usize,
    calm: usize,
    densify_batches: usize,
    densify_edges: usize,
    hub_batches: usize,
    hub_edges: usize,
    /// Epochs past a burst's end still credited to it (a drift raise on a
    /// burst's last epoch is consumed one epoch later).
    slack: usize,
    kernel_iterations: u32,
}

impl TraceSpec {
    fn new(smoke: bool) -> Self {
        if smoke {
            TraceSpec {
                vertices: 16_000,
                calm: 3,
                densify_batches: 4,
                densify_edges: 45_000,
                hub_batches: 2,
                hub_edges: 6_000,
                slack: 2,
                kernel_iterations: 2,
            }
        } else {
            TraceSpec {
                vertices: 32_000,
                calm: 4,
                densify_batches: 5,
                densify_edges: 80_000,
                hub_batches: 3,
                hub_edges: 9_000,
                slack: 2,
                kernel_iterations: 3,
            }
        }
    }

    /// Calm epochs after the last burst: twice the inter-phase calm, so
    /// the dense steady state — where the migrated placement earns back
    /// its overhead — dominates the makespan comparison.
    fn tail(&self) -> usize {
        2 * self.calm
    }

    fn epochs(&self) -> usize {
        2 * self.calm + self.tail() + self.densify_batches + self.hub_batches
    }

    /// `[start, end)` epoch windows of the two injected phase changes.
    fn burst_windows(&self) -> [(usize, usize); 2] {
        let b1 = self.calm;
        let b2 = self.calm + self.densify_batches + self.calm;
        [
            (b1, b1 + self.densify_batches + self.slack),
            (b2, b2 + self.hub_batches + self.slack),
        ]
    }
}

/// The initial (sparse path skeleton) graph plus the delta trace.
fn build_trace(spec: &TraceSpec) -> (DynGraph, Vec<DeltaBatch>) {
    let densify = Densifying::new(spec.vertices, spec.densify_batches + 1, spec.densify_edges);
    let hubs =
        Densifying::new(spec.vertices, spec.hub_batches + 1, spec.hub_edges).with_hub_pool(1);

    let mut graph = DynGraph::new(spec.vertices);
    graph.apply(&DeltaBatch::from_edges(&densify.batch(DENSIFY_SEED, 0)));

    let calm = |trace: &mut Vec<DeltaBatch>| {
        for _ in 0..spec.calm {
            trace.push(DeltaBatch::new());
        }
    };
    let mut trace = Vec::with_capacity(spec.epochs());
    calm(&mut trace);
    for i in 1..=spec.densify_batches {
        trace.push(DeltaBatch::from_edges(&densify.batch(DENSIFY_SEED, i)));
    }
    calm(&mut trace);
    for i in 1..=spec.hub_batches {
        trace.push(DeltaBatch::from_edges(&hubs.batch(HUB_SEED, i)));
    }
    for _ in 0..spec.tail() {
        trace.push(DeltaBatch::new());
    }
    (graph, trace)
}

/// Bench-local maxima scaled to the trace (the library defaults are the
/// paper's Table I maxima, under which this trace's quantized I-variables
/// would all sit at 0.0): vertex and edge headroom keep `I1 < 0.5` and
/// `I2 < 0.8` (the tree's GPU overrides), while the diameter and
/// max-degree maxima are pinned to the trace's own extremes so `I4`
/// swings on densification and `I3` on hub formation.
fn trace_maxima(spec: &TraceSpec) -> (LiteratureMaxima, DynGraph, Vec<DeltaBatch>) {
    let (initial, trace) = build_trace(spec);
    let initial_stats = initial.stats();
    let mut shadow = initial.clone();
    for batch in &trace {
        shadow.apply(batch);
    }
    let final_stats = shadow.stats();
    let maxima = LiteratureMaxima {
        vertices: 8 * spec.vertices as u64,
        edges: 64 * final_stats.edges,
        max_degree: 2 * final_stats.max_degree,
        diameter: initial_stats.diameter,
    };
    (maxima, initial, trace)
}

/// Detector tuning scaled to this trace's signals. The frontier-density
/// series lives at O(10) with O(5) burst jumps, so the band floor is 1.0:
/// far above calm-phase noise (exactly 0 — calm epochs mutate nothing),
/// far below a densification jump. The utilization series lives in
/// [0, 1] with ~0.2 hub-skew drops, so its floor is 0.1.
fn runner_config(spec: &TraceSpec, threads: usize, adaptive: bool) -> DynRunnerConfig {
    DynRunnerConfig {
        threads,
        kernel_iterations: spec.kernel_iterations,
        adaptive,
        frontier_drift: DriftConfig {
            min_band: 1.0,
            ph_delta: 0.25,
            ph_lambda: 2.0,
            ..DriftConfig::upward()
        },
        utilization_drift: DriftConfig {
            min_band: 0.1,
            ph_delta: 0.05,
            ph_lambda: 0.5,
            direction: Direction::Down,
            ..DriftConfig::downward()
        },
        ..DynRunnerConfig::default()
    }
}

/// Sum of a counter's values across all label sets of `name`.
fn counter_total(name: &str) -> u64 {
    global()
        .snapshot()
        .into_iter()
        .filter(|s| s.name == name)
        .map(|s| match s.value {
            SeriesValue::Counter(v) => v,
            _ => 0,
        })
        .sum()
}

fn main() {
    let args = heteromap_bench::apply_obs_flags(std::env::args().skip(1));
    let smoke = args.iter().any(|a| a == "--smoke");
    let spec = TraceSpec::new(smoke);
    let (maxima, initial, trace) = trace_maxima(&spec);
    let windows = spec.burst_windows();
    let hm = HeteroMap::with_decision_tree().with_maxima(maxima);

    println!(
        "Dynamic adaptive acceptance: {} vertices, {} epochs \
         (bursts at {:?}), LabelProp x{} sweeps{}\n",
        spec.vertices,
        trace.len(),
        windows,
        spec.kernel_iterations,
        if smoke { " [smoke]" } else { "" },
    );

    // Run the matrix with metrics enabled so the re-prediction/migration
    // events land on the global hub (gated recorders, same counters the
    // golden exposition test freezes).
    heteromap_obs::set_metrics_enabled(true);
    let repred_before = counter_total("dyn_repredictions_total");
    let migr_before = counter_total("dyn_migrations_total");
    let run = |threads: usize, adaptive: bool| -> DynRunReport {
        let mut graph = initial.clone();
        DynRunner::new(&hm, Workload::LabelProp)
            .with_config(runner_config(&spec, threads, adaptive))
            .run(&mut graph, &trace)
    };
    let adaptive_runs: Vec<DynRunReport> = THREADS.iter().map(|&t| run(t, true)).collect();
    let static_runs: Vec<DynRunReport> = THREADS.iter().map(|&t| run(t, false)).collect();
    heteromap_obs::set_metrics_enabled(false);
    let repred_delta = counter_total("dyn_repredictions_total") - repred_before;
    let migr_delta = counter_total("dyn_migrations_total") - migr_before;

    let adaptive = &adaptive_runs[0];
    let static_ = &static_runs[0];

    // ---- Per-epoch picture (reference run) ---------------------------
    let mut table = heteromap_bench::TextTable::new([
        "epoch", "edges", "avg_deg", "max_deg", "diam", "accel", "ms", "event",
    ]);
    for e in &adaptive.epochs {
        let event = match (e.repredicted, e.migrated) {
            (_, true) => "repredict+migrate",
            (true, false) => "repredict",
            _ => "",
        };
        table.row([
            e.epoch.to_string(),
            e.stats.edges.to_string(),
            format!("{:.1}", e.stats.average_degree()),
            e.stats.max_degree.to_string(),
            e.stats.diameter.to_string(),
            format!("{:?}", e.accelerator).to_lowercase(),
            format!("{:.2}", e.time_ms),
            event.into(),
        ]);
    }
    println!("{}", table.render());

    // ---- Gate 1: adaptive strictly beats static ----------------------
    let speedup = static_.makespan_ms / adaptive.makespan_ms;
    println!(
        "makespan: adaptive {:.2} ms vs static {:.2} ms ({speedup:.2}x)",
        adaptive.makespan_ms, static_.makespan_ms
    );
    assert!(
        adaptive.makespan_ms < static_.makespan_ms,
        "GATE: adaptive ({:.3} ms) must strictly beat static ({:.3} ms)",
        adaptive.makespan_ms,
        static_.makespan_ms
    );

    // ---- Gate 2: the flip actually happened --------------------------
    let first = adaptive.epochs.first().expect("non-empty trace");
    let last = adaptive.epochs.last().expect("non-empty trace");
    assert_eq!(
        format!("{:?}", first.accelerator),
        "Gpu",
        "GATE: the sparse phase must deploy on the GPU"
    );
    assert_eq!(
        format!("{:?}", last.accelerator),
        "Multicore",
        "GATE: the dense phase must migrate to the multicore"
    );
    assert!(
        adaptive.migrations >= 1,
        "GATE: the adaptive run must live-migrate at least once"
    );
    assert!(
        static_.repredictions == 0 && static_.migrations == 0,
        "GATE: the static baseline must never re-predict"
    );

    // ---- Gate 3: 100% burst detection, zero calm false positives -----
    let fired = adaptive.reprediction_epochs();
    let detected = windows
        .iter()
        .filter(|&&(lo, hi)| fired.iter().any(|&e| e >= lo && e < hi))
        .count();
    let calm_false: Vec<usize> = fired
        .iter()
        .copied()
        .filter(|&e| !windows.iter().any(|&(lo, hi)| e >= lo && e < hi))
        .collect();
    println!(
        "detection: {detected}/{} bursts, re-predictions at {fired:?}, \
         calm false positives {calm_false:?}",
        windows.len()
    );
    assert_eq!(
        detected,
        windows.len(),
        "GATE: every injected phase change must be detected (fired {fired:?}, windows {windows:?})"
    );
    assert!(
        calm_false.is_empty(),
        "GATE: calm-phase re-predictions are false positives: {calm_false:?}"
    );

    // ---- Gate 4: digests bit-identical across thread budgets ---------
    for (i, &threads) in THREADS.iter().enumerate().skip(1) {
        assert_eq!(
            adaptive_runs[i].digest, adaptive.digest,
            "GATE: adaptive digest diverged at {threads} threads"
        );
        assert_eq!(
            static_runs[i].digest, static_.digest,
            "GATE: static digest diverged at {threads} threads"
        );
    }
    println!(
        "determinism: adaptive digest {:#018x}, static digest {:#018x}, \
         stable across {THREADS:?} host threads",
        adaptive.digest, static_.digest
    );

    // ---- Gate 5: events visible in obs::metrics ----------------------
    let runs = THREADS.len() as u64;
    assert_eq!(
        repred_delta,
        runs * adaptive.repredictions,
        "GATE: dyn_repredictions_total must count every re-prediction"
    );
    assert_eq!(
        migr_delta,
        runs * adaptive.migrations,
        "GATE: dyn_migrations_total must count every migration"
    );
    let exposition = prometheus_text(&global().snapshot());
    for needle in [
        "dyn_repredictions_total{trigger=",
        "dyn_migrations_total{to=",
    ] {
        assert!(
            exposition.contains(needle),
            "GATE: {needle:?} missing from the Prometheus exposition"
        );
    }
    println!("obs: {repred_delta} re-predictions and {migr_delta} migrations visible in metrics");

    // ---- Artifact ----------------------------------------------------
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"dynamic_adaptive\",\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"vertices\": {},\n", spec.vertices));
    out.push_str(&format!("  \"epochs\": {},\n", trace.len()));
    out.push_str(&format!(
        "  \"final_edges\": {},\n",
        adaptive.final_stats.edges
    ));
    out.push_str(&format!(
        "  \"adaptive_makespan_ms\": {},\n",
        num(adaptive.makespan_ms)
    ));
    out.push_str(&format!(
        "  \"static_makespan_ms\": {},\n",
        num(static_.makespan_ms)
    ));
    out.push_str(&format!("  \"speedup\": {},\n", num(speedup)));
    out.push_str(&format!(
        "  \"repredictions\": {},\n",
        adaptive.repredictions
    ));
    out.push_str(&format!("  \"migrations\": {},\n", adaptive.migrations));
    out.push_str(&format!(
        "  \"reprediction_epochs\": [{}],\n",
        fired
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!("  \"bursts_detected\": {detected},\n"));
    out.push_str(&format!("  \"bursts_injected\": {},\n", windows.len()));
    out.push_str(&format!(
        "  \"calm_false_positives\": {},\n",
        calm_false.len()
    ));
    out.push_str(&format!(
        "  \"adaptive_digest\": \"{:#018x}\",\n",
        adaptive.digest
    ));
    out.push_str(&format!(
        "  \"static_digest\": \"{:#018x}\",\n",
        static_.digest
    ));
    out.push_str(&format!(
        "  \"threads\": [{}]\n",
        THREADS.map(|t| t.to_string()).join(", ")
    ));
    out.push_str("}\n");
    json::parse(&out).expect("artifact must be valid JSON");
    std::fs::write("BENCH_dyn.json", &out).expect("write BENCH_dyn.json");
    println!("\nall gates hold; wrote BENCH_dyn.json");
}
