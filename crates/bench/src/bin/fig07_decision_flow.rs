//! Regenerates **Fig. 7: Decision Tree Heuristic Model flow** for SSSP-BF
//! and SSSP-Delta with the USA-Cal input: the discretized variables, the
//! nine predicted M choices, and selected-vs-optimal completion time.

use heteromap_accel::cost::WorkloadContext;
use heteromap_accel::system::MultiAcceleratorSystem;
use heteromap_graph::datasets::{Dataset, LiteratureMaxima};
use heteromap_model::{Grid, IVector, Workload};
use heteromap_predict::{Autotuner, DecisionTree, Predictor};

fn main() {
    println!("Fig. 7: Decision-tree flow for SSSP-BF / SSSP-Delta on USA-Cal\n");
    let sys = MultiAcceleratorSystem::primary();
    let tree = DecisionTree::paper();
    let i = IVector::from_stats(
        &Dataset::UsaCal.stats(),
        &LiteratureMaxima::paper(),
        Grid::PAPER,
    );
    println!(
        "input discretization: {i}  Avg.Deg={:.2}  Avg.Deg.Dia={:.2}\n",
        i.avg_deg(),
        i.avg_deg_dia()
    );

    for w in [Workload::SsspBf, Workload::SsspDelta] {
        let b = w.b_vector();
        let cfg = tree.predict(&b, &i);
        let ctx = WorkloadContext::for_workload(w, Dataset::UsaCal.stats());
        let selected = sys.deploy(&ctx, &cfg);
        let optimal = Autotuner::exhaustive().tune(|c| sys.deploy(&ctx, c).time_ms);
        println!("--- {w} ---");
        println!("  B profile: {b}");
        println!("  M1 selects: {}", cfg.accelerator);
        println!(
            "  M choices: M2(cores)={:.1} M3(thr/core)={:.1} M4(blocktime)={:.1} \
             M5-7(place)={:.1} M8(affinity)={:.1}",
            cfg.cores,
            cfg.threads_per_core,
            cfg.blocktime,
            cfg.placement(),
            cfg.affinity
        );
        println!(
            "             M11(sched)={} M19(global)={:.1} M20(local)={:.1}",
            cfg.schedule, cfg.global_threads, cfg.local_threads
        );
        println!(
            "  selected: {:.2} ms on {} | optimal: {:.2} ms on {} | gap {:.1}%",
            selected.time_ms,
            cfg.accelerator,
            optimal.cost,
            optimal.config.accelerator,
            (selected.time_ms / optimal.cost - 1.0) * 100.0
        );
        println!();
    }
    println!(
        "Paper shape: SSSP-BF maps to the GPU with some global threading and\n\
         maximum local threading (M19=0.1, M20=1); SSSP-Delta maps to the\n\
         multicore with ~7 cores (M2=0.1), max threads/core, loose placement.\n\
         Deviation: the paper reports ~15% selected-vs-optimal gaps, implying\n\
         its Phi saturates beyond ~7 cores on this input; our simulator keeps\n\
         rewarding cores, so the M2=I1 equation under-threads and the gap is\n\
         larger (see EXPERIMENTS.md). The automated learners close this gap,\n\
         which is exactly the paper's argument for automating the model."
    );
}
