//! Regenerates **Fig. 14: Scheduler Comparisons with the GTX-970** — the
//! stronger-GPU setup of §VII-D. The machine-learning model is re-learned
//! for the architectural change, as in the paper.
//!
//! Usage: `fig14_sched_970 [train_samples]` (default 400).

use heteromap_accel::{AcceleratorSpec, MultiAcceleratorSystem};
use heteromap_bench::harness::SchedulerComparison;
use heteromap_bench::TextTable;
use heteromap_model::{Accelerator, Workload};
use heteromap_predict::Objective;

fn main() {
    let args = heteromap_bench::apply_obs_flags(std::env::args().skip(1));
    let samples: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(400);
    let system = MultiAcceleratorSystem::new(
        AcceleratorSpec::gtx_970(),
        AcceleratorSpec::xeon_phi_7120p(),
    );
    heteromap_obs::diag("bench.progress", || {
        format!("re-learning Deep.128 for the GTX-970 pair ({samples} samples)...")
    });
    let cmp = SchedulerComparison::run(&system, Objective::Performance, samples, 42);

    println!("Fig. 14: completion time normalized to the GTX-970 GPU run");
    println!("(columns: Phi-only / HeteroMap / ideal; higher is worse)\n");
    let mut flips = 0;
    let weak = SchedulerComparison::run(
        &MultiAcceleratorSystem::primary(),
        Objective::Performance,
        samples,
        42,
    );
    for w in Workload::all() {
        let mut t = TextTable::new(["input", "XeonPhi", "HeteroMap", "ideal", "selected"]);
        for (r, rw) in cmp.rows_for(w).iter().zip(weak.rows_for(w)) {
            let winner_strong = if r.gpu_only <= r.multicore_only {
                Accelerator::Gpu
            } else {
                Accelerator::Multicore
            };
            let winner_weak = if rw.gpu_only <= rw.multicore_only {
                Accelerator::Gpu
            } else {
                Accelerator::Multicore
            };
            if winner_strong != winner_weak {
                flips += 1;
            }
            t.row([
                r.dataset.abbrev().to_string(),
                format!("{:.2}", r.multicore_only / r.gpu_only),
                format!("{:.2}", r.heteromap / r.gpu_only),
                format!("{:.2}", r.ideal / r.gpu_only),
                r.selected.to_string(),
            ]);
        }
        println!("--- {w} ---\n{}", t.render());
    }
    let (over_gpu, over_mc, gap) = cmp.headline();
    println!(
        "headline: HeteroMap beats GPU-only by {over_gpu:.1}% (paper ~14%) and\n\
         Phi-only by {over_mc:.1}% (paper ~3.8x on its combos); {gap:.1}% from ideal.\n\
         {flips} optimal-accelerator choices changed vs the GTX-750Ti setup\n\
         (paper: 'Optimal Choices change when compared to the GTX750Ti')."
    );
}
