//! Regenerates **Fig. 4: Input (I) model variables** — the discretized
//! I1–I4 values of every Table I graph, in 0.1 increments.

use heteromap_bench::TextTable;
use heteromap_graph::datasets::{Dataset, LiteratureMaxima};
use heteromap_model::{Grid, IVector};

fn main() {
    println!("Fig. 4: Input (I) model variables (0.1-grid discretization)\n");
    let maxima = LiteratureMaxima::paper();
    let mut t = TextTable::new([
        "Input",
        "I1 (#V)",
        "I2 (#E)",
        "I3 (MaxDeg)",
        "I4 (Dia)",
        "Avg.Deg",
        "Avg.Deg.Dia",
    ]);
    for d in Dataset::all() {
        let i = IVector::from_stats(&d.stats(), &maxima, Grid::PAPER);
        t.row([
            d.abbrev().to_string(),
            format!("{:.1}", i.i1()),
            format!("{:.1}", i.i2()),
            format!("{:.1}", i.i3()),
            format!("{:.1}", i.i4()),
            format!("{:.2}", i.avg_deg()),
            format!("{:.2}", i.avg_deg_dia()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Paper anchors: USA-Cal I1=I2=0.1, I3=0, high I4; Twitter I3=1;\n\
         rgg-n-24 I4=1; Friendster I1,2 high (paper quotes 0.8).\n\
         Avg.Deg = |I3 - I2/I1| and Avg.Deg.Dia = (I4 + Avg.Deg)/2 are the\n\
         derived quantities behind the M3/M20 and M5-7 equations."
    );
}
