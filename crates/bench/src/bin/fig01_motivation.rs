//! Regenerates **Fig. 1**: how input graph variations exhibit different
//! performance within and across accelerators for (Δ-stepping) SSSP.
//!
//! Threads are swept from minimum to maximum on both accelerators for the
//! sparse USA-Cal road network and the dense CAGE-14 matrix; completion
//! time is reported per normalized thread level. The paper's shape: the
//! multicore wins the road network by a wide margin, the GPU wins CAGE-14
//! (~3x), and CAGE-14 on the GPU has an interior ("intermediate threading")
//! optimum.

use heteromap_accel::cost::WorkloadContext;
use heteromap_accel::system::MultiAcceleratorSystem;
use heteromap_bench::TextTable;
use heteromap_graph::datasets::Dataset;
use heteromap_model::{MConfig, Workload};

fn main() {
    println!("Fig. 1: SSSP-Delta thread sweep, sparse (CA) vs dense (CAGE)\n");
    let sys = MultiAcceleratorSystem::primary();
    let levels: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();

    for dataset in [Dataset::UsaCal, Dataset::Cage14] {
        let ctx = WorkloadContext::for_workload(Workload::SsspDelta, dataset.stats());
        println!("--- input: {} ---", dataset.full_name());
        let mut t = TextTable::new(["threads(norm)", "GPU (ms)", "Xeon Phi (ms)"]);
        let mut best = (f64::INFINITY, "");
        for &l in &levels {
            let mut gpu = MConfig::gpu_default();
            gpu.global_threads = l;
            let mut phi = MConfig::multicore_default();
            phi.cores = l;
            let g = sys.deploy(&ctx, &gpu).time_ms;
            let m = sys.deploy(&ctx, &phi).time_ms;
            if g < best.0 {
                best = (g, "GPU");
            }
            if m < best.0 {
                best = (m, "Xeon Phi");
            }
            t.row([format!("{l:.1}"), format!("{g:.2}"), format!("{m:.2}")]);
        }
        println!("{}", t.render());
        println!("best: {} at {:.2} ms\n", best.1, best.0);
    }
    println!(
        "Paper shape: USA-Cal's 850-hop diameter produces long dependency\n\
         chains and divergence that cripple the GPU, so the multicore wins\n\
         by a wide margin; CAGE-14's dense connectivity maps onto the GPU's\n\
         thread surplus and wins there instead."
    );
}
