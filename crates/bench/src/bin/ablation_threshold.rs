//! Ablation: the decision-tree threshold. The paper fixes 0.5 ("the
//! unbiased mid-point") and leaves tuning to future work; this sweep runs
//! that future work.

use heteromap_accel::system::MultiAcceleratorSystem;
use heteromap_bench::TextTable;
use heteromap_predict::{DecisionTree, Evaluator, Objective};

fn main() {
    let evaluator = Evaluator::new(MultiAcceleratorSystem::primary(), Objective::Performance);
    println!("Ablation: decision-tree threshold sweep (paper default 0.5)\n");
    let mut t = TextTable::new([
        "threshold",
        "SpeedUp vs GPU(%)",
        "Accuracy(%)",
        "Gap vs ideal(%)",
    ]);
    for tenths in 2..=8 {
        let threshold = tenths as f64 / 10.0;
        let r = evaluator.evaluate(&DecisionTree::with_threshold(threshold));
        t.row([
            format!("{threshold:.1}"),
            format!("{:.1}", r.speedup_over_gpu_pct),
            format!("{:.1}", r.accuracy_pct),
            format!("{:.1}", r.gap_from_ideal_pct),
        ]);
    }
    println!("{}", t.render());
}
