//! Ablation: deep-network width × training-database size — expands Table
//! IV's Deep.16/32/64/128 rows with the training-set-size axis the paper
//! holds fixed ("all are trained with the same amount of training data").
//!
//! Usage: `ablation_nn_width [max_samples]` (default 1600).

use heteromap_accel::system::MultiAcceleratorSystem;
use heteromap_bench::TextTable;
use heteromap_predict::nn::TrainConfig;
use heteromap_predict::{Evaluator, NeuralPredictor, Objective, Trainer};

fn main() {
    let args = heteromap_bench::apply_obs_flags(std::env::args().skip(1));
    let max_samples: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(1_600);
    let system = MultiAcceleratorSystem::primary();
    heteromap_obs::diag("bench.progress", || {
        format!("generating {max_samples}-sample training database...")
    });
    let full =
        heteromap_bench::load_or_generate_database(&Trainer::new(system.clone()), max_samples, 42);
    let evaluator = Evaluator::new(system, Objective::Performance);

    println!("Ablation: network width x training-set size\n");
    let mut t = TextTable::new([
        "width",
        "samples",
        "SpeedUp vs GPU(%)",
        "Accuracy(%)",
        "Overhead(ms)",
    ]);
    for hidden in [16usize, 32, 64, 128] {
        for fraction in [4usize, 2, 1] {
            let take = max_samples / fraction;
            let mut subset = heteromap_predict::TrainingSet::new();
            subset.extend(full.samples().iter().take(take).cloned());
            let nn = NeuralPredictor::train(
                &subset,
                TrainConfig {
                    hidden,
                    ..TrainConfig::default()
                },
            );
            let r = evaluator.evaluate(&nn);
            t.row([
                hidden.to_string(),
                take.to_string(),
                format!("{:.1}", r.speedup_over_gpu_pct),
                format!("{:.1}", r.accuracy_pct),
                format!("{:.4}", r.overhead_ms),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "Paper shape: wider networks need (and exploit) more data — Table IV\n\
         shows accuracy rising 59->90% from Deep.16 to Deep.128 at fixed data."
    );
}
