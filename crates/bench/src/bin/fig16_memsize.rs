//! Regenerates **Fig. 16: memory-size sensitivity** — geomean completion
//! time across all 81 combinations for every (GPU memory, multicore memory)
//! pair, for both the GPU–Xeon-Phi and GPU–40-core-CPU settings.
//!
//! The paper sweeps memories the accelerators support (GPUs to 2–4 GB, the
//! Phi/CPU to 16 GB) and shows the multicore improving when exposed to its
//! full memory, "forgoing the need for memory transfers".

use heteromap_accel::cost::WorkloadContext;
use heteromap_accel::{AcceleratorSpec, MultiAcceleratorSystem};
use heteromap_bench::{all_combos, geomean, TextTable};
use heteromap_model::mspace::MSpace;
use heteromap_model::Accelerator;

fn sweep(gpu: AcceleratorSpec, multicore: AcceleratorSpec, gpu_mems: &[f64], mc_mems: &[f64]) {
    let space = MSpace::new();
    let gpu_cfgs = space.enumerate_for(Accelerator::Gpu);
    let mc_cfgs = space.enumerate_for(Accelerator::Multicore);
    println!(
        "--- {} + {} (geomean best-of-pair over 81 combos, ms) ---\n",
        gpu.name, multicore.name
    );
    let mut header = vec![format!("GPU\\{}", multicore.name)];
    header.extend(mc_mems.iter().map(|m| format!("{m:.0}GB")));
    let mut t = TextTable::new(header);
    let mut best_pair = (f64::INFINITY, 0.0, 0.0);
    let mut worst = 0.0f64;
    for &gm in gpu_mems {
        let mut row = vec![format!("{gm:.0}GB")];
        for &mm in mc_mems {
            let sys =
                MultiAcceleratorSystem::new(gpu.clone(), multicore.clone()).with_memory(gm, mm);
            let times: Vec<f64> = all_combos()
                .into_iter()
                .map(|(w, d)| {
                    let ctx = WorkloadContext::for_workload(w, d.stats());
                    let bg = gpu_cfgs
                        .iter()
                        .map(|c| sys.deploy(&ctx, c).time_ms)
                        .fold(f64::INFINITY, f64::min);
                    let bm = mc_cfgs
                        .iter()
                        .map(|c| sys.deploy(&ctx, c).time_ms)
                        .fold(f64::INFINITY, f64::min);
                    bg.min(bm)
                })
                .collect();
            let g = geomean(&times);
            if g < best_pair.0 {
                best_pair = (g, gm, mm);
            }
            worst = worst.max(g);
            row.push(format!("{g:.1}"));
        }
        t.row(row);
    }
    println!("{}", t.render());
    println!(
        "best at (GPU {:.0} GB, MC {:.0} GB): {:.1} ms; worst/best spread {:.2}x\n",
        best_pair.1,
        best_pair.2,
        best_pair.0,
        worst / best_pair.0
    );
}

fn main() {
    println!("Fig. 16: memory-size sensitivity\n");
    sweep(
        AcceleratorSpec::gtx_750ti(),
        AcceleratorSpec::xeon_phi_7120p(),
        &[1.0, 2.0],
        &[1.0, 2.0, 4.0, 8.0, 16.0],
    );
    sweep(
        AcceleratorSpec::gtx_970(),
        AcceleratorSpec::xeon_phi_7120p(),
        &[1.0, 2.0, 4.0],
        &[1.0, 2.0, 4.0, 8.0, 16.0],
    );
    sweep(
        AcceleratorSpec::gtx_750ti(),
        AcceleratorSpec::cpu_40core(),
        &[1.0, 2.0],
        &[1.0, 2.0, 4.0, 8.0, 16.0],
    );
    sweep(
        AcceleratorSpec::gtx_970(),
        AcceleratorSpec::cpu_40core(),
        &[1.0, 2.0, 4.0],
        &[1.0, 2.0, 4.0, 8.0, 16.0],
    );
    println!(
        "Paper shape: enlarging the multicore's memory keeps improving the\n\
         pair (big graphs stop streaming), while GPU memory saturates at its\n\
         2-4 GB architectural limit."
    );
}
