//! Regenerates **Fig. 13: Core Utilization benefits** — raw core
//! utilization (%) averaged across inputs for each benchmark, for the
//! Xeon-Phi-only, GPU-only, and HeteroMap runs.
//!
//! Usage: `fig13_utilization [train_samples]` (default 400).

use heteromap_accel::system::MultiAcceleratorSystem;
use heteromap_bench::harness::SchedulerComparison;
use heteromap_bench::TextTable;
use heteromap_model::Workload;
use heteromap_predict::Objective;

fn main() {
    let args = heteromap_bench::apply_obs_flags(std::env::args().skip(1));
    let samples: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(400);
    let system = MultiAcceleratorSystem::primary();
    heteromap_obs::diag("bench.progress", || {
        format!("training Deep.128 on {samples} synthetic combinations...")
    });
    let cmp = SchedulerComparison::run(&system, Objective::Performance, samples, 42);

    println!("Fig. 13: core utilization (%) averaged across inputs\n");
    let mut t = TextTable::new(["benchmark", "XeonPhi", "GPU", "HeteroMap"]);
    let mut sums = (0.0, 0.0, 0.0);
    for w in Workload::all() {
        let rows = cmp.rows_for(w);
        let n = rows.len() as f64;
        let phi: f64 = rows.iter().map(|r| r.utilization_baselines.1).sum::<f64>() / n;
        let gpu: f64 = rows.iter().map(|r| r.utilization_baselines.0).sum::<f64>() / n;
        let hm: f64 = rows.iter().map(|r| r.utilization).sum::<f64>() / n;
        sums.0 += phi;
        sums.1 += gpu;
        sums.2 += hm;
        t.row([
            w.abbrev().to_string(),
            format!("{:.1}", phi * 100.0),
            format!("{:.1}", gpu * 100.0),
            format!("{:.1}", hm * 100.0),
        ]);
    }
    let n = Workload::all().len() as f64;
    t.row([
        "mean".to_string(),
        format!("{:.1}", sums.0 / n * 100.0),
        format!("{:.1}", sums.1 / n * 100.0),
        format!("{:.1}", sums.2 / n * 100.0),
    ]);
    println!("{}", t.render());
    println!(
        "Paper shape: Phi utilization is low on throughput-bound traversals\n\
         (cores wait on low-locality memory); GPUs hide latency by thread\n\
         switching; HeteroMap improves the mean (~20% in the paper) by\n\
         selecting the accelerator and threading that keep cores busy."
    );
}
