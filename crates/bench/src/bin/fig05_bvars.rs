//! Regenerates **Fig. 5: Benchmark (B) model variables** — the B1–B13
//! profile of each graph benchmark (the paper shows checkmarks; we print
//! the underlying magnitudes, with `.` for zero = no checkmark).

use heteromap_bench::TextTable;
use heteromap_model::Workload;

fn main() {
    println!("Fig. 5: Benchmark (B) model variables\n");
    let header: Vec<String> = std::iter::once("Benchmark".to_string())
        .chain((1..=13).map(|k| format!("B{k}")))
        .collect();
    let mut t = TextTable::new(header);
    for w in Workload::all() {
        let b = w.b_vector().as_array();
        let mut row = vec![w.abbrev().to_string()];
        row.extend(b.iter().map(|&v| {
            if v == 0.0 {
                ".".to_string()
            } else {
                format!("{v:.1}")
            }
        }));
        t.row(row);
    }
    println!("{}", t.render());
    println!(
        "Legend: B1-5 phase mix (sums to 1) | B6 %FP | B7 loop-indexed /\n\
         B8 indirect addressing | B9 read-only / B10 read-write shared /\n\
         B11 local data | B12 atomics | B13 barriers-per-iteration (x0.1).\n\
         Checkmark pattern matches the paper: BFS is pure B3, DFS pure B4,\n\
         DFS & CC carry B8, the PageRanks & COMM carry B6, everything has\n\
         B7 and B10."
    );
}
