//! Regenerates **Fig. 11: Scheduler Comparisons for Graph Workload-Input
//! Combinations** on the primary GTX-750Ti + Xeon Phi setup: per
//! combination, completion time of the tuned Xeon-Phi-only and HeteroMap
//! runs normalized to the tuned GPU-only run (higher is worse), plus the
//! headline geomeans.
//!
//! Usage: `fig11_sched_750 [train_samples]` (default 400).

use heteromap_accel::system::MultiAcceleratorSystem;
use heteromap_bench::harness::SchedulerComparison;
use heteromap_bench::TextTable;
use heteromap_model::Workload;
use heteromap_predict::Objective;

fn main() {
    let args = heteromap_bench::apply_obs_flags(std::env::args().skip(1));
    let samples: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(400);
    let system = MultiAcceleratorSystem::primary();
    heteromap_obs::diag("bench.progress", || {
        format!("training Deep.128 on {samples} synthetic combinations...")
    });
    let cmp = SchedulerComparison::run(&system, Objective::Performance, samples, 42);

    println!("Fig. 11: completion time normalized to the GTX-750Ti GPU run");
    println!("(columns: Phi-only / HeteroMap / ideal; higher is worse)\n");
    for w in Workload::all() {
        let mut t = TextTable::new(["input", "XeonPhi", "HeteroMap", "ideal", "selected"]);
        for r in cmp.rows_for(w) {
            t.row([
                r.dataset.abbrev().to_string(),
                format!("{:.2}", r.multicore_only / r.gpu_only),
                format!("{:.2}", r.heteromap / r.gpu_only),
                format!("{:.2}", r.ideal / r.gpu_only),
                r.selected.to_string(),
            ]);
        }
        println!("--- {w} ---\n{}", t.render());
    }
    let (over_gpu, over_mc, gap) = cmp.headline();
    println!(
        "headline: HeteroMap is {over_gpu:.1}% better than GPU-only (paper ~31%),\n\
         {over_mc:.1}% better than Phi-only (paper ~75%), and {gap:.1}% from the\n\
         ideal (paper: within 10%)."
    );
}
