//! Regenerates **Table IV: Learning Model Strategies** — speedup over the
//! GTX-750 GPU baseline, choice accuracy vs the ideal, and measured
//! prediction overhead for every learner the paper compares: the decision
//! tree, linear and 7th-order regression, the adaptive library, and deep
//! networks of width 16/32/64/128 (plus the energy-trained Deep.128).
//!
//! Training size is configurable: `table4_learners [samples]`
//! (default 600; the paper uses millions of combinations over hours).

use heteromap_accel::system::MultiAcceleratorSystem;
use heteromap_bench::TextTable;
use heteromap_predict::nn::TrainConfig;
use heteromap_predict::{
    AdaptiveLibrary, DecisionTree, Evaluator, NeuralPredictor, Objective, Predictor,
    RegressionPredictor, Trainer,
};

fn main() {
    let args = heteromap_bench::apply_obs_flags(std::env::args().skip(1));
    let samples: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(600);
    heteromap_obs::diag("bench.progress", || {
        format!(
            "training database: {samples} autotuned synthetic combinations \
             (or set {} to reuse a persisted one)...",
            heteromap_bench::DB_ENV_VAR
        )
    });
    let system = MultiAcceleratorSystem::primary();
    let trainer = Trainer::new(system.clone());
    let db = heteromap_bench::load_or_generate_database(&trainer, samples, 42);
    heteromap_obs::diag("bench.progress", || {
        "database ready; training learners...".into()
    });

    let tree = DecisionTree::paper();
    let linear = RegressionPredictor::train_linear(&db);
    let multi = RegressionPredictor::train_multi(&db);
    let adaptive = AdaptiveLibrary::train(&db);
    let deep: Vec<NeuralPredictor> = [16, 32, 64, 128]
        .into_iter()
        .map(|hidden| {
            heteromap_obs::diag("bench.progress", || format!("  training Deep.{hidden}..."));
            NeuralPredictor::train(
                &db,
                TrainConfig {
                    hidden,
                    ..TrainConfig::default()
                },
            )
        })
        .collect();

    heteromap_obs::diag("bench.progress", || {
        "precomputing tuned baselines and ideal configurations...".into()
    });
    let evaluator = Evaluator::new(system.clone(), Objective::Performance);

    let mut learners: Vec<&dyn Predictor> = vec![&tree, &linear, &multi, &adaptive];
    for d in &deep {
        learners.push(d);
    }

    println!("\nTable IV: Learning model strategies (speedup over the GTX-750");
    println!("GPU-only baseline; accuracy vs the exhaustively tuned ideal)\n");
    let mut t = TextTable::new(["Learner", "SpeedUp(%)", "Accuracy(%)", "Overhead(ms)"]);
    let mut best_named = (String::new(), f64::NEG_INFINITY);
    for l in &learners {
        let r = evaluator.evaluate(*l);
        if r.speedup_over_gpu_pct > best_named.1 {
            best_named = (r.name.clone(), r.speedup_over_gpu_pct);
        }
        t.row([
            r.name,
            format!("{:.1}", r.speedup_over_gpu_pct),
            format!("{:.1}", r.accuracy_pct),
            format!("{:.4}", r.overhead_ms),
        ]);
    }
    // The paper's extra row: Deep.128 trained for the energy objective.
    heteromap_obs::diag("bench.progress", || {
        "training energy-objective Deep.128...".into()
    });
    let energy_db = Trainer::new(system.clone())
        .with_objective(Objective::Energy)
        .generate_database(samples, 43);
    let deep_energy = NeuralPredictor::train(
        &energy_db,
        TrainConfig {
            hidden: 128,
            ..TrainConfig::default()
        },
    );
    let energy_eval = Evaluator::new(system, Objective::Energy);
    let r = energy_eval.evaluate(&deep_energy);
    t.row([
        "Deep.128 (energy)".to_string(),
        format!("{:.1}", r.speedup_over_gpu_pct),
        format!("{:.1}", r.accuracy_pct),
        format!("{:.4}", r.overhead_ms),
    ]);
    println!("{}", t.render());
    println!("best performing learner: {}", best_named.0);
    println!(
        "\nPaper shape: linear regression and the adaptive library miss the\n\
         non-linear structure (low accuracy); the decision tree is cheapest;\n\
         deeper networks gain accuracy and speedup at higher overhead, with\n\
         Deep.128 best (paper: 31% speedup, 90.5% accuracy). Our overheads\n\
         are microseconds (native Rust vs the paper's Python/C++ stack);\n\
         the *ordering* across learners is the reproduced quantity."
    );
}
