//! **Tuning quality**: the `heteromap-tune` ensemble vs the legacy coarse +
//! hill-climb autotuner, swept over evaluation budget × search strategy on
//! real workload/dataset oracles, plus parallel database-generation
//! throughput. Results are written to `BENCH_tune.json`.
//!
//! Three questions, answered in one run:
//!
//! 1. **Optimality gap vs budget** — for each budget, the geomean ratio of
//!    each strategy's best cost to the exhaustive reference optimum across
//!    a spread of (workload, dataset) combinations.
//! 2. **Curves** — best-gap-so-far against evaluations spent, per strategy,
//!    on a representative combination.
//! 3. **Throughput** — profiler-database generation, serial vs fanned over
//!    the kernel pool (bit-identical output; see
//!    `Trainer::generate_database_parallel`).
//!
//! The run also self-checks the CI smoke property: on a fixed convex
//! oracle, the fixed-seed ensemble must match or beat same-budget random
//! search. That check is deterministic and machine-independent.

use heteromap_accel::cost::WorkloadContext;
use heteromap_accel::system::MultiAcceleratorSystem;
use heteromap_bench::{all_combos, geomean, TextTable};
use heteromap_model::{Accelerator, MConfig};
use heteromap_predict::{Autotuner, Trainer};
use heteromap_tune::{EnsembleTuner, Strategy, TuneConfig};
use std::time::Instant;

/// Evaluation budgets swept (the legacy `fast()` profile spends ~240).
const BUDGETS: [usize; 4] = [60, 120, 240, 480];
/// Every `COMBO_STRIDE`-th of the 81 workload × dataset combinations.
const COMBO_STRIDE: usize = 7;
/// Samples in the throughput measurement's database.
const THROUGHPUT_SAMPLES: usize = 32;
/// Workers for the parallel database-generation measurement.
const THROUGHPUT_THREADS: usize = 8;

/// Strategies compared against the legacy tuner.
const STRATEGIES: [Strategy; 3] = [
    Strategy::Ensemble,
    Strategy::HillClimbOnly,
    Strategy::RandomOnly,
];

/// A convergence curve: strategy name, budget, (evaluations, cost) points.
type Curve = (String, usize, Vec<(usize, f64)>);

struct Cell {
    strategy: &'static str,
    budget: usize,
    geomean_gap: f64,
    mean_evals: f64,
}

/// The legacy tuner reshaped to spend roughly `budget` evaluations, with
/// the same coarse/refine split ratio as `Autotuner::fast()` (five coarse
/// evaluations per refine step).
fn legacy_at_budget(budget: usize) -> Autotuner {
    let space = heteromap_model::mspace::MSpace::new().enumerate().len();
    let coarse_target = (budget * 5 / 6).max(1);
    let stride = space.div_ceil(coarse_target).max(1);
    let coarse = space.div_ceil(stride);
    Autotuner::exhaustive()
        .with_coarse_stride(stride)
        .with_refine_budget(budget.saturating_sub(coarse))
}

fn convex_smoke() {
    let oracle = |cfg: &MConfig| {
        let accel = match cfg.accelerator {
            Accelerator::Gpu => 0.0,
            Accelerator::Multicore => 5.0,
        };
        accel + (cfg.global_threads - 0.7).powi(2) + (cfg.local_threads - 0.3).powi(2) + 1.0
    };
    let at = |strategy: Strategy| {
        EnsembleTuner::new(
            TuneConfig::default()
                .with_budget(120)
                .with_seed(1)
                .with_strategy(strategy),
        )
        .tune(oracle)
        .cost
    };
    let ensemble = at(Strategy::Ensemble);
    let random = at(Strategy::RandomOnly);
    assert!(
        ensemble <= random,
        "smoke failed: ensemble {ensemble} vs random {random} on the convex oracle"
    );
    println!("smoke: ensemble {ensemble:.6} <= random {random:.6} on the convex oracle ✓");
}

fn main() {
    heteromap_bench::apply_obs_flags(std::env::args().skip(1));
    convex_smoke();

    let sys = MultiAcceleratorSystem::primary();
    let combos: Vec<_> = all_combos().into_iter().step_by(COMBO_STRIDE).collect();
    let contexts: Vec<WorkloadContext> = combos
        .iter()
        .map(|&(w, d)| WorkloadContext::for_workload(w, d.stats()))
        .collect();
    // Reference: the exhaustive + fully-refined legacy tuner.
    let reference: Vec<f64> = contexts
        .iter()
        .map(|ctx| {
            Autotuner::exhaustive()
                .tune(|c| sys.deploy(ctx, c).time_ms)
                .cost
        })
        .collect();

    println!(
        "\nTuning quality: budget x strategy over {} combinations\n",
        combos.len()
    );
    let mut cells: Vec<Cell> = Vec::new();
    let mut curves: Vec<Curve> = Vec::new();
    for &budget in &BUDGETS {
        // Legacy coarse + hill-climb at (approximately) this budget.
        let legacy = legacy_at_budget(budget);
        let mut evals = 0usize;
        let gaps: Vec<f64> = contexts
            .iter()
            .zip(&reference)
            .map(|(ctx, &best)| {
                let r = legacy.tune(|c| sys.deploy(ctx, c).time_ms);
                evals += r.evaluations;
                r.cost / best
            })
            .collect();
        cells.push(Cell {
            strategy: "legacy",
            budget,
            geomean_gap: geomean(&gaps),
            mean_evals: evals as f64 / combos.len() as f64,
        });
        // The subsystem strategies at exactly this budget.
        for strategy in STRATEGIES {
            let mut evals = 0usize;
            let gaps: Vec<f64> = contexts
                .iter()
                .zip(&reference)
                .enumerate()
                .map(|(k, (ctx, &best))| {
                    let tuner = EnsembleTuner::new(
                        TuneConfig::default()
                            .with_budget(budget)
                            .with_seed(42 + k as u64)
                            .with_strategy(strategy),
                    );
                    let out = tuner.tune(|c| sys.deploy(ctx, c).time_ms);
                    evals += out.evaluations;
                    if k == 0 && budget == *BUDGETS.last().expect("non-empty") {
                        curves.push((
                            strategy.name().to_string(),
                            budget,
                            out.curve
                                .iter()
                                .map(|p| (p.evaluations, p.cost / best))
                                .collect(),
                        ));
                    }
                    out.cost / best
                })
                .collect();
            cells.push(Cell {
                strategy: strategy.name(),
                budget,
                geomean_gap: geomean(&gaps),
                mean_evals: evals as f64 / combos.len() as f64,
            });
        }
    }

    let mut table = TextTable::new(["strategy", "budget", "geomean gap(%)", "evals/combo"]);
    for c in &cells {
        table.row([
            c.strategy.to_string(),
            c.budget.to_string(),
            format!("{:.2}", (c.geomean_gap - 1.0) * 100.0),
            format!("{:.0}", c.mean_evals),
        ]);
    }
    println!("{}", table.render());

    // The subsystem must not lose to the legacy tuner it replaces at the
    // full budget (the budget class the training pipeline actually uses).
    let gap_of = |name: &str, budget: usize| {
        cells
            .iter()
            .find(|c| c.strategy == name && c.budget == budget)
            .map(|c| c.geomean_gap)
            .expect("cell was measured")
    };
    let full = *BUDGETS.last().expect("non-empty");
    let (ens, leg) = (gap_of("ensemble", full), gap_of("legacy", full));
    assert!(
        ens <= leg + 1e-9,
        "ensemble gap {ens} worse than legacy {leg} at budget {full}"
    );
    println!(
        "ensemble gap {:.2}% <= legacy gap {:.2}% at budget {full} ✓\n",
        (ens - 1.0) * 100.0,
        (leg - 1.0) * 100.0
    );

    // Throughput: serial vs pool-parallel database generation. The outputs
    // are bit-identical; only wall-clock differs (and only on multi-core
    // hosts — the speedup is bounded by the machine's parallelism).
    let trainer = Trainer::new(sys.clone());
    let serial_start = Instant::now();
    let serial_db = trainer.generate_database(THROUGHPUT_SAMPLES, 7);
    let serial_s = serial_start.elapsed().as_secs_f64();
    let parallel_start = Instant::now();
    let parallel_db = trainer.generate_database_parallel(THROUGHPUT_SAMPLES, 7, THROUGHPUT_THREADS);
    let parallel_s = parallel_start.elapsed().as_secs_f64();
    assert_eq!(
        parallel_db, serial_db,
        "parallel generation must be bit-identical"
    );
    let speedup = serial_s / parallel_s;
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "database generation ({} samples, {} tuning evaluations): \
         serial {:.2}s, {}-thread {:.2}s -> {:.2}x (host has {host_cpus} cpus)",
        THROUGHPUT_SAMPLES,
        serial_db.tuning_evaluations(),
        serial_s,
        THROUGHPUT_THREADS,
        parallel_s,
        speedup
    );
    if host_cpus >= 4 {
        assert!(
            speedup >= 2.0,
            "parallel generation speedup {speedup:.2}x below 2x on a {host_cpus}-cpu host"
        );
    }

    use heteromap_obs::json::escape;
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"tune_quality\",\n");
    json.push_str(&format!("  \"combos\": {},\n", combos.len()));
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str("  \"trials\": 1,\n"); // fixed-seed cells are deterministic

    json.push_str("  \"gap_by_budget\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"strategy\": {}, \"budget\": {}, \"geomean_gap\": {:.6}, \
             \"mean_evaluations\": {:.1}}}{}\n",
            escape(c.strategy),
            c.budget,
            c.geomean_gap,
            c.mean_evals,
            if i + 1 < cells.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"curves\": [\n");
    for (i, (name, budget, points)) in curves.iter().enumerate() {
        let pts: Vec<String> = points
            .iter()
            .map(|(e, g)| format!("[{e}, {g:.6}]"))
            .collect();
        json.push_str(&format!(
            "    {{\"strategy\": {}, \"budget\": {}, \"gap_vs_evaluations\": [{}]}}{}\n",
            escape(name),
            budget,
            pts.join(", "),
            if i + 1 < curves.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"database_generation\": {\n");
    json.push_str(&format!("    \"samples\": {THROUGHPUT_SAMPLES},\n"));
    json.push_str(&format!("    \"threads\": {THROUGHPUT_THREADS},\n"));
    json.push_str(&format!(
        "    \"tuning_evaluations\": {},\n",
        serial_db.tuning_evaluations()
    ));
    json.push_str(&format!("    \"serial_seconds\": {serial_s:.4},\n"));
    json.push_str(&format!("    \"parallel_seconds\": {parallel_s:.4},\n"));
    json.push_str(&format!("    \"speedup\": {speedup:.4},\n"));
    json.push_str("    \"bit_identical\": true\n");
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_tune.json", &json).expect("write BENCH_tune.json");
    println!(
        "\nwrote BENCH_tune.json ({} gap cells, {} curves)",
        cells.len(),
        curves.len()
    );
}
