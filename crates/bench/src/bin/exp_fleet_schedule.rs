//! **Fleet scheduling sweep**: sustained goodput, tail completion time and
//! migration counts of four placement policies driving a heterogeneous
//! accelerator cluster through seeded job traces at several fault
//! intensities.
//!
//! Each cell runs the same deterministic [`FleetTrace`] over the same
//! cluster with one [`Placer`]; the gap between the predictor-driven
//! placers (greedy, evolution) and the blind baselines (random,
//! round-robin) is what HeteroMap's runtime prediction buys at fleet
//! scale. Every cell's digest is checked bit-for-bit across thread counts
//! and a rerun — the simulator's determinism is part of what this
//! experiment certifies. Results are written to `BENCH_fleet.json`.
//!
//! Pass `--smoke` for a CI-sized run (smaller trace and cluster, fewer
//! thread counts).

use heteromap_bench::TextTable;
use heteromap_fleet::{Cluster, FleetReport, FleetSim, FleetTrace, Placer};

const SEED: u64 = 42;
const INTENSITIES: [f64; 3] = [0.0, 0.2, 0.4];

/// A named trace regime: label plus its `FleetTrace` constructor.
type Regime = (&'static str, fn(u64, f64) -> FleetTrace);

struct Cell {
    regime: &'static str,
    intensity: f64,
    placer: Placer,
    report: FleetReport,
}

/// Runs one simulator at every thread count, asserting accounting and
/// digest stability, and returns the (identical) report.
fn run_stable(sim: &FleetSim, thread_counts: &[usize]) -> FleetReport {
    let reference = sim.run(thread_counts[0]);
    assert!(reference.fully_accounted(), "every job resolves");
    for &threads in &thread_counts[1..] {
        let report = sim.run(threads);
        assert_eq!(
            report.digest,
            reference.digest,
            "digest diverged at {threads} threads ({})",
            sim.placer()
        );
    }
    let rerun = sim.run(*thread_counts.last().expect("thread counts"));
    assert_eq!(
        rerun.digest,
        reference.digest,
        "digest diverged on rerun ({})",
        sim.placer()
    );
    reference
}

fn cell_for<'a>(
    cells: &'a [Cell],
    regime: &str,
    intensity: f64,
    placer: Placer,
) -> &'a FleetReport {
    &cells
        .iter()
        .find(|c| c.regime == regime && c.intensity == intensity && c.placer == placer)
        .expect("cell exists")
        .report
}

fn main() {
    let args = heteromap_bench::apply_obs_flags(std::env::args().skip(1));
    let smoke = args.iter().any(|a| a == "--smoke");
    let thread_counts: &[usize] = if smoke { &[1, 4] } else { &[1, 4, 16] };
    let n_per_spec = if smoke { 1 } else { 2 };
    let regimes: Vec<Regime> = if smoke {
        vec![("smoke", FleetTrace::smoke as _)]
    } else {
        vec![
            ("heavy", FleetTrace::heavy as _),
            ("steady", FleetTrace::steady as _),
        ]
    };
    let cluster = Cluster::uniform(n_per_spec);
    println!(
        "fleet sweep: {} devices ({n_per_spec}x each paper spec), seed {SEED}{}",
        cluster.len(),
        if smoke { " [smoke]" } else { "" },
    );
    println!("digests checked at {thread_counts:?} threads plus a rerun per cell\n");

    let mut cells: Vec<Cell> = Vec::new();
    for &(regime, trace_for) in &regimes {
        for &intensity in &INTENSITIES {
            for placer in Placer::ALL {
                let sim = FleetSim::new(trace_for(SEED, intensity), cluster.clone(), placer);
                let report = run_stable(&sim, thread_counts);
                println!(
                    "{regime}/{intensity:.1} {placer:<11} good {:>4}/{:<4} {:>8.1} jobs/s  \
                     p99 {:>9.1} ms  migr {:>3}",
                    report.good, report.jobs, report.jobs_per_sec, report.p99_ms, report.migrations,
                );
                cells.push(Cell {
                    regime,
                    intensity,
                    placer,
                    report,
                });
            }
        }
    }

    let mut table = TextTable::new([
        "regime",
        "intensity",
        "placer",
        "jobs",
        "good",
        "late",
        "failed",
        "shed",
        "migr",
        "jobs/s",
        "p99 ms",
        "util",
    ]);
    for cell in &cells {
        let r = &cell.report;
        table.row([
            cell.regime.to_string(),
            format!("{:.1}", cell.intensity),
            cell.placer.name().to_string(),
            r.jobs.to_string(),
            r.good.to_string(),
            r.late.to_string(),
            r.failed.to_string(),
            r.shed.to_string(),
            r.migrations.to_string(),
            format!("{:.1}", r.jobs_per_sec),
            format!("{:.1}", r.p99_ms),
            format!("{:.2}", r.avg_utilization),
        ]);
    }
    println!("\n{}", table.render());

    // Acceptance bars (ISSUE 8). Simulated time keeps these stable enough
    // to hard-assert: a regression exits non-zero.
    let primary = regimes[0].0;
    for &intensity in &INTENSITIES {
        for predictor in [Placer::Greedy, Placer::Evolution] {
            let p = cell_for(&cells, primary, intensity, predictor);
            for naive in [Placer::Random, Placer::RoundRobin] {
                let n = cell_for(&cells, primary, intensity, naive);
                assert!(
                    p.jobs_per_sec > n.jobs_per_sec,
                    "{predictor} must beat {naive} on jobs/sec at {primary}/{intensity}: \
                     {:.2} vs {:.2}",
                    p.jobs_per_sec,
                    n.jobs_per_sec
                );
                assert!(
                    p.p99_ms < n.p99_ms,
                    "{predictor} must beat {naive} on p99 at {primary}/{intensity}: \
                     {:.2} vs {:.2}",
                    p.p99_ms,
                    n.p99_ms
                );
            }
        }
    }
    let evolution_wins = cells
        .iter()
        .filter(|c| c.placer == Placer::Evolution)
        .any(|c| {
            let greedy = cell_for(&cells, c.regime, c.intensity, Placer::Greedy);
            c.report.jobs_per_sec >= greedy.jobs_per_sec
        });
    assert!(
        evolution_wins,
        "evolution must match or beat greedy goodput on at least one regime"
    );
    println!(
        "acceptance bars hold: predictor-driven placers beat both baselines on jobs/sec \
         and p99; evolution >= greedy on at least one regime"
    );

    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    // No serde_json in the offline workspace; hand-rolled like the other
    // BENCH_*.json writers.
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"fleet_schedule\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"seed\": {SEED},\n"));
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str(&format!(
        "  \"trials\": {},\n",
        thread_counts.len() + 1 // digest-checked runs per cell
    ));
    json.push_str(&format!(
        "  \"devices\": {}, \"n_per_spec\": {n_per_spec},\n",
        cluster.len()
    ));
    json.push_str(&format!("  \"thread_counts\": {thread_counts:?},\n"));
    json.push_str("  \"results\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        let r = &cell.report;
        json.push_str(&format!(
            "    {{\"regime\": \"{}\", \"intensity\": {:.2}, \"placer\": \"{}\", \
             \"jobs\": {}, \"good\": {}, \"late\": {}, \"failed\": {}, \"shed\": {}, \
             \"migrations\": {}, \"jobs_per_sec\": {:.6}, \"p99_ms\": {:.6}, \
             \"span_ms\": {:.6}, \"avg_utilization\": {:.6}, \"breaker_opens\": {}, \
             \"breaker_closes\": {}, \"digest\": \"{:016x}\"}}",
            cell.regime,
            cell.intensity,
            cell.placer.name(),
            r.jobs,
            r.good,
            r.late,
            r.failed,
            r.shed,
            r.migrations,
            r.jobs_per_sec,
            r.p99_ms,
            r.span_ms,
            r.avg_utilization,
            r.breaker_opens,
            r.breaker_closes,
            r.digest,
        ));
        json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_fleet.json", &json).expect("write BENCH_fleet.json");
    println!("wrote BENCH_fleet.json ({} cells)", cells.len());
}
