//! **Chaos resilience sweep**: goodput, tail latency and shed rate of the
//! serving stack under seeded fault plans, resilient machinery on vs off.
//!
//! Each cell drives the same deterministic [`ChaosPlan`] through a private
//! serving engine twice: once with deadlines threaded into the deploy loop
//! and circuit breakers routing around sick accelerators (**resilient**),
//! once with the identical faults and workload but unconstrained deploys
//! (**baseline**). The gap between the columns is what the resilience layer
//! buys. Every run's digest is checked bit-for-bit across thread counts and
//! a rerun — the harness's determinism is part of what this experiment
//! certifies. Results are written to `BENCH_chaos.json`.
//!
//! Pass `--smoke` for a CI-sized run (smaller plan, fewer thread counts).

use heteromap_bench::TextTable;
use heteromap_chaos::{ChaosPlan, ChaosReport, ChaosRunner};

const SEED: u64 = 42;
const INTENSITIES: [f64; 4] = [0.0, 0.1, 0.3, 0.5];

struct Cell {
    intensity: f64,
    resilient: ChaosReport,
    baseline: ChaosReport,
}

/// Runs one mode at every thread count, asserting digest stability, and
/// returns the (identical) report.
fn run_stable(plan: ChaosPlan, resilient: bool, thread_counts: &[usize]) -> ChaosReport {
    let runner = ChaosRunner::new(plan, resilient);
    let reference = runner.run(thread_counts[0]);
    assert!(reference.fully_accounted(), "every request resolves");
    for &threads in &thread_counts[1..] {
        let report = runner.run(threads);
        assert_eq!(
            report.digest, reference.digest,
            "digest diverged at {threads} threads (resilient={resilient})"
        );
    }
    let rerun = runner.run(*thread_counts.last().expect("thread counts"));
    assert_eq!(
        rerun.digest, reference.digest,
        "digest diverged on rerun (resilient={resilient})"
    );
    reference
}

fn shed_rate(r: &ChaosReport) -> f64 {
    r.shed as f64 / r.requests as f64
}

fn main() {
    let args = heteromap_bench::apply_obs_flags(std::env::args().skip(1));
    let smoke = args.iter().any(|a| a == "--smoke");
    let thread_counts: &[usize] = if smoke { &[1, 4] } else { &[1, 4, 16] };
    let plan_for = |intensity: f64| {
        if smoke {
            ChaosPlan::smoke(SEED, intensity)
        } else {
            ChaosPlan::seeded(SEED, intensity)
        }
    };

    let probe = plan_for(0.0);
    println!(
        "chaos sweep: {} rounds x {} requests, episode length {}, seed {SEED}{}",
        probe.rounds,
        probe.requests_per_round,
        probe.episode_len,
        if smoke { " [smoke]" } else { "" },
    );
    println!("digests checked at {thread_counts:?} threads plus a rerun per cell\n");

    let cells: Vec<Cell> = INTENSITIES
        .iter()
        .map(|&intensity| {
            let plan = plan_for(intensity);
            let cell = Cell {
                intensity,
                resilient: run_stable(plan, true, thread_counts),
                baseline: run_stable(plan, false, thread_counts),
            };
            println!(
                "intensity {intensity:.1}: resilient goodput {:.3}, baseline {:.3}",
                cell.resilient.goodput_fraction(),
                cell.baseline.goodput_fraction(),
            );
            cell
        })
        .collect();

    let mut table = TextTable::new([
        "intensity",
        "mode",
        "good",
        "late",
        "failed",
        "shed",
        "goodput",
        "p99 ms",
        "opens",
        "closes",
    ]);
    for cell in &cells {
        for (mode, r) in [("resilient", &cell.resilient), ("baseline", &cell.baseline)] {
            table.row([
                format!("{:.1}", cell.intensity),
                mode.to_string(),
                r.good.to_string(),
                r.late.to_string(),
                r.failed.to_string(),
                r.shed.to_string(),
                format!("{:.3}", r.goodput_fraction()),
                format!("{:.2}", r.p99_ms),
                r.breaker_opens.to_string(),
                r.breaker_closes.to_string(),
            ]);
        }
    }
    println!("\n{}", table.render());

    // Acceptance bars (ISSUE 6): graceful degradation and a strictly worse
    // baseline under faults. These run on simulated time, so unlike
    // wall-clock benches they are stable enough to hard-assert.
    let fault_free = cells[0].resilient.goodput_fraction();
    for cell in &cells {
        assert_eq!(cell.baseline.shed, 0, "baseline never sheds");
        assert_eq!(cell.baseline.breaker_opens, 0, "baseline has no breakers");
        if cell.intensity == 0.0 {
            assert_eq!(cell.resilient.good, cell.resilient.requests);
            assert_eq!(cell.baseline.good, cell.baseline.requests);
            continue;
        }
        assert!(
            cell.resilient.good > cell.baseline.good,
            "resilient must strictly beat baseline at intensity {}",
            cell.intensity
        );
        if (cell.intensity - 0.3).abs() < 1e-9 {
            let floor = 0.7 * fault_free;
            assert!(
                cell.resilient.goodput_fraction() >= floor,
                "goodput {:.3} under the {floor:.3} floor at 30% intensity",
                cell.resilient.goodput_fraction()
            );
        }
    }
    println!("acceptance bars hold: graceful degradation, baseline strictly worse");

    // No serde_json in the offline workspace; hand-rolled like the other
    // BENCH_*.json writers.
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"chaos_resilience\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"seed\": {SEED},\n"));
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str(&format!(
        "  \"trials\": {},\n",
        thread_counts.len() + 1 // digest-checked runs per cell
    ));
    json.push_str(&format!(
        "  \"rounds\": {}, \"requests_per_round\": {}, \"episode_len\": {},\n",
        probe.rounds, probe.requests_per_round, probe.episode_len
    ));
    json.push_str(&format!("  \"thread_counts\": {thread_counts:?},\n"));
    json.push_str("  \"results\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        let row = |mode: &str, r: &ChaosReport| {
            format!(
                "    {{\"intensity\": {:.2}, \"mode\": \"{mode}\", \"requests\": {}, \
                 \"good\": {}, \"late\": {}, \"failed\": {}, \"shed\": {}, \
                 \"goodput\": {:.6}, \"shed_rate\": {:.6}, \"p99_ms\": {:.6}, \
                 \"breaker_opens\": {}, \"breaker_closes\": {}, \"digest\": \"{:016x}\"}}",
                cell.intensity,
                r.requests,
                r.good,
                r.late,
                r.failed,
                r.shed,
                r.goodput_fraction(),
                shed_rate(r),
                r.p99_ms,
                r.breaker_opens,
                r.breaker_closes,
                r.digest,
            )
        };
        json.push_str(&row("resilient", &cell.resilient));
        json.push_str(",\n");
        json.push_str(&row("baseline", &cell.baseline));
        json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_chaos.json", &json).expect("write BENCH_chaos.json");
    println!("wrote BENCH_chaos.json ({} intensity cells)", cells.len());
}
