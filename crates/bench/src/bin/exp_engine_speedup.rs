//! **Engine speedup**: the persistent-pool execution engine vs the seed's
//! spawn-per-call scoped threads, across all nine kernels on small and
//! medium dataset surrogates.
//!
//! Every parallel region in the seed spawned and joined fresh OS threads —
//! once per BFS level, twice per PageRank iteration — so on the graph sizes
//! the bench suite uses, thread churn dominated edge work and contaminated
//! both the figure reproductions and the autotuner's cost measurements.
//! This experiment quantifies the recovered headroom: per-kernel ns/edge
//! under both engines at the same thread count, a per-combination speedup,
//! and the median speedup across the suite. Results are written to
//! `BENCH_kernels.json` (the perf trajectory's first baseline artifact).

use heteromap_bench::TextTable;
use heteromap_graph::datasets::Dataset;
use heteromap_graph::CsrGraph;
use heteromap_kernels::{ExecEngine, KernelRunner};
use heteromap_model::Workload;
use std::time::Instant;

/// Threads per kernel invocation. The pool parks this many workers once;
/// the baseline spawns them anew inside every parallel region.
const THREADS: usize = 8;
/// Timed repetitions per (workload, graph, engine); the median is reported.
const REPS: usize = 7;

struct Row {
    workload: Workload,
    graph: &'static str,
    edges: usize,
    pooled_ns_edge: f64,
    spawn_ns_edge: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.spawn_ns_edge / self.pooled_ns_edge
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let mid = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[mid]
    } else {
        (xs[mid - 1] + xs[mid]) / 2.0
    }
}

/// Median wall-clock nanoseconds for `runner.run(workload, graph)`.
fn measure(runner: &KernelRunner, workload: Workload, graph: &CsrGraph) -> f64 {
    // One warmup: faults in caches, grows the pool, builds the cached
    // transpose so both engines amortize it identically.
    let _ = runner.run(workload, graph);
    let samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let start = Instant::now();
            let run = runner.run(workload, graph);
            let ns = start.elapsed().as_nanos() as f64;
            assert!(run.output.checksum().is_finite());
            ns
        })
        .collect();
    median(samples)
}

fn main() {
    heteromap_bench::apply_obs_flags(std::env::args().skip(1));
    let graphs: Vec<(&'static str, CsrGraph)> = vec![
        ("road-small", Dataset::UsaCal.surrogate_graph(800, 7)),
        ("road-medium", Dataset::UsaCal.surrogate_graph(2_500, 7)),
        ("social-small", Dataset::LiveJournal.surrogate_graph(800, 7)),
        (
            "social-medium",
            Dataset::LiveJournal.surrogate_graph(2_500, 7),
        ),
    ];
    let pooled = KernelRunner::new(THREADS).with_pagerank_iterations(5);
    let spawn = pooled.with_engine(ExecEngine::SpawnPerCall);

    println!(
        "Engine speedup: pooled vs spawn-per-call, {THREADS} threads, \
         median of {REPS} reps\n"
    );
    let mut rows: Vec<Row> = Vec::new();
    for (tag, graph) in &graphs {
        for w in Workload::all() {
            let edges = graph.edge_count().max(1);
            let pooled_ns = measure(&pooled, w, graph);
            let spawn_ns = measure(&spawn, w, graph);
            rows.push(Row {
                workload: w,
                graph: tag,
                edges,
                pooled_ns_edge: pooled_ns / edges as f64,
                spawn_ns_edge: spawn_ns / edges as f64,
            });
        }
    }

    let mut table = TextTable::new([
        "workload",
        "graph",
        "pooled ns/edge",
        "spawn ns/edge",
        "speedup",
    ]);
    for r in &rows {
        table.row([
            r.workload.to_string(),
            r.graph.to_string(),
            format!("{:.1}", r.pooled_ns_edge),
            format!("{:.1}", r.spawn_ns_edge),
            format!("{:.2}x", r.speedup()),
        ]);
    }
    println!("{}", table.render());

    let median_speedup = median(rows.iter().map(Row::speedup).collect());
    println!("median speedup (pooled vs spawn-per-call): {median_speedup:.2}x");

    // The workspace has no serde_json (offline vendoring); string fields go
    // through the shared heteromap-obs JSON writer.
    use heteromap_obs::json::escape;
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"engine_speedup\",\n");
    json.push_str(&format!("  \"threads\": {THREADS},\n"));
    json.push_str(&format!("  \"reps\": {REPS},\n"));
    json.push_str(&format!("  \"median_speedup\": {median_speedup:.4},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": {}, \"graph\": {}, \"edges\": {}, \
             \"pooled_ns_per_edge\": {:.4}, \"spawn_ns_per_edge\": {:.4}, \
             \"speedup\": {:.4}}}{}\n",
            escape(&r.workload.to_string()),
            escape(r.graph),
            r.edges,
            r.pooled_ns_edge,
            r.spawn_ns_edge,
            r.speedup(),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("\nwrote BENCH_kernels.json ({} result rows)", rows.len());
}
