//! Regenerates **Fig. 6: Discretization of (B) variables for
//! SSSP-Bellman-Ford** — the paper's worked example, value by value.

use heteromap_model::{BVector, Workload};

fn main() {
    println!("Fig. 6: SSSP-Bellman-Ford B-variable discretization\n");
    let b = BVector::sssp_bf_example();
    let rationale = [
        ("B1", "all program code parallelized by vertex division"),
        ("B2", "no pareto fronts"),
        ("B3", "no pareto-division"),
        ("B4", "no push-pop structures"),
        ("B5", "no reductions"),
        ("B6", "no floating-point operations"),
        ("B7", "D_tmp[], D[], W[] accessed via loop indexes"),
        ("B8", "no indirect accesses"),
        ("B9", "input graph W[] is read-only, ~half of program data"),
        ("B10", "distance arrays read-written by all threads"),
        ("B11", "local computations on D_tmp, ~20% of data"),
        ("B12", "locks only on D[], half the distance data"),
        ("B13", "two barrier calls per iteration"),
    ];
    for (k, (name, why)) in rationale.iter().enumerate() {
        println!("{:>4} = {:.1}  {}", name, b.get(k + 1), why);
    }
    assert_eq!(b, Workload::SsspBf.b_vector());
    println!(
        "\n(These values are the library's built-in profile for\n\
         Workload::SsspBf and match the paper's Fig. 6 exactly.)"
    );
}
