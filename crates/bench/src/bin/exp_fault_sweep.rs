//! **Fault-rate sweep**: completion time under increasingly flaky
//! accelerators, comparing three deployment strategies across all 81
//! benchmark-input combinations:
//!
//! * **HeteroMap + failover** — the full resilient scheduler: per-chunk
//!   prediction, transient retries with backoff, failover to the surviving
//!   accelerator;
//! * **GPU-only** — everything pinned to the GPU, retries but no failover
//!   target (the GPU's exhaustion is final);
//! * **Multicore-only** — the mirror image on the multicore.
//!
//! Both accelerators flake with the same per-attempt failure rate; the sweep
//! also reports the GPU-dead extreme. Single-accelerator deployments that
//! exhaust their retries never complete — their incompletions are counted
//! and excluded from the geomean, which is how real dashboards report
//! availability vs latency.

use heteromap::resilient::RetryPolicy;
use heteromap::HeteroMap;
use heteromap_accel::cost::WorkloadContext;
use heteromap_accel::{FaultPlan, MultiAcceleratorSystem};
use heteromap_bench::{all_combos, geomean, TextTable};
use heteromap_model::{Accelerator, MConfig};
use heteromap_predict::DecisionTree;

/// Outcome of one strategy at one fault rate: geomean time over completed
/// combos, plus how many of the 81 never completed.
struct SweepCell {
    geomean_ms: f64,
    incomplete: usize,
    retry_ms: f64,
}

fn cell(times: Vec<f64>, retry_ms: f64) -> SweepCell {
    let completed: Vec<f64> = times.iter().copied().filter(|t| t.is_finite()).collect();
    SweepCell {
        geomean_ms: if completed.is_empty() {
            f64::NAN
        } else {
            geomean(&completed)
        },
        incomplete: times.len() - completed.len(),
        retry_ms,
    }
}

/// The resilient HeteroMap scheduler on a faulty pair.
fn heteromap_failover(plan: FaultPlan, policy: RetryPolicy) -> SweepCell {
    let system = MultiAcceleratorSystem::primary().with_faults(plan);
    let hm = HeteroMap::new(system, Box::new(DecisionTree::paper())).with_retry_policy(policy);
    let mut retry_ms = 0.0;
    let times = all_combos()
        .into_iter()
        .map(|(w, d)| {
            let p = hm.schedule(w, d);
            retry_ms += p.attempts.retry_time_ms;
            p.report.time_ms
        })
        .collect();
    cell(times, retry_ms)
}

/// Everything pinned to one accelerator: retries, no failover target.
fn single_accelerator(plan: FaultPlan, policy: RetryPolicy, accel: Accelerator) -> SweepCell {
    let system = MultiAcceleratorSystem::primary().with_faults(plan);
    let default_cfg = match accel {
        Accelerator::Gpu => MConfig::gpu_default(),
        Accelerator::Multicore => MConfig::multicore_default(),
    };
    let mut retry_ms = 0.0;
    let times = all_combos()
        .into_iter()
        .map(|(w, d)| {
            let ctx = WorkloadContext::for_workload(w, d.stats());
            let mut charged = 0.0;
            for attempt in 0..policy.max_attempts.max(1) {
                match system.try_deploy_attempt(&ctx, &default_cfg, attempt) {
                    Ok(report) => {
                        retry_ms += charged;
                        return report.time_ms + charged;
                    }
                    Err(e) => {
                        if let heteromap_accel::DeployError::TransientFailure {
                            failed_after_ms,
                            ..
                        } = e
                        {
                            charged += failed_after_ms;
                            if attempt + 1 < policy.max_attempts {
                                charged += policy.backoff_ms(attempt + 1);
                            }
                        } else {
                            break; // Down/OOM: no failover target, give up.
                        }
                    }
                }
            }
            retry_ms += charged;
            f64::INFINITY
        })
        .collect();
    cell(times, retry_ms)
}

fn fmt_cell(c: &SweepCell) -> String {
    if c.geomean_ms.is_nan() {
        format!("-- ({} inc)", c.incomplete)
    } else if c.incomplete > 0 {
        format!("{:.1} ({} inc)", c.geomean_ms, c.incomplete)
    } else {
        format!("{:.1}", c.geomean_ms)
    }
}

fn main() {
    println!("Fault sweep: geomean completion time over 81 combos (ms)");
    println!("'N inc' = combinations that never completed (excluded from geomean)\n");
    let policy = RetryPolicy::default();

    let mut t = TextTable::new([
        "fault scenario",
        "HeteroMap+failover",
        "GPU-only",
        "Multicore-only",
    ]);
    let mut failover_retry_total = 0.0;
    for &rate in &[0.0, 0.1, 0.2, 0.4, 0.6, 0.8] {
        let plan = FaultPlan::transient(rate, 0xFA117);
        let hm = heteromap_failover(plan, policy);
        let gpu = single_accelerator(plan, policy, Accelerator::Gpu);
        let mc = single_accelerator(plan, policy, Accelerator::Multicore);
        failover_retry_total += hm.retry_ms;
        t.row([
            format!("transient p={rate:.1}"),
            fmt_cell(&hm),
            fmt_cell(&gpu),
            fmt_cell(&mc),
        ]);
    }
    // The hard-failure extremes.
    for (label, plan) in [
        ("GPU down", FaultPlan::gpu_down()),
        ("multicore down", FaultPlan::multicore_down()),
    ] {
        let hm = heteromap_failover(plan, policy);
        let gpu = single_accelerator(plan, policy, Accelerator::Gpu);
        let mc = single_accelerator(plan, policy, Accelerator::Multicore);
        t.row([
            label.to_string(),
            fmt_cell(&hm),
            fmt_cell(&gpu),
            fmt_cell(&mc),
        ]);
    }
    println!("{}", t.render());
    println!(
        "HeteroMap+failover charged {failover_retry_total:.2} ms of simulated \
         retry/backoff time in total across the sweep."
    );
    println!(
        "\nExpected shape: the failover scheduler completes all 81 combos at\n\
         every fault rate (time creeping up with retry charges), while the\n\
         single-accelerator baselines accumulate incompletions as rates rise\n\
         and lose every combination once their accelerator dies."
    );
}
