//! Regenerates **Table III: Synthetic Input Datasets** and the Fig. 9
//! synthetic benchmark examples used for offline training.

use heteromap_bench::TextTable;
use heteromap_predict::synth::{
    fig9_examples, SyntheticBenchmarks, SyntheticFamily, SyntheticInputs,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("Table III: Synthetic input datasets (sampled ranges)\n");
    let mut rng = StdRng::seed_from_u64(11);
    let gen = SyntheticInputs::table3();
    for family in [SyntheticFamily::UniformRandom, SyntheticFamily::Kronecker] {
        let mut vmin = u64::MAX;
        let mut vmax = 0;
        let mut emin = u64::MAX;
        let mut emax = 0;
        let mut dmin = f64::INFINITY;
        let mut dmax = 0.0f64;
        for _ in 0..500 {
            let s = gen.sample_stats(family, &mut rng);
            vmin = vmin.min(s.vertices);
            vmax = vmax.max(s.vertices);
            emin = emin.min(s.edges);
            emax = emax.max(s.edges);
            dmin = dmin.min(s.average_degree());
            dmax = dmax.max(s.average_degree());
        }
        println!(
            "{:?}: #V {:.1e}-{:.1e}  #E {:.1e}-{:.1e}  Avg.Deg {:.1}-{:.0}",
            family, vmin as f64, vmax as f64, emin as f64, emax as f64, dmin, dmax
        );
    }
    println!("(paper ranges: 16-65M vertices, 16-2B edges, avg degree 1-32K)\n");

    println!("Fig. 9: example generated synthetic benchmarks\n");
    for (k, ex) in fig9_examples().iter().enumerate() {
        println!("Example {}: B = {}", k + 1, ex.b);
    }

    println!("\nRandom phase-mix samples (B1-5 sum to 1 on the 0.1 grid):\n");
    let bench_gen = SyntheticBenchmarks::new();
    let mut t = TextTable::new(["#", "B-profile"]);
    for k in 0..6 {
        let s = bench_gen.sample(&mut rng);
        t.row([format!("{k}"), s.b.to_string()]);
    }
    println!("{}", t.render());
}
