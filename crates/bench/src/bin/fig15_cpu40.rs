//! Regenerates **Fig. 15: the 40-core CPU comparison** — geomean completion
//! time per benchmark (averaged over inputs) normalized to the GPU, for the
//! (GTX-750Ti, CPU-40) and (GTX-970, CPU-40) pairs, with HeteroMap on each.
//!
//! Usage: `fig15_cpu40 [train_samples]` (default 400).

use heteromap_accel::{AcceleratorSpec, MultiAcceleratorSystem};
use heteromap_bench::harness::SchedulerComparison;
use heteromap_bench::{geomean, TextTable};
use heteromap_model::Workload;
use heteromap_predict::Objective;

fn main() {
    let args = heteromap_bench::apply_obs_flags(std::env::args().skip(1));
    let samples: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(400);

    for gpu in [AcceleratorSpec::gtx_750ti(), AcceleratorSpec::gtx_970()] {
        let gpu_name = gpu.name;
        let system = MultiAcceleratorSystem::new(gpu, AcceleratorSpec::cpu_40core());
        heteromap_obs::diag("bench.progress", || {
            format!("re-learning Deep.128 for ({gpu_name}, CPU-40-Core)...")
        });
        let cmp = SchedulerComparison::run(&system, Objective::Performance, samples, 42);

        println!("--- Fig. 15 pair: {gpu_name} + CPU-40-Core ---");
        println!("(geomean per benchmark, normalized to the GPU run)\n");
        let mut t = TextTable::new(["benchmark", "CPU-40", "HeteroMap", "ideal"]);
        for w in Workload::all() {
            let rows = cmp.rows_for(w);
            let g = |f: &dyn Fn(&heteromap_bench::harness::ComboRow) -> f64| {
                geomean(&rows.iter().map(|r| f(r) / r.gpu_only).collect::<Vec<_>>())
            };
            t.row([
                w.abbrev().to_string(),
                format!("{:.2}", g(&|r| r.multicore_only)),
                format!("{:.2}", g(&|r| r.heteromap)),
                format!("{:.2}", g(&|r| r.ideal)),
            ]);
        }
        println!("{}", t.render());
        let (over_gpu, over_cpu, gap) = cmp.headline();
        println!(
            "headline: HeteroMap beats {gpu_name}-only by {over_gpu:.1}% and \
             CPU-only by {over_cpu:.1}%; {gap:.1}% from ideal.\n\
             (paper: gains of 22% over the GTX-750 and 5% over the GTX-970;\n\
             the 40-core CPU beats the GTX-750 slightly on average and the\n\
             GPUs win the highly parallel traversals.)\n"
        );
    }
}
