//! Ablation: autotuner evaluation budget vs optimality gap — the trade-off
//! behind the paper's "training takes several hours" OpenTuner pass — now
//! comparing the legacy coarse + hill-climb tuner and the `heteromap-tune`
//! ensemble in one table at matched budgets.

use heteromap_accel::cost::WorkloadContext;
use heteromap_accel::system::MultiAcceleratorSystem;
use heteromap_bench::{all_combos, geomean, TextTable};
use heteromap_predict::Autotuner;
use heteromap_tune::{EnsembleTuner, Strategy, TuneConfig};

fn main() {
    heteromap_bench::apply_obs_flags(std::env::args().skip(1));
    let sys = MultiAcceleratorSystem::primary();
    let combos = all_combos();
    let contexts: Vec<WorkloadContext> = combos
        .iter()
        .map(|&(w, d)| WorkloadContext::for_workload(w, d.stats()))
        .collect();
    // Reference: the exhaustive tuner.
    let reference: Vec<f64> = contexts
        .iter()
        .map(|ctx| {
            Autotuner::exhaustive()
                .tune(|c| sys.deploy(ctx, c).time_ms)
                .cost
        })
        .collect();

    println!("Ablation: autotuner budget vs optimality gap (81 combinations)\n");
    let mut t = TextTable::new(["tuner", "budget", "geomean gap(%)", "evals/combo"]);

    // Legacy coarse + hill-climb at its historical operating points.
    for (stride, budget) in [
        (31usize, 0usize),
        (31, 20),
        (7, 0),
        (7, 40),
        (3, 80),
        (1, 200),
    ] {
        let tuner = Autotuner::exhaustive()
            .with_coarse_stride(stride)
            .with_refine_budget(budget);
        let mut evals = 0usize;
        let gaps: Vec<f64> = contexts
            .iter()
            .zip(&reference)
            .map(|(ctx, &best)| {
                let r = tuner.tune(|c| sys.deploy(ctx, c).time_ms);
                evals += r.evaluations;
                r.cost / best
            })
            .collect();
        let mean_evals = evals / combos.len();
        t.row([
            format!("legacy s{stride}"),
            format!("{mean_evals}"),
            format!("{:.1}", (geomean(&gaps) - 1.0) * 100.0),
            mean_evals.to_string(),
        ]);
    }

    // The ensemble at matched total budgets.
    for budget in [60usize, 120, 240, 480] {
        let mut evals = 0usize;
        let gaps: Vec<f64> = contexts
            .iter()
            .zip(&reference)
            .enumerate()
            .map(|(k, (ctx, &best))| {
                let out = EnsembleTuner::new(
                    TuneConfig::default()
                        .with_budget(budget)
                        .with_seed(42 + k as u64)
                        .with_strategy(Strategy::Ensemble),
                )
                .tune(|c| sys.deploy(ctx, c).time_ms);
                evals += out.evaluations;
                out.cost / best
            })
            .collect();
        t.row([
            "ensemble".to_string(),
            budget.to_string(),
            format!("{:.1}", (geomean(&gaps) - 1.0) * 100.0),
            (evals / combos.len()).to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("Gap is relative to the full exhaustive + 200-step-refined tuner.");
    println!("See exp_tune_quality for the full budget x strategy sweep and BENCH_tune.json.");
}
