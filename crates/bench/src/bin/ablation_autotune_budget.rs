//! Ablation: autotuner refinement budget vs optimality gap — the trade-off
//! behind the paper's "training takes several hours" OpenTuner pass.

use heteromap_accel::cost::WorkloadContext;
use heteromap_accel::system::MultiAcceleratorSystem;
use heteromap_bench::{all_combos, geomean, TextTable};
use heteromap_predict::Autotuner;

fn main() {
    let sys = MultiAcceleratorSystem::primary();
    let combos = all_combos();
    // Reference: the exhaustive tuner.
    let reference: Vec<f64> = combos
        .iter()
        .map(|&(w, d)| {
            let ctx = WorkloadContext::for_workload(w, d.stats());
            Autotuner::exhaustive()
                .tune(|c| sys.deploy(&ctx, c).time_ms)
                .cost
        })
        .collect();

    println!("Ablation: autotuner budget vs optimality gap (81 combinations)\n");
    let mut t = TextTable::new([
        "coarse stride",
        "refine budget",
        "geomean gap(%)",
        "evals/combo",
    ]);
    for (stride, budget) in [
        (31usize, 0usize),
        (31, 20),
        (7, 0),
        (7, 40),
        (3, 80),
        (1, 200),
    ] {
        let tuner = Autotuner::exhaustive()
            .with_coarse_stride(stride)
            .with_refine_budget(budget);
        let mut evals = 0usize;
        let gaps: Vec<f64> = combos
            .iter()
            .zip(reference.iter())
            .map(|(&(w, d), &best)| {
                let ctx = WorkloadContext::for_workload(w, d.stats());
                let r = tuner.tune(|c| sys.deploy(&ctx, c).time_ms);
                evals += r.evaluations;
                r.cost / best
            })
            .collect();
        t.row([
            stride.to_string(),
            budget.to_string(),
            format!("{:.1}", (geomean(&gaps) - 1.0) * 100.0),
            (evals / combos.len()).to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("Gap is relative to the full exhaustive + 200-step-refined tuner.");
}
