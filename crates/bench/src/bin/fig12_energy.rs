//! Regenerates **Fig. 12: Energy benefits** — normalized energy per
//! benchmark (geomean across inputs) for the Xeon-Phi-only, GPU-only,
//! energy-trained HeteroMap, and ideal runs, all normalized to the maximum
//! energy of any combination, as in the paper.
//!
//! Usage: `fig12_energy [train_samples]` (default 400).

use heteromap::HeteroMap;
use heteromap_accel::system::MultiAcceleratorSystem;
use heteromap_bench::harness::SchedulerComparison;
use heteromap_bench::{geomean, TextTable};
use heteromap_model::Workload;
use heteromap_predict::Objective;

fn main() {
    let args = heteromap_bench::apply_obs_flags(std::env::args().skip(1));
    let samples: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(400);
    let system = MultiAcceleratorSystem::primary();
    heteromap_obs::diag("bench.progress", || {
        format!("training energy-objective Deep.128 on {samples} combinations...")
    });
    let hm = HeteroMap::train_deep_for(system.clone(), samples, 42, Objective::Energy);
    let cmp = SchedulerComparison::run_with(&system, Objective::Energy, &hm);

    // Normalize to the maximal energy of any B-I combination (paper).
    let max_energy = cmp
        .rows
        .iter()
        .flat_map(|r| [r.gpu_only, r.multicore_only, r.heteromap])
        .fold(0.0f64, f64::max);

    println!("Fig. 12: normalized energy per benchmark (geomean over inputs)\n");
    let mut t = TextTable::new(["benchmark", "XeonPhi", "GPU", "HeteroMap", "ideal"]);
    let mut totals = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for w in Workload::all() {
        let rows = cmp.rows_for(w);
        let g = |f: &dyn Fn(&heteromap_bench::harness::ComboRow) -> f64| {
            geomean(&rows.iter().map(|r| f(r) / max_energy).collect::<Vec<_>>())
        };
        let (phi, gpu, hm_e, ideal) = (
            g(&|r| r.multicore_only),
            g(&|r| r.gpu_only),
            g(&|r| r.heteromap),
            g(&|r| r.ideal),
        );
        totals.0.push(phi);
        totals.1.push(gpu);
        totals.2.push(hm_e);
        totals.3.push(ideal);
        t.row([
            w.abbrev().to_string(),
            format!("{phi:.3}"),
            format!("{gpu:.3}"),
            format!("{hm_e:.3}"),
            format!("{ideal:.3}"),
        ]);
    }
    t.row([
        "geomean".to_string(),
        format!("{:.3}", geomean(&totals.0)),
        format!("{:.3}", geomean(&totals.1)),
        format!("{:.3}", geomean(&totals.2)),
        format!("{:.3}", geomean(&totals.3)),
    ]);
    println!("{}", t.render());
    let vs_phi = geomean(&totals.0) / geomean(&totals.2);
    let vs_gpu = geomean(&totals.1) / geomean(&totals.2);
    println!(
        "energy benefit of HeteroMap: {vs_phi:.2}x over Phi-only, {vs_gpu:.2}x over\n\
         GPU-only (paper: ~2.4x over both, from (0.15, 0.16) down to 0.06).\n\
         Known deviation: with the paper's published TDPs (60 W GPU vs 300 W\n\
         Phi) and our calibrated ~31% performance headline, the GPU is\n\
         near-energy-optimal on most combinations, so the benefit over\n\
         GPU-only is small here; the benefit over the Phi reproduces\n\
         (see EXPERIMENTS.md)."
    );
}
