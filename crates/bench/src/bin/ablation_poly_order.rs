//! Ablation: regression polynomial order (the paper fits 7th order, noting
//! lower orders lack accuracy and higher orders cost more multiplications).
//!
//! Usage: `ablation_poly_order [train_samples]` (default 400).

use heteromap_accel::system::MultiAcceleratorSystem;
use heteromap_bench::TextTable;
use heteromap_predict::{Evaluator, Objective, RegressionPredictor, Trainer};

fn main() {
    let args = heteromap_bench::apply_obs_flags(std::env::args().skip(1));
    let samples: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(400);
    let system = MultiAcceleratorSystem::primary();
    heteromap_obs::diag("bench.progress", || {
        format!("generating {samples}-sample training database...")
    });
    let db = heteromap_bench::load_or_generate_database(&Trainer::new(system.clone()), samples, 42);
    let evaluator = Evaluator::new(system, Objective::Performance);

    println!("Ablation: regression order sweep (paper: 7th order fits best)\n");
    let mut t = TextTable::new([
        "order",
        "features",
        "train MSE",
        "SpeedUp vs GPU(%)",
        "Accuracy(%)",
        "Overhead(ms)",
    ]);
    for order in [1u32, 2, 3, 5, 7, 9] {
        let reg = RegressionPredictor::train(&db, order, 1e-4);
        let r = evaluator.evaluate(&reg);
        t.row([
            order.to_string(),
            (reg.flops_per_inference() / 20).to_string(),
            format!("{:.4}", reg.mse(&db)),
            format!("{:.1}", r.speedup_over_gpu_pct),
            format!("{:.1}", r.accuracy_pct),
            format!("{:.4}", r.overhead_ms),
        ]);
    }
    println!("{}", t.render());
}
