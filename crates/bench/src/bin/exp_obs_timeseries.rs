//! **Live telemetry acceptance**: the metrics registry's disabled-path
//! cost, the exposition round trip, drift-detector coverage, and digest
//! determinism with metrics enabled. Unlike `exp_obs_overhead`'s advisory
//! warning, every bar here is a **hard gate** — the process exits non-zero
//! when one trips, and CI runs the smoke profile on every push.
//!
//! 1. **Disabled-path overhead ≤ 1%.** The deploy funnel carries one
//!    relaxed-load metrics gate; sweeping all 81 (workload, dataset)
//!    combinations through `schedule_context` (trace off, metrics off)
//!    must cost within 1% of a gate-free baseline assembled from the
//!    uninstrumented components (`ivector` + `predict_config` + the raw
//!    `MultiAcceleratorSystem::deploy`).
//! 2. **Exposition round trip.** A chaos telemetry run's Prometheus text
//!    must parse back — through `obs`'s own parser — to exactly the
//!    samples the snapshot claims, and the JSON snapshot must parse
//!    through `obs::json`.
//! 3. **Drift coverage.** The detectors must flag **every** injected
//!    fault episode of a chaotic run and **zero** episodes of the calm
//!    regime (intensity 0), where both detector inputs are exactly 0.
//! 4. **Determinism.** Chaos and fleet digests — with metrics enabled and
//!    telemetry recording — must be bit-identical at 1, 4 and 16 threads,
//!    and the chaos run's whole exposition text must be too.
//!
//! Writes `BENCH_obs.json` (v2: adds `version`, `host_cpus`, `trials` and
//! the gate results; keeps `overhead_disabled` for the library acceptance
//! test) and `obs_exposition.prom` (the chaos run's exposition sample).
//!
//! Pass `--smoke` for the CI-sized run (fewer reps, smaller plans).

use heteromap::{AttemptLog, HeteroMap, Placement};
use heteromap_accel::cost::WorkloadContext;
use heteromap_bench::{all_combos, TextTable};
use heteromap_chaos::{ChaosPlan, ChaosRunner, ChaosTelemetry};
use heteromap_fleet::{Cluster, FleetSim, FleetTrace, Placer};
use heteromap_graph::GraphStats;
use heteromap_model::Workload;
use heteromap_obs::json;
use heteromap_obs::metrics::{parse_prometheus, samples};
use heteromap_obs::TraceLevel;
use std::time::Instant;

/// Thread counts every digest must agree across.
const THREADS: [usize; 3] = [1, 4, 16];

/// Full re-measurements of the overhead ratio before the gate gives up:
/// host noise only inflates a floor, so one clean attempt suffices.
const MAX_OVERHEAD_ATTEMPTS: usize = 5;

/// One timed repetition of the gated pipeline: the full 81-combination
/// sweep through `schedule_context`, `inner` times, with both the trace
/// and metrics gates compiled in (and off).
fn sweep_gated(hm: &HeteroMap, combos: &[(Workload, GraphStats)], inner: usize) -> f64 {
    let start = Instant::now();
    let mut sum = 0.0;
    for _ in 0..inner {
        for &(w, stats) in combos {
            let ctx = WorkloadContext::for_workload(w, stats);
            sum += hm.schedule_context(&ctx).report.time_ms;
        }
    }
    assert!(sum.is_finite() && sum > 0.0);
    start.elapsed().as_secs_f64() * 1e3
}

/// The gate-free twin: the exact fault-free fast path of
/// `deploy_predicted` — health check, raw system deploy, overhead charge,
/// clean-success attempt log, placement assembly — re-created from public
/// API so the only work it lacks is the two gates themselves (the trace
/// gate in `schedule_context`, the metrics gate in the deploy funnel).
fn sweep_baseline(hm: &HeteroMap, combos: &[(Workload, GraphStats)], inner: usize) -> f64 {
    let start = Instant::now();
    let mut sum = 0.0;
    for _ in 0..inner {
        for &(w, stats) in combos {
            let ctx = WorkloadContext::for_workload(w, stats);
            let i = hm.ivector(&ctx.stats);
            let predict_start = Instant::now();
            let (config, predictor_fallbacks) = hm.predict_config(&ctx.b, &i);
            let overhead_ms = predict_start.elapsed().as_secs_f64() * 1e3;
            assert!(hm.system().faults().is_all_healthy());
            let mut report = hm.system().deploy(&ctx, &config);
            report.time_ms += overhead_ms;
            let mut attempts = AttemptLog::clean_success(config.accelerator);
            attempts.predictor_fallbacks = predictor_fallbacks;
            let placement = std::hint::black_box(Placement {
                config,
                report,
                predictor_overhead_ms: overhead_ms,
                attempts,
            });
            sum += placement.report.time_ms;
        }
    }
    assert!(sum.is_finite() && sum > 0.0);
    start.elapsed().as_secs_f64() * 1e3
}

/// Min of `reps` timed repetitions (the noise floor of the variant).
fn min_of_reps(reps: usize, mut rep: impl FnMut() -> f64) -> f64 {
    let _ = rep(); // warmup: caches, lazy statics, registry handles
    (0..reps).map(|_| rep()).fold(f64::INFINITY, f64::min)
}

/// Gate 2: the exposition round trip on one telemetry run.
fn check_round_trip(telemetry: &ChaosTelemetry) -> (usize, String) {
    let snapshot = telemetry.hub().snapshot();
    let text = telemetry.prometheus_text();
    let expected = samples(&snapshot);
    let parsed = parse_prometheus(&text).expect("GATE: exposition must parse back");
    assert_eq!(
        parsed.len(),
        expected.len(),
        "GATE: parser recovered {} samples, snapshot claims {}",
        parsed.len(),
        expected.len()
    );
    for (have, want) in parsed.iter().zip(&expected) {
        assert_eq!(
            have, want,
            "GATE: exposition round trip diverged at sample {want:?}"
        );
    }
    let doc = json::parse(&telemetry.hub().snapshot_json())
        .expect("GATE: JSON snapshot must parse through obs::json");
    let series = doc
        .get("series")
        .and_then(json::Value::as_array)
        .expect("GATE: JSON snapshot must carry a series array");
    assert_eq!(
        series.len(),
        snapshot.len(),
        "GATE: JSON snapshot dropped series"
    );
    (expected.len(), text)
}

fn main() {
    let args = heteromap_bench::apply_obs_flags(std::env::args().skip(1));
    let smoke = args.iter().any(|a| a == "--smoke");
    let (reps, inner) = if smoke { (15, 5) } else { (60, 20) };
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!(
        "Live telemetry acceptance: {} combos x {inner} sweeps/rep, min of {reps} reps, \
         host_cpus={host_cpus}{}\n",
        all_combos().len(),
        if smoke { " [smoke]" } else { "" },
    );

    // ---- Gate 1: disabled-path overhead ------------------------------
    heteromap_obs::set_level(TraceLevel::Off);
    heteromap_obs::set_metrics_enabled(false);
    let combos: Vec<(Workload, GraphStats)> = all_combos()
        .into_iter()
        .map(|(w, d)| (w, d.stats()))
        .collect();
    let hm = HeteroMap::with_decision_tree();
    // A 1% wall-clock gate on ~1 ms units needs two defenses against a
    // shared, single-CPU host. First, interleave the variants rep-by-rep,
    // so a load burst inflates both floors instead of silently biasing
    // whichever variant it landed on. Second, retry the whole measurement:
    // the binary's true gate cost is fixed, noise can only *inflate* a
    // min-of-reps floor, so the lowest attempt is the sharpest estimate —
    // while a real regression exceeds the budget on every attempt.
    let _ = sweep_baseline(&hm, &combos, inner);
    let _ = sweep_gated(&hm, &combos, inner);
    let (mut baseline_ms, mut disabled_ms) = (f64::INFINITY, f64::INFINITY);
    let mut overhead_disabled = f64::INFINITY;
    for attempt in 1..=MAX_OVERHEAD_ATTEMPTS {
        let (mut b, mut d) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..reps {
            b = b.min(sweep_baseline(&hm, &combos, inner));
            d = d.min(sweep_gated(&hm, &combos, inner));
        }
        if d / b - 1.0 < overhead_disabled {
            overhead_disabled = d / b - 1.0;
            (baseline_ms, disabled_ms) = (b, d);
        }
        if overhead_disabled <= 0.01 {
            break;
        }
        println!(
            "  attempt {attempt}: overhead {:+.2}% over budget, retrying",
            (d / b - 1.0) * 100.0
        );
    }
    // For the record (not gated): the price of actually recording.
    heteromap_obs::set_metrics_enabled(true);
    let enabled_ms = min_of_reps(reps, || sweep_gated(&hm, &combos, inner));
    heteromap_obs::set_metrics_enabled(false);

    let overhead_enabled = enabled_ms / baseline_ms - 1.0;
    let mut table = TextTable::new(["variant", "min ms/rep", "overhead"]);
    table.row([
        "baseline (gate-free)".into(),
        format!("{baseline_ms:.3}"),
        "-".into(),
    ]);
    table.row([
        "metrics disabled".into(),
        format!("{disabled_ms:.3}"),
        format!("{:+.2}%", overhead_disabled * 100.0),
    ]);
    table.row([
        "metrics enabled".into(),
        format!("{enabled_ms:.3}"),
        format!("{:+.2}%", overhead_enabled * 100.0),
    ]);
    println!("{}", table.render());
    assert!(
        overhead_disabled <= 0.01,
        "GATE: disabled-path overhead {:.3}% exceeds the 1% budget",
        overhead_disabled * 100.0
    );

    // ---- Gates 2-3: round trip + drift coverage ----------------------
    let (chaos_seed, intensity) = (42u64, 0.7);
    let chaotic_plan = if smoke {
        ChaosPlan::smoke(chaos_seed, intensity)
    } else {
        ChaosPlan::seeded(chaos_seed, intensity)
    };
    let calm_plan = if smoke {
        ChaosPlan::smoke(chaos_seed, 0.0)
    } else {
        ChaosPlan::seeded(chaos_seed, 0.0)
    };
    let chaotic = ChaosRunner::new(chaotic_plan, true).run_telemetry(4);
    let calm = ChaosRunner::new(calm_plan, true).run_telemetry(4);

    let (roundtrip_samples, exposition) = check_round_trip(&chaotic);
    println!(
        "exposition round trip: {roundtrip_samples} samples, {} bytes of text",
        exposition.len()
    );

    let faulty = chaotic.faulty_episodes.len();
    let flagged_faulty = faulty
        - chaotic
            .faulty_episodes
            .iter()
            .filter(|e| chaotic.flagged_episodes.binary_search(e).is_err())
            .count();
    let coverage = chaotic.coverage();
    println!(
        "drift: {flagged_faulty}/{faulty} faulty episodes flagged (coverage {:.0}%), \
         {} signals, calm run flagged {:?}",
        coverage * 100.0,
        chaotic.signals.len(),
        calm.flagged_episodes
    );
    assert!(faulty > 0, "GATE: the chaotic plan must inject faults");
    assert!(
        coverage >= 1.0,
        "GATE: detectors missed faulty episodes: flagged {:?} of {:?}",
        chaotic.flagged_episodes,
        chaotic.faulty_episodes
    );
    assert!(
        calm.flagged_episodes.is_empty() && calm.signals.is_empty(),
        "GATE: calm regime false positives: {:?}",
        calm.flagged_episodes
    );

    // ---- Gate 4: determinism with metrics enabled --------------------
    heteromap_obs::set_metrics_enabled(true);
    let chaos_runner = ChaosRunner::new(chaotic_plan, true);
    let chaos_runs: Vec<ChaosTelemetry> = THREADS
        .iter()
        .map(|&t| chaos_runner.run_telemetry(t))
        .collect();
    let fleet_sim = FleetSim::new(
        FleetTrace::smoke(chaos_seed, 0.6),
        Cluster::uniform(if smoke { 2 } else { 4 }),
        Placer::Greedy,
    );
    let fleet_digests: Vec<u64> = THREADS.iter().map(|&t| fleet_sim.run(t).digest).collect();
    heteromap_obs::set_metrics_enabled(false);
    for (i, run) in chaos_runs.iter().enumerate().skip(1) {
        assert_eq!(
            run.report.digest, chaos_runs[0].report.digest,
            "GATE: chaos digest diverged at {} threads",
            THREADS[i]
        );
        assert_eq!(
            run.prometheus_text(),
            chaos_runs[0].prometheus_text(),
            "GATE: chaos exposition diverged at {} threads",
            THREADS[i]
        );
        assert_eq!(
            fleet_digests[i], fleet_digests[0],
            "GATE: fleet digest diverged at {} threads",
            THREADS[i]
        );
    }
    println!(
        "determinism: chaos digest {:#018x} and fleet digest {:#018x} stable across {THREADS:?} \
         threads with metrics enabled",
        chaos_runs[0].report.digest, fleet_digests[0]
    );

    // ---- Artifacts ---------------------------------------------------
    std::fs::write("obs_exposition.prom", &exposition).expect("write obs_exposition.prom");

    use heteromap_obs::json::num;
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"obs_timeseries\",\n");
    out.push_str("  \"version\": 2,\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    out.push_str(&format!("  \"trials\": {reps},\n"));
    out.push_str(&format!("  \"combinations\": {},\n", combos.len()));
    out.push_str(&format!("  \"sweeps_per_rep\": {inner},\n"));
    out.push_str(&format!("  \"baseline_ms\": {},\n", num(baseline_ms)));
    out.push_str(&format!("  \"disabled_ms\": {},\n", num(disabled_ms)));
    out.push_str(&format!("  \"enabled_ms\": {},\n", num(enabled_ms)));
    out.push_str(&format!(
        "  \"overhead_disabled\": {},\n",
        num(overhead_disabled)
    ));
    out.push_str(&format!(
        "  \"overhead_enabled\": {},\n",
        num(overhead_enabled)
    ));
    out.push_str(&format!("  \"roundtrip_samples\": {roundtrip_samples},\n"));
    out.push_str(&format!("  \"faulty_episodes\": {faulty},\n"));
    out.push_str(&format!("  \"drift_coverage\": {},\n", num(coverage)));
    out.push_str(&format!(
        "  \"calm_false_positives\": {},\n",
        calm.flagged_episodes.len()
    ));
    out.push_str(&format!(
        "  \"chaos_digest\": \"{:#018x}\",\n",
        chaos_runs[0].report.digest
    ));
    out.push_str(&format!(
        "  \"fleet_digest\": \"{:#018x}\",\n",
        fleet_digests[0]
    ));
    out.push_str("  \"exposition_file\": \"obs_exposition.prom\"\n");
    out.push_str("}\n");
    json::parse(&out).expect("artifact must be valid JSON");
    std::fs::write("BENCH_obs.json", &out).expect("write BENCH_obs.json");
    println!("\nall gates hold; wrote BENCH_obs.json (v2) and obs_exposition.prom");
}
