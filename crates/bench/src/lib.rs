//! Shared harness for the table/figure regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure from the paper
//! (see DESIGN.md §4 for the index); this library holds the pieces they
//! share: geometric means, fixed-width table printing, and the standard
//! evaluation grids.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod harness;

use heteromap_graph::datasets::Dataset;
use heteromap_model::Workload;
use heteromap_predict::persist::read_database_file_lenient;
use heteromap_predict::{Trainer, TrainingSet};

/// Environment variable naming a persisted profiler database to reuse in
/// place of regenerating synthetic training data.
pub const DB_ENV_VAR: &str = "HETEROMAP_DB";

/// Obtains a training database for a bench binary or example.
///
/// When [`DB_ENV_VAR`] names a persisted profiler database, it is read
/// *leniently* and any skipped corrupt rows are reported as structured
/// `db.lenient_skip` diagnostics (mirrored to stderr unless
/// [`heteromap_obs::quiet`]) — a silently shrunken database would
/// misattribute learner quality to clean data. Otherwise `samples`
/// autotuned synthetic combinations are generated with `trainer` (the
/// Fig. 9 flow).
///
/// # Panics
///
/// Panics if the named file cannot be opened or is not a profiler database
/// at all (individually corrupt rows are skipped, not fatal).
pub fn load_or_generate_database(trainer: &Trainer, samples: usize, seed: u64) -> TrainingSet {
    match std::env::var(DB_ENV_VAR) {
        Ok(path) if !path.is_empty() => {
            let lenient = read_database_file_lenient(&path)
                .unwrap_or_else(|e| panic!("{DB_ENV_VAR}={path}: {e}"));
            if let Some(summary) = lenient.skip_summary() {
                heteromap_obs::diag("db.lenient_skip", || format!("path={path} {summary}"));
            }
            heteromap_obs::diag("db.loaded", || {
                format!("path={path} rows={}", lenient.set.len())
            });
            lenient.set
        }
        _ => trainer.generate_database(samples, seed),
    }
}

/// Applies the standard bench CLI flags to the observability layer and
/// returns the remaining arguments: `--quiet` suppresses the diagnostic
/// stderr mirror, `--trace=LEVEL` overrides `HETEROMAP_TRACE`.
pub fn apply_obs_flags(args: impl IntoIterator<Item = String>) -> Vec<String> {
    args.into_iter()
        .filter(|arg| {
            if arg == "--quiet" {
                heteromap_obs::set_quiet(true);
                false
            } else if let Some(level) = arg.strip_prefix("--trace=") {
                heteromap_obs::set_level(heteromap_obs::TraceLevel::from_env_str(level));
                false
            } else {
                true
            }
        })
        .collect()
}

/// Geometric mean of positive values (the paper's aggregate of choice).
///
/// # Panics
///
/// Panics if any value is non-positive.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let ln_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (ln_sum / values.len() as f64).exp()
}

/// All 81 benchmark-input combinations in row-major (workload-major) order.
pub fn all_combos() -> Vec<(Workload, Dataset)> {
    Workload::all()
        .into_iter()
        .flat_map(|w| Dataset::all().into_iter().map(move |d| (w, d)))
        .collect()
}

/// A fixed-width text table builder for figure/table output.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (c, h) in self.header.iter().enumerate() {
            widths[c] = widths[c].max(h.len());
        }
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(c, cell)| format!("{:>w$}", cell, w = widths[c]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        if !self.header.is_empty() {
            out.push_str(&fmt_row(&self.header, &widths));
            out.push('\n');
            out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 2 decimals (table cells).
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a percentage with 1 decimal.
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_equal_values_is_the_value() {
        assert!((geomean(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_is_between_min_and_max() {
        let g = geomean(&[1.0, 100.0]);
        assert!((g - 10.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_of_empty_is_zero() {
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    fn all_combos_is_81() {
        assert_eq!(all_combos().len(), 81);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["a", "1.00"]);
        t.row(["longer", "2.50"]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(pct(31.04), "31.0%");
    }

    #[test]
    fn obs_flags_are_stripped_and_applied() {
        let rest = apply_obs_flags(["--quiet", "--trace=off", "--quick"].map(String::from));
        assert_eq!(rest, vec!["--quick".to_string()]);
        assert!(heteromap_obs::quiet());
        heteromap_obs::set_quiet(false);
    }
}
