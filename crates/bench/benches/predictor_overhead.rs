//! Criterion bench: per-inference latency of every predictor — the
//! "Overhead (ms)" column of Table IV, measured natively.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use heteromap_accel::system::MultiAcceleratorSystem;
use heteromap_graph::datasets::{Dataset, LiteratureMaxima};
use heteromap_model::{Grid, IVector, Workload};
use heteromap_predict::nn::TrainConfig;
use heteromap_predict::{
    AdaptiveLibrary, DecisionTree, NeuralPredictor, Predictor, RegressionPredictor, Trainer,
};

fn bench_predictors(c: &mut Criterion) {
    // A small training database is enough to materialize the models; the
    // inference cost does not depend on training size.
    let trainer = Trainer::new(MultiAcceleratorSystem::primary());
    let db = trainer.generate_database(60, 42);
    let b = Workload::SsspDelta.b_vector();
    let i = IVector::from_stats(
        &Dataset::LiveJournal.stats(),
        &LiteratureMaxima::paper(),
        Grid::PAPER,
    );

    let mut group = c.benchmark_group("predictor_overhead");
    let tree = DecisionTree::paper();
    group.bench_function("decision_tree", |bench| {
        bench.iter(|| tree.predict(black_box(&b), black_box(&i)))
    });
    let linear = RegressionPredictor::train_linear(&db);
    group.bench_function("linear_regression", |bench| {
        bench.iter(|| linear.predict(black_box(&b), black_box(&i)))
    });
    let multi = RegressionPredictor::train_multi(&db);
    group.bench_function("multi_regression_o7", |bench| {
        bench.iter(|| multi.predict(black_box(&b), black_box(&i)))
    });
    let adaptive = AdaptiveLibrary::train(&db);
    group.bench_function("adaptive_library", |bench| {
        bench.iter(|| adaptive.predict(black_box(&b), black_box(&i)))
    });
    for hidden in [16, 32, 64, 128] {
        let nn = NeuralPredictor::train(
            &db,
            TrainConfig {
                hidden,
                epochs: 5,
                ..TrainConfig::default()
            },
        );
        group.bench_function(format!("deep_{hidden}"), |bench| {
            bench.iter(|| nn.predict(black_box(&b), black_box(&i)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_predictors);
criterion_main!(benches);
