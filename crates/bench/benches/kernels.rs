//! Criterion bench: the nine real graph kernels on dataset surrogates, at
//! one and several threads — the host-execution counterpart of the paper's
//! workload suite.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use heteromap_graph::datasets::Dataset;
use heteromap_kernels::KernelRunner;
use heteromap_model::Workload;

fn bench_kernels(c: &mut Criterion) {
    // Moderate surrogates keep bench wall-time sane while exercising the
    // real parallel code paths.
    let road = Dataset::UsaCal.surrogate_graph(4_000, 7);
    let social = Dataset::LiveJournal.surrogate_graph(4_000, 7);

    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);
    for w in Workload::all() {
        for (graph, tag) in [(&road, "road"), (&social, "social")] {
            for threads in [1usize, 4] {
                let runner = KernelRunner::new(threads).with_pagerank_iterations(5);
                group.bench_with_input(
                    BenchmarkId::new(format!("{w}/{tag}"), threads),
                    &threads,
                    |b, _| b.iter(|| black_box(runner.run(w, graph).output.checksum())),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
