//! Criterion bench: the nine real graph kernels on dataset surrogates, at
//! one and several threads — the host-execution counterpart of the paper's
//! workload suite. The multi-threaded configuration is measured on both
//! execution engines (persistent pool vs spawn-per-call scoped threads), so
//! the before/after of the engine rework stays visible in every report.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use heteromap_graph::datasets::Dataset;
use heteromap_kernels::{ExecEngine, KernelRunner};
use heteromap_model::Workload;

fn bench_kernels(c: &mut Criterion) {
    // Moderate surrogates keep bench wall-time sane while exercising the
    // real parallel code paths.
    let road = Dataset::UsaCal.surrogate_graph(4_000, 7);
    let social = Dataset::LiveJournal.surrogate_graph(4_000, 7);

    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);
    for w in Workload::all() {
        for (graph, tag) in [(&road, "road"), (&social, "social")] {
            // Single-threaded: engines are identical (inline execution).
            let runner = KernelRunner::new(1).with_pagerank_iterations(5);
            group.bench_with_input(
                BenchmarkId::new(format!("{w}/{tag}"), 1),
                &1usize,
                |b, _| b.iter(|| black_box(runner.run(w, graph).output.checksum())),
            );
            // Multi-threaded: pooled (the default) vs the legacy
            // spawn-per-call baseline.
            for (engine, engine_tag) in [
                (ExecEngine::Pooled, "4-pooled"),
                (ExecEngine::SpawnPerCall, "4-spawn"),
            ] {
                let runner = KernelRunner::new(4)
                    .with_pagerank_iterations(5)
                    .with_engine(engine);
                group.bench_with_input(
                    BenchmarkId::new(format!("{w}/{tag}"), engine_tag),
                    &engine_tag,
                    |b, _| b.iter(|| black_box(runner.run(w, graph).output.checksum())),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
