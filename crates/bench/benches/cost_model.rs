//! Criterion bench: single-evaluation latency of the analytical cost model
//! and of a full autotuning pass — the quantities that bound offline
//! database-generation throughput (§V "training takes several hours" on the
//! paper's setup).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use heteromap_accel::cost::WorkloadContext;
use heteromap_accel::system::MultiAcceleratorSystem;
use heteromap_graph::datasets::Dataset;
use heteromap_model::{MConfig, Workload};
use heteromap_predict::Autotuner;

fn bench_cost_model(c: &mut Criterion) {
    let sys = MultiAcceleratorSystem::primary();
    let ctx = WorkloadContext::for_workload(Workload::SsspDelta, Dataset::LiveJournal.stats());
    let gpu = MConfig::gpu_default();
    let mc = MConfig::multicore_default();

    c.bench_function("cost_model/deploy_gpu", |b| {
        b.iter(|| black_box(sys.deploy(black_box(&ctx), black_box(&gpu)).time_ms))
    });
    c.bench_function("cost_model/deploy_multicore", |b| {
        b.iter(|| black_box(sys.deploy(black_box(&ctx), black_box(&mc)).time_ms))
    });

    let mut group = c.benchmark_group("autotune");
    group.sample_size(10);
    group.bench_function("fast_pass", |b| {
        b.iter(|| {
            black_box(
                Autotuner::fast()
                    .tune(|cfg| sys.deploy(&ctx, cfg).time_ms)
                    .cost,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cost_model);
criterion_main!(benches);
