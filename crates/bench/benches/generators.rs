//! Criterion bench: synthetic graph generation throughput (the training
//! input pipeline of Table III).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use heteromap_graph::gen::{GraphGenerator, Grid, Kronecker, PowerLaw, RMat, UniformRandom};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(20);
    group.bench_function("uniform_random_10k", |b| {
        let g = UniformRandom::new(10_000, 80_000);
        b.iter(|| black_box(g.generate(1).edge_count()))
    });
    group.bench_function("kronecker_2^13", |b| {
        let g = Kronecker::new(13, 8.0);
        b.iter(|| black_box(g.generate(1).edge_count()))
    });
    group.bench_function("rmat_2^13", |b| {
        let g = RMat::new(13, 8.0, 0.45, 0.25, 0.15);
        b.iter(|| black_box(g.generate(1).edge_count()))
    });
    group.bench_function("grid_100x100", |b| {
        let g = Grid::new(100, 100);
        b.iter(|| black_box(g.generate(1).edge_count()))
    });
    group.bench_function("power_law_10k", |b| {
        let g = PowerLaw::new(10_000, 4);
        b.iter(|| black_box(g.generate(1).edge_count()))
    });
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
