//! Golden-file test pinning the Prometheus text exposition byte-for-byte.
//!
//! The in-crate unit tests check the exposition *round-trips* through the
//! crate's own parser, which would not catch a format drift that both the
//! writer and the parser agree on (a changed escape, a reordered label, a
//! different float rendering). This test freezes the exact bytes a fixed
//! recording produces — label escaping of quotes/backslashes/newlines,
//! `le`-labelled cumulative buckets with the `+Inf` terminator, and the
//! `_sum`/`_count` companion series — against a committed golden file.
//!
//! To regenerate after an *intentional* format change:
//! `UPDATE_GOLDEN=1 cargo test -p heteromap-obs --test golden_exposition`

use heteromap_obs::metrics::{prometheus_text, MetricsHub};
use std::path::PathBuf;

/// Explicit bounds so every `le` bucket of the golden file is hand-checkable.
static BOUNDS_MS: [f64; 4] = [1.0, 5.0, 25.0, 100.0];

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("exposition.prom")
}

/// One fixed recording exercising every exposition feature at once.
fn build_fixture() -> MetricsHub {
    let hub = MetricsHub::new();

    // Counters: two label sets under one name (single HELP/TYPE header),
    // with label values that need every escape the spec defines.
    let fast = hub.counter(
        "jobs_total",
        &[("queue", "fast\"lane"), ("tier", "a\\b")],
        "Jobs processed per queue",
    );
    let slow = hub.counter(
        "jobs_total",
        &[("queue", "slow\nlane"), ("tier", "plain")],
        "Jobs processed per queue",
    );
    fast.add(7);
    slow.inc();

    // A bare gauge (no labels) with a fractional value.
    let depth = hub.gauge("queue_depth", &[], "Requests waiting in the queue");
    depth.set(3.5);

    // The dynamic-graph engine's counters: mid-run re-predictions by
    // trigger and live migrations by destination accelerator. Frozen here
    // so drift dashboards can rely on the exact series names
    // `heteromap-dyngraph`'s telemetry registers.
    let repred_drift = hub.counter(
        "dyn_repredictions_total",
        &[("trigger", "drift")],
        "Mid-run re-predictions by trigger",
    );
    let repred_ivar = hub.counter(
        "dyn_repredictions_total",
        &[("trigger", "ivar")],
        "Mid-run re-predictions by trigger",
    );
    let migrations = hub.counter(
        "dyn_migrations_total",
        &[("to", "multicore")],
        "Live migrations by destination accelerator",
    );
    repred_drift.add(2);
    repred_ivar.inc();
    migrations.inc();

    // A histogram covering: empty buckets, interior buckets, and two
    // overflow samples that only the +Inf bucket catches.
    let latency = hub.histogram(
        "latency_ms",
        &[("path", "warm")],
        "End-to-end request latency",
        &BOUNDS_MS,
    );
    for v in [0.5, 2.0, 2.0, 30.0, 250.0, 1000.0] {
        latency.record(v);
    }

    hub.roll();
    hub
}

#[test]
fn exposition_matches_the_committed_golden_file() {
    let hub = build_fixture();
    let text = prometheus_text(&hub.snapshot());
    let path = golden_path();

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &text).expect("write golden file");
        return;
    }

    let golden = std::fs::read_to_string(&path)
        .expect("golden file missing - run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        text, golden,
        "Prometheus exposition drifted from {path:?}; if the change is \
         intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_file_spot_checks() {
    // Independent of byte equality: the committed file must carry the
    // structural features the golden test exists to protect.
    let golden = std::fs::read_to_string(golden_path())
        .expect("golden file missing - run with UPDATE_GOLDEN=1 to create it");
    for needle in [
        "# TYPE jobs_total counter",
        "queue=\"fast\\\"lane\"", // escaped quote
        "tier=\"a\\\\b\"",        // escaped backslash
        "queue=\"slow\\nlane\"",  // escaped newline
        "# TYPE latency_ms histogram",
        "le=\"+Inf\"",
        "latency_ms_sum{",
        "latency_ms_count{",
        // Dynamic-engine series: re-prediction and migration events.
        "# TYPE dyn_repredictions_total counter",
        "dyn_repredictions_total{trigger=\"drift\"} 2",
        "dyn_repredictions_total{trigger=\"ivar\"} 1",
        "dyn_migrations_total{to=\"multicore\"} 1",
    ] {
        assert!(golden.contains(needle), "golden file lost {needle:?}");
    }
    // Exactly one HELP/TYPE header per metric name, counters included.
    assert_eq!(golden.matches("# TYPE jobs_total counter").count(), 1);
    // Cumulative buckets: one line per bound plus the +Inf terminator.
    assert_eq!(
        golden.matches("latency_ms_bucket{").count(),
        BOUNDS_MS.len() + 1
    );
}
