//! Global tracing configuration: level, quiet flag, and the environment
//! bootstrap.
//!
//! The level lives in one process-wide `AtomicU8`; the hot-path query
//! [`level`] is a single relaxed load once initialized, so instrumentation
//! sprinkled through kernels and schedulers costs one predictable branch
//! when tracing is off. The first call reads `HETEROMAP_TRACE`
//! (`off`/`spans`/`full`, anything else = off); [`set_level`] overrides it
//! programmatically at any time.

use std::sync::atomic::{AtomicU8, Ordering};

/// How much the tracing subsystem records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TraceLevel {
    /// Nothing is recorded; instrumentation reduces to one relaxed load.
    #[default]
    Off,
    /// Spans only: the flight recorder captures timed sections.
    Spans,
    /// Spans plus the structured event log and per-worker utilization
    /// sampling.
    Full,
}

impl TraceLevel {
    /// Parses a `HETEROMAP_TRACE` value; unknown strings mean [`Off`]
    /// (tracing must never turn itself on by accident).
    ///
    /// [`Off`]: TraceLevel::Off
    pub fn from_env_str(s: &str) -> TraceLevel {
        match s.trim().to_ascii_lowercase().as_str() {
            "spans" | "span" => TraceLevel::Spans,
            "full" | "all" => TraceLevel::Full,
            _ => TraceLevel::Off,
        }
    }

    fn from_u8(v: u8) -> TraceLevel {
        match v {
            1 => TraceLevel::Spans,
            2 => TraceLevel::Full,
            _ => TraceLevel::Off,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            TraceLevel::Off => 0,
            TraceLevel::Spans => 1,
            TraceLevel::Full => 2,
        }
    }
}

impl std::fmt::Display for TraceLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TraceLevel::Off => "off",
            TraceLevel::Spans => "spans",
            TraceLevel::Full => "full",
        })
    }
}

/// Environment variable selecting the trace level.
pub const TRACE_ENV_VAR: &str = "HETEROMAP_TRACE";
/// Environment variable suppressing diagnostic stderr mirroring (`1`/`true`).
pub const QUIET_ENV_VAR: &str = "HETEROMAP_QUIET";

/// Sentinel meaning "not yet initialized from the environment".
const UNINIT: u8 = u8::MAX;

static LEVEL: AtomicU8 = AtomicU8::new(UNINIT);
/// Tri-state quiet flag: [`UNINIT`], 0 (false), or 1 (true). A single
/// atomic so initialization cannot race an explicit [`set_quiet`].
static QUIET: AtomicU8 = AtomicU8::new(UNINIT);

#[cold]
fn init_level() -> TraceLevel {
    let level = std::env::var(TRACE_ENV_VAR)
        .map(|v| TraceLevel::from_env_str(&v))
        .unwrap_or(TraceLevel::Off);
    // Racing initializers agree (same env), and a concurrent `set_level`
    // wins via the compare_exchange failure path.
    match LEVEL.compare_exchange(UNINIT, level.as_u8(), Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => level,
        Err(current) => TraceLevel::from_u8(current),
    }
}

/// Raw level byte for the hottest disabled-path checks: `0` is
/// [`TraceLevel::Off`] *after initialization*; the [`UNINIT`] sentinel
/// reads as non-zero, steering first calls into the slow path that runs
/// [`init_level`]. One relaxed load, one compare — no enum decode.
#[inline(always)]
pub(crate) fn raw_level_is_off() -> bool {
    LEVEL.load(Ordering::Relaxed) == TraceLevel::Off.as_u8()
}

/// The active trace level. One relaxed load on the steady-state path.
#[inline]
pub fn level() -> TraceLevel {
    match LEVEL.load(Ordering::Relaxed) {
        UNINIT => init_level(),
        v => TraceLevel::from_u8(v),
    }
}

/// Whether any tracing is active (`level() != Off`).
#[inline]
pub fn enabled() -> bool {
    level() != TraceLevel::Off
}

/// Overrides the trace level for the whole process (benches flip between
/// disabled/spans/full; tests pin a known state).
pub fn set_level(new: TraceLevel) {
    LEVEL.store(new.as_u8(), Ordering::Relaxed);
}

#[cold]
fn init_quiet() -> bool {
    let q = std::env::var(QUIET_ENV_VAR)
        .map(|v| matches!(v.trim(), "1" | "true" | "yes"))
        .unwrap_or(false);
    // Racing initializers agree (same env), and a concurrent `set_quiet`
    // wins via the compare_exchange failure path — same pattern as LEVEL.
    match QUIET.compare_exchange(UNINIT, q as u8, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => q,
        Err(current) => current != 0,
    }
}

/// Whether diagnostic events mirror to stderr. Defaults from
/// `HETEROMAP_QUIET`; bench binaries set it from `--quiet`.
pub fn quiet() -> bool {
    match QUIET.load(Ordering::Relaxed) {
        UNINIT => init_quiet(),
        v => v != 0,
    }
}

/// Suppresses (or restores) the diagnostic stderr mirror.
pub fn set_quiet(quiet: bool) {
    QUIET.store(quiet as u8, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_strings_parse_conservatively() {
        assert_eq!(TraceLevel::from_env_str("off"), TraceLevel::Off);
        assert_eq!(TraceLevel::from_env_str("spans"), TraceLevel::Spans);
        assert_eq!(TraceLevel::from_env_str("SPANS"), TraceLevel::Spans);
        assert_eq!(TraceLevel::from_env_str(" full "), TraceLevel::Full);
        assert_eq!(TraceLevel::from_env_str("banana"), TraceLevel::Off);
        assert_eq!(TraceLevel::from_env_str(""), TraceLevel::Off);
    }

    #[test]
    fn levels_are_ordered() {
        assert!(TraceLevel::Off < TraceLevel::Spans);
        assert!(TraceLevel::Spans < TraceLevel::Full);
    }

    #[test]
    fn set_quiet_overrides_and_sticks() {
        let _guard = crate::test_lock();
        set_quiet(true);
        assert!(quiet());
        set_quiet(false);
        assert!(!quiet());
    }

    #[test]
    fn u8_round_trip() {
        for l in [TraceLevel::Off, TraceLevel::Spans, TraceLevel::Full] {
            assert_eq!(TraceLevel::from_u8(l.as_u8()), l);
            assert_eq!(TraceLevel::from_env_str(&l.to_string()), l);
        }
    }
}
