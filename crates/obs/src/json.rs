//! Minimal hand-rolled JSON: a string-building writer and a
//! recursive-descent parser.
//!
//! The workspace is dependency-free, so every artifact emitter
//! (`BENCH_*.json`, metrics snapshots, chrome://tracing files) previously
//! carried its own escape/format logic. This module is the single shared
//! implementation; the parser exists so tests and the CI smoke bin can
//! round-trip what the writer produced.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Returns `s` as a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(&mut out, s);
    out
}

/// Formats a finite number, or `null` for NaN/infinity (JSON has no
/// representation for them).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order is not preserved.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value under `key` if this is an object holding it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The number if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing bytes at offset {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at offset {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or("truncated UTF-8 sequence")?;
                    let s = std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8")?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("bad number '{text}' at offset {start}"))
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_quotes_backslashes_and_controls() {
        assert_eq!(escape("plain"), "\"plain\"");
        assert_eq!(escape("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(escape("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn num_maps_non_finite_to_null() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(-3.0), "-3");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }

    #[test]
    fn parser_handles_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "s": "x\ny"}"#;
        let v = parse(doc).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Null));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn writer_output_round_trips_through_parser() {
        let original = "kernel \"bfs\" failed\\retry\n\tat depth 3 \u{1}";
        let doc = format!("{{\"msg\": {}, \"v\": {}}}", escape(original), num(0.25));
        let parsed = parse(&doc).unwrap();
        assert_eq!(parsed.get("msg").unwrap().as_str(), Some(original));
        assert_eq!(parsed.get("v").unwrap().as_f64(), Some(0.25));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("123 45").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn parser_handles_unicode_strings() {
        let doc = "{\"k\": \"héllo ☃\"}";
        let v = parse(doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some("héllo ☃"));
        // Round-trip through our own escaper too.
        let doc2 = format!("{{\"k\": {}}}", escape("héllo ☃"));
        assert_eq!(parse(&doc2).unwrap(), v);
    }
}
