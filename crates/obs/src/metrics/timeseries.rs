//! Lock-free metric primitives: sharded counters, gauges, peak gauges and
//! fixed-bucket histograms, plus the fixed-width window ring they aggregate
//! into.
//!
//! Everything records through `std::sync::atomic` integer operations only —
//! `fetch_add`/`fetch_max` are commutative and associative, so the totals a
//! [`crate::metrics::MetricsHub`] reads are bit-identical no matter how many
//! threads recorded or in what order. That integer-only discipline is what
//! lets the chaos/fleet simulators publish telemetry without perturbing
//! their cross-thread digest guarantees.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of per-thread shards in a [`Counter`] (power of two; the shard is
/// picked by masking the dense [`crate::thread_id`]).
pub const COUNTER_SHARDS: usize = 8;

/// One cache-line-aligned counter shard. Alignment keeps two shards (or a
/// shard and an unrelated metric) from sharing a line and ping-ponging it
/// between cores — the false sharing that showed up at 16 threads in the
/// serving engine before padding.
#[derive(Debug, Default)]
#[repr(align(64))]
struct Shard(AtomicU64);

/// A monotonically increasing counter, sharded per thread.
///
/// Each increment lands in the shard selected by the caller's dense thread
/// id, so concurrent writers on different threads usually touch different
/// cache lines. [`Counter::get`] sums the shards; because addition over
/// `u64` is commutative, the total is exact and thread-count independent.
#[derive(Debug, Default)]
pub struct Counter {
    shards: [Shard; COUNTER_SHARDS],
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        let shard = crate::thread_id() as usize & (COUNTER_SHARDS - 1);
        self.shards[shard].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .fold(0, u64::wrapping_add)
    }
}

/// A high-watermark gauge (records the maximum observed value).
/// Cache-line aligned for the same reason as [`Counter`]'s shards.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct PeakGauge(AtomicU64);

impl PeakGauge {
    /// Creates a zeroed gauge.
    pub fn new() -> Self {
        PeakGauge::default()
    }

    /// Records an observation, keeping the maximum.
    pub fn observe(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// The peak observed so far.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value gauge holding an `f64` (stored as raw bits in one atomic).
///
/// `set` is a plain store, *not* commutative — deterministic users must set
/// gauges only from serial phases (the simulators set them from the
/// fold-in-slot-order step, never from parallel evaluation).
#[derive(Debug)]
#[repr(align(64))]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }
}

impl Gauge {
    /// Creates a gauge holding `0.0`.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Stores a new value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The last stored value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Upper bucket bounds for latency histograms, in milliseconds
/// (25 ns … 5 s; one overflow bucket follows). The sub-microsecond decades
/// are deliberately dense: cached serves complete in a few hundred
/// nanoseconds, and with a 0.0005 → 0.001 jump every sub-µs request
/// collapsed into the 1 µs bucket, so p50 read a flat 0.001 ms.
pub const LATENCY_BOUNDS_MS: [f64; 31] = [
    0.000025, 0.00005, 0.0001, 0.0002, 0.0003, 0.0005, 0.00075, 0.001, 0.0015, 0.002, 0.003, 0.005,
    0.0075, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1000.0, 2000.0, 5000.0,
];

/// Upper bucket bounds for batch-size histograms.
pub const BATCH_BOUNDS: [f64; 12] = [
    1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 32.0, 64.0, 128.0, 256.0,
];

/// A fixed-bucket histogram with atomic buckets.
///
/// Quantiles are resolved to the upper bound of the bucket holding the
/// requested rank — a deliberate over-estimate bounded by the bucket
/// spacing, which is the standard trade for lock-free recording. The sum
/// is kept as a ×1e6 scaled integer so concurrent recording stays exact
/// and order-independent.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [f64],
    /// One bucket per bound plus a final overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum scaled by 1e6 (nanosecond resolution for millisecond samples).
    sum_scaled: AtomicU64,
}

impl Histogram {
    /// A histogram over [`LATENCY_BOUNDS_MS`] (values in milliseconds).
    pub fn latency_ms() -> Self {
        Histogram::with_bounds(&LATENCY_BOUNDS_MS)
    }

    /// A histogram over [`BATCH_BOUNDS`] (values are batch sizes).
    pub fn batch_sizes() -> Self {
        Histogram::with_bounds(&BATCH_BOUNDS)
    }

    /// A histogram over caller-supplied upper bounds (ascending; one
    /// overflow bucket is appended).
    pub fn with_bounds(bounds: &'static [f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        Histogram {
            bounds,
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_scaled: AtomicU64::new(0),
        }
    }

    /// Records one sample (negative/NaN samples count into bucket 0).
    pub fn record(&self, v: f64) {
        // "Not greater than the bound" is `v <= b` for real samples and
        // true for NaN, so NaN lands in bucket 0 as documented instead of
        // the overflow bucket a plain `v <= b` would send it to.
        let idx = self
            .bounds
            .iter()
            .position(|&b| !matches!(v.partial_cmp(&b), Some(std::cmp::Ordering::Greater)))
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        if v.is_finite() && v > 0.0 {
            self.sum_scaled
                .fetch_add((v * 1e6).round() as u64, Ordering::Relaxed);
        }
    }

    /// Records one sample given in integer nanoseconds — the serving path
    /// measures `Instant::elapsed().as_nanos()` and records through this, so
    /// sub-microsecond latencies keep their resolution end to end.
    pub fn record_ns(&self, ns: u64) {
        self.record(ns as f64 / 1e6);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The upper bucket bounds (excluding the overflow bucket).
    pub fn bounds(&self) -> &'static [f64] {
        self.bounds
    }

    /// Per-bucket counts, one per bound plus the trailing overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Sum of recorded samples (exact to 1e-6 by construction).
    pub fn sum(&self) -> f64 {
        self.sum_scaled.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Mean of recorded samples (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return f64::NAN;
        }
        self.sum() / n as f64
    }

    /// The `q`-quantile (`0 < q <= 1`) as the upper bound of the bucket
    /// containing that rank; `NaN` when empty, the last bound when the rank
    /// lands in the overflow bucket.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts = self.bucket_counts();
        quantile_from_buckets(self.bounds, &counts, q)
    }
}

/// Resolves the `q`-quantile over explicit bucket counts (the shared
/// routine behind both live histograms and windowed deltas): the upper
/// bound of the bucket holding the requested rank, `NaN` when empty, the
/// last bound for overflow ranks.
pub fn quantile_from_buckets(bounds: &[f64], counts: &[u64], q: f64) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return f64::NAN;
    }
    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (idx, &bucket) in counts.iter().enumerate() {
        seen += bucket;
        if seen >= rank {
            return bounds
                .get(idx)
                .copied()
                .unwrap_or_else(|| *bounds.last().expect("histogram has bounds"));
        }
    }
    *bounds.last().expect("histogram has bounds")
}

/// Capacity of a [`WindowRing`]: windows retained per series before the
/// oldest is overwritten, flight-recorder style.
pub const WINDOW_RING_CAPACITY: usize = 256;

/// One closed aggregation window of a series.
///
/// The meaning of the fields depends on the instrument: for counters,
/// `count` and `sum` are the increment delta over the window; for gauges,
/// `count` is 1 and `sum` the sampled value; for histograms, `count` is the
/// sample delta, `sum` the sample-sum delta and `p99` the windowed
/// 99th-percentile (bucket upper bound, `NaN` when the window is empty).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStat {
    /// Sequence number of the window (the hub's roll count when closed).
    pub index: u64,
    /// Events in the window (see type-specific meaning above).
    pub count: u64,
    /// Value accumulated over the window (see type-specific meaning above).
    pub sum: f64,
    /// Windowed p99 for histograms; `NaN` for counters and gauges.
    pub p99: f64,
}

impl WindowStat {
    /// Mean sample value in the window (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A bounded ring of the most recent [`WindowStat`]s for one series.
#[derive(Debug, Default, Clone)]
pub struct WindowRing {
    slots: VecDeque<WindowStat>,
}

impl WindowRing {
    /// Creates an empty ring.
    pub fn new() -> Self {
        WindowRing::default()
    }

    /// Appends a closed window, evicting the oldest past
    /// [`WINDOW_RING_CAPACITY`].
    pub fn push(&mut self, stat: WindowStat) {
        if self.slots.len() == WINDOW_RING_CAPACITY {
            self.slots.pop_front();
        }
        self.slots.push_back(stat);
    }

    /// Retained windows, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &WindowStat> {
        self.slots.iter()
    }

    /// The most recently closed window.
    pub fn latest(&self) -> Option<&WindowStat> {
        self.slots.back()
    }

    /// Number of retained windows.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no window has been closed yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_shards() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let c = std::sync::Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn gauge_stores_last_value() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(0.75);
        assert_eq!(g.get(), 0.75);
        g.set(-2.5);
        assert_eq!(g.get(), -2.5);
    }

    #[test]
    fn peak_gauge_keeps_maximum() {
        let g = PeakGauge::new();
        g.observe(3);
        g.observe(9);
        g.observe(5);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn hot_atomics_are_cache_line_padded() {
        assert!(std::mem::align_of::<Counter>() >= 64);
        assert!(std::mem::align_of::<PeakGauge>() >= 64);
        assert!(std::mem::align_of::<Gauge>() >= 64);
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = Histogram::latency_ms();
        for _ in 0..90 {
            h.record(0.004); // -> 0.005 bucket
        }
        for _ in 0..10 {
            h.record(3.0); // -> 5.0 bucket
        }
        assert_eq!(h.count(), 100);
        assert!(
            (h.quantile(0.5) - 0.005).abs() < 1e-12,
            "{}",
            h.quantile(0.5)
        );
        assert!(
            (h.quantile(0.99) - 5.0).abs() < 1e-12,
            "{}",
            h.quantile(0.99)
        );
        let mean = h.mean();
        assert!(mean > 0.004 && mean < 3.0, "{mean}");
    }

    #[test]
    fn histogram_overflow_reports_last_bound() {
        let h = Histogram::latency_ms();
        h.record(1e9);
        assert_eq!(h.quantile(0.5), 5000.0);
    }

    #[test]
    fn empty_histogram_quantile_is_nan() {
        assert!(Histogram::latency_ms().quantile(0.5).is_nan());
        assert!(Histogram::latency_ms().mean().is_nan());
    }

    #[test]
    fn quantiles_on_a_known_distribution() {
        // 100 samples, exactly one per 0.01 step in (0, 1.0]: sample k is
        // (k+1)/100 ms. Ranks are exact, so each quantile must resolve to
        // the upper bound of the bucket holding that rank.
        let h = Histogram::latency_ms();
        for k in 0..100 {
            h.record((k + 1) as f64 / 100.0);
        }
        // Rank 50 is sample 0.50 ms -> bucket (0.2, 0.5].
        assert_eq!(h.quantile(0.50), 0.5);
        // Rank 95 is sample 0.95 ms -> bucket (0.5, 1.0].
        assert_eq!(h.quantile(0.95), 1.0);
        // Rank 99 is sample 0.99 ms -> same bucket.
        assert_eq!(h.quantile(0.99), 1.0);
        // Rank 100 is sample 1.00 ms, on the bucket boundary -> still 1.0.
        assert_eq!(h.quantile(1.0), 1.0);
        let mean = h.mean();
        assert!((mean - 0.505).abs() < 1e-6, "{mean}");
    }

    #[test]
    fn boundary_samples_land_in_the_lower_bucket() {
        // `v <= bound` means a sample exactly on a bound belongs to that
        // bound's bucket, not the next one.
        let h = Histogram::latency_ms();
        h.record(0.005);
        assert_eq!(h.quantile(1.0), 0.005);
        let h = Histogram::latency_ms();
        h.record(0.0050001);
        assert_eq!(h.quantile(1.0), 0.0075);
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let h = Histogram::latency_ms();
        h.record(0.3); // -> 0.5 bucket
        for q in [0.01, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0.5, "q={q}");
        }
        assert_eq!(h.count(), 1);
        assert!((h.mean() - 0.3).abs() < 1e-6);
    }

    #[test]
    fn tiny_and_extreme_quantiles_are_clamped() {
        let h = Histogram::latency_ms();
        h.record(0.05);
        h.record(40.0);
        // q=0 clamps to rank 1 (the smallest sample's bucket).
        assert_eq!(h.quantile(0.0), 0.05);
        assert_eq!(h.quantile(-3.0), 0.05);
        // q>1 clamps to the full population.
        assert_eq!(h.quantile(7.0), 50.0);
    }

    #[test]
    fn negative_and_nan_samples_count_into_bucket_zero() {
        let h = Histogram::latency_ms();
        h.record(-1.0);
        h.record(f64::NAN);
        assert_eq!(h.count(), 2);
        // Both land in the first bucket; they contribute nothing to the sum.
        assert_eq!(h.quantile(1.0), 0.000025);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn nanosecond_recording_resolves_sub_microsecond_quantiles() {
        // The bench regression this fixes: sub-µs latencies must not all
        // collapse into one bucket that reads 0.001 ms.
        let h = Histogram::latency_ms();
        for _ in 0..90 {
            h.record_ns(180); // 0.00018 ms -> 0.0002 bucket
        }
        for _ in 0..10 {
            h.record_ns(900); // 0.0009 ms -> 0.001 bucket
        }
        assert_eq!(h.quantile(0.50), 0.0002);
        assert_eq!(h.quantile(0.99), 0.001);
        let mean = h.mean();
        assert!((mean - 0.000252).abs() < 1e-9, "{mean}");
    }

    #[test]
    fn batch_bounds_cover_small_batches_exactly() {
        let h = Histogram::batch_sizes();
        for size in [1.0, 2.0, 3.0, 4.0] {
            h.record(size);
        }
        assert_eq!(h.quantile(0.25), 1.0);
        assert_eq!(h.quantile(0.5), 2.0);
        assert_eq!(h.quantile(0.75), 3.0);
        assert_eq!(h.quantile(1.0), 4.0);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let h = Histogram::latency_ms();
        let samples = [0.003, 0.02, 0.02, 0.4, 1.5, 1.5, 80.0, 4000.0];
        for s in samples {
            h.record(s);
        }
        let qs = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let values: Vec<f64> = qs.iter().map(|&q| h.quantile(q)).collect();
        for pair in values.windows(2) {
            assert!(pair[0] <= pair[1], "{values:?}");
        }
        // And every quantile is a real bucket bound.
        for v in values {
            assert!(LATENCY_BOUNDS_MS.contains(&v), "{v}");
        }
    }

    #[test]
    fn histogram_accessors_expose_buckets_and_sum() {
        let h = Histogram::batch_sizes();
        h.record(1.0);
        h.record(1.0);
        h.record(300.0); // overflow bucket
        let counts = h.bucket_counts();
        assert_eq!(counts.len(), BATCH_BOUNDS.len() + 1);
        assert_eq!(counts[0], 2);
        assert_eq!(*counts.last().unwrap(), 1);
        assert!((h.sum() - 302.0).abs() < 1e-9);
        assert_eq!(h.bounds(), &BATCH_BOUNDS);
    }

    #[test]
    fn window_ring_is_bounded() {
        let mut ring = WindowRing::new();
        for i in 0..(WINDOW_RING_CAPACITY as u64 + 10) {
            ring.push(WindowStat {
                index: i,
                count: 1,
                sum: i as f64,
                p99: f64::NAN,
            });
        }
        assert_eq!(ring.len(), WINDOW_RING_CAPACITY);
        assert_eq!(ring.iter().next().unwrap().index, 10);
        assert_eq!(
            ring.latest().unwrap().index,
            WINDOW_RING_CAPACITY as u64 + 9
        );
    }

    #[test]
    fn window_stat_mean_handles_empty() {
        let empty = WindowStat {
            index: 0,
            count: 0,
            sum: 0.0,
            p99: f64::NAN,
        };
        assert!(empty.mean().is_nan());
        let full = WindowStat {
            index: 0,
            count: 4,
            sum: 10.0,
            p99: f64::NAN,
        };
        assert_eq!(full.mean(), 2.5);
    }
}
