//! Label-aware time-series metrics: a lock-free registry of counters,
//! gauges and histograms aggregated into fixed-width windowed ring buckets,
//! with Prometheus text exposition, JSON snapshots, and online drift
//! detection over the windows.
//!
//! # Architecture
//!
//! * [`timeseries`] holds the recording primitives. Counters are sharded
//!   per thread and histograms keep integer bucket/sum atomics, so every
//!   recording operation is a commutative `fetch_add` — totals are exact
//!   and independent of thread count or interleaving. That is what lets
//!   the chaos/fleet simulators publish live telemetry while keeping their
//!   cross-thread digests bit-identical.
//! * [`MetricsHub`] owns the series. Registration hands out `Arc`s to the
//!   primitives (hot paths record through those, never through the hub);
//!   [`MetricsHub::roll`] — called from a *serial* phase, e.g. once per
//!   simulated round — closes the current window by diffing each series'
//!   cumulative state against the previous roll and pushes a
//!   [`WindowStat`] into that series' bounded ring. No wall clock is ever
//!   read: the window index is the roll count, and the nominal window
//!   width is caller-supplied metadata, so windowed series are
//!   seeded-deterministic under the simulators' virtual clocks.
//! * [`expose`] renders a frozen snapshot as Prometheus text or JSON (and
//!   parses the text back, so benches can prove the round trip).
//! * [`drift`] folds windowed series through EWMA-band and Page-Hinkley
//!   detectors that emit typed [`HealthSignal`]s; the fleet placer consumes
//!   them as avoid/penalty input.
//!
//! # Cost model
//!
//! Like span tracing, library instrumentation is gated on one process-wide
//! atomic ([`metrics_enabled`], bootstrapped from `HETEROMAP_METRICS`):
//! with metrics off, an instrumentation site costs one relaxed load and a
//! branch. The `exp_obs_timeseries` bench hard-gates that budget at ≤1%.

pub mod drift;
pub mod expose;
pub mod timeseries;

pub use drift::{
    Direction, DriftConfig, HealthBoard, HealthSignal, SeriesDetector, SignalKind, Verdict,
};
pub use expose::{
    parse_prometheus, prometheus_text, samples, snapshot_json, PromSample, SeriesSnapshot,
    SeriesValue,
};
pub use timeseries::{
    quantile_from_buckets, Counter, Gauge, Histogram, PeakGauge, WindowRing, WindowStat,
    BATCH_BOUNDS, COUNTER_SHARDS, LATENCY_BOUNDS_MS, WINDOW_RING_CAPACITY,
};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Environment variable enabling library-level metrics instrumentation
/// (`1`/`true`/`on`/`yes`).
pub const METRICS_ENV_VAR: &str = "HETEROMAP_METRICS";

/// Sentinel meaning "not yet initialized from the environment".
const UNINIT: u8 = u8::MAX;

static ENABLED: AtomicU8 = AtomicU8::new(UNINIT);

#[cold]
fn init_enabled() -> bool {
    let on = std::env::var(METRICS_ENV_VAR)
        .map(|v| {
            matches!(
                v.trim().to_ascii_lowercase().as_str(),
                "1" | "true" | "on" | "yes"
            )
        })
        .unwrap_or(false);
    // Racing initializers agree (same env), and a concurrent
    // `set_metrics_enabled` wins via the compare_exchange failure path —
    // the same pattern as the trace level.
    match ENABLED.compare_exchange(UNINIT, on as u8, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => on,
        Err(current) => current != 0,
    }
}

/// Whether library instrumentation should record into the global hub. One
/// relaxed load on the steady-state path (the disabled-path budget the
/// `exp_obs_timeseries` bench enforces).
#[inline]
pub fn metrics_enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        UNINIT => init_enabled(),
        v => v != 0,
    }
}

/// Overrides the metrics gate for the whole process (benches flip it;
/// tests pin a known state).
pub fn set_metrics_enabled(on: bool) {
    ENABLED.store(on as u8, Ordering::Relaxed);
}

/// The process-wide hub that gated library instrumentation (core retries,
/// accel fault injections, serve placements) records into. Simulators that
/// need per-run isolation build their own [`MetricsHub`] instead.
pub fn global() -> &'static MetricsHub {
    static HUB: OnceLock<MetricsHub> = OnceLock::new();
    HUB.get_or_init(MetricsHub::new)
}

/// What one registered series records through.
#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct SeriesEntry {
    help: &'static str,
    instrument: Instrument,
    /// Cumulative state at the previous roll, diffed to close a window.
    prev_count: u64,
    prev_sum: f64,
    prev_buckets: Vec<u64>,
    ring: WindowRing,
}

/// Name plus canonically sorted label pairs: the identity of one series.
type SeriesKey = (String, Vec<(String, String)>);

#[derive(Debug, Default)]
struct HubInner {
    windows: u64,
    series: BTreeMap<SeriesKey, SeriesEntry>,
}

/// A label-aware registry of counters, gauges and histograms with windowed
/// ring aggregation. See the [module docs](self) for the design.
#[derive(Debug)]
pub struct MetricsHub {
    /// Nominal window width in milliseconds — metadata only (no clock is
    /// read); simulators set it to their round tick.
    window_ms: f64,
    inner: Mutex<HubInner>,
}

impl Default for MetricsHub {
    fn default() -> Self {
        MetricsHub::new()
    }
}

fn canonical_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    out.sort();
    out
}

fn assert_metric_name(name: &str) {
    assert!(
        !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            && !name.starts_with(|c: char| c.is_ascii_digit()),
        "invalid metric name {name:?}"
    );
}

impl MetricsHub {
    /// Creates an empty hub with a 1000 ms nominal window.
    pub fn new() -> Self {
        MetricsHub::with_window_ms(1000.0)
    }

    /// Creates an empty hub with the given nominal window width (metadata
    /// recorded for exposition; rolling is always explicit).
    pub fn with_window_ms(window_ms: f64) -> Self {
        MetricsHub {
            window_ms,
            inner: Mutex::new(HubInner::default()),
        }
    }

    /// The nominal window width in milliseconds.
    pub fn window_ms(&self) -> f64 {
        self.window_ms
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HubInner> {
        self.inner.lock().expect("metrics hub poisoned")
    }

    fn register(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &'static str,
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        assert_metric_name(name);
        let key = (name.to_string(), canonical_labels(labels));
        let mut inner = self.lock();
        let entry = inner.series.entry(key).or_insert_with(|| {
            let instrument = make();
            let prev_buckets = match &instrument {
                Instrument::Histogram(h) => vec![0; h.bounds().len() + 1],
                _ => Vec::new(),
            };
            SeriesEntry {
                help,
                instrument,
                prev_count: 0,
                prev_sum: 0.0,
                prev_buckets,
                ring: WindowRing::new(),
            }
        });
        entry.instrument.clone()
    }

    /// Registers (or fetches) a counter series.
    ///
    /// # Panics
    ///
    /// Panics if the name is not `[a-zA-Z_:][a-zA-Z0-9_:]*` or the series
    /// already exists with a different instrument kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)], help: &'static str) -> Arc<Counter> {
        match self.register(name, labels, help, || {
            Instrument::Counter(Arc::new(Counter::new()))
        }) {
            Instrument::Counter(c) => c,
            other => panic!("series {name:?} already registered as {}", other.kind()),
        }
    }

    /// Registers (or fetches) a gauge series.
    ///
    /// # Panics
    ///
    /// Same conditions as [`MetricsHub::counter`].
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)], help: &'static str) -> Arc<Gauge> {
        match self.register(name, labels, help, || {
            Instrument::Gauge(Arc::new(Gauge::new()))
        }) {
            Instrument::Gauge(g) => g,
            other => panic!("series {name:?} already registered as {}", other.kind()),
        }
    }

    /// Registers (or fetches) a histogram series over `bounds`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`MetricsHub::counter`].
    pub fn histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &'static str,
        bounds: &'static [f64],
    ) -> Arc<Histogram> {
        match self.register(name, labels, help, || {
            Instrument::Histogram(Arc::new(Histogram::with_bounds(bounds)))
        }) {
            Instrument::Histogram(h) => h,
            other => panic!("series {name:?} already registered as {}", other.kind()),
        }
    }

    /// Closes the current aggregation window: every series diffs its
    /// cumulative state against the previous roll and pushes a
    /// [`WindowStat`] into its ring. Call from a serial phase (e.g. once
    /// per simulated round); returns the new window index (1-based).
    pub fn roll(&self) -> u64 {
        let mut inner = self.lock();
        inner.windows += 1;
        let index = inner.windows;
        for entry in inner.series.values_mut() {
            let stat = match &entry.instrument {
                Instrument::Counter(c) => {
                    let total = c.get();
                    let delta = total.wrapping_sub(entry.prev_count);
                    entry.prev_count = total;
                    WindowStat {
                        index,
                        count: delta,
                        sum: delta as f64,
                        p99: f64::NAN,
                    }
                }
                Instrument::Gauge(g) => WindowStat {
                    index,
                    count: 1,
                    sum: g.get(),
                    p99: f64::NAN,
                },
                Instrument::Histogram(h) => {
                    let buckets = h.bucket_counts();
                    let count = h.count();
                    let sum = h.sum();
                    let delta_buckets: Vec<u64> = buckets
                        .iter()
                        .zip(&entry.prev_buckets)
                        .map(|(cur, prev)| cur.wrapping_sub(*prev))
                        .collect();
                    let stat = WindowStat {
                        index,
                        count: count.wrapping_sub(entry.prev_count),
                        sum: sum - entry.prev_sum,
                        p99: quantile_from_buckets(h.bounds(), &delta_buckets, 0.99),
                    };
                    entry.prev_buckets = buckets;
                    entry.prev_count = count;
                    entry.prev_sum = sum;
                    stat
                }
            };
            entry.ring.push(stat);
        }
        index
    }

    /// Number of windows rolled so far.
    pub fn window_index(&self) -> u64 {
        self.lock().windows
    }

    /// The retained windows for one series, oldest first (empty when the
    /// series is unknown or never rolled).
    pub fn windows(&self, name: &str, labels: &[(&str, &str)]) -> Vec<WindowStat> {
        let key = (name.to_string(), canonical_labels(labels));
        self.lock()
            .series
            .get(&key)
            .map(|e| e.ring.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Freezes every series (sorted by name, then labels) for exposition.
    pub fn snapshot(&self) -> Vec<SeriesSnapshot> {
        self.lock()
            .series
            .iter()
            .map(|((name, labels), entry)| SeriesSnapshot {
                name: name.clone(),
                labels: labels.clone(),
                help: entry.help.to_string(),
                value: match &entry.instrument {
                    Instrument::Counter(c) => SeriesValue::Counter(c.get()),
                    Instrument::Gauge(g) => SeriesValue::Gauge(g.get()),
                    Instrument::Histogram(h) => SeriesValue::Histogram {
                        bounds: h.bounds().to_vec(),
                        buckets: h.bucket_counts(),
                        sum: h.sum(),
                        count: h.count(),
                    },
                },
            })
            .collect()
    }

    /// Renders the current state in the Prometheus text exposition format.
    pub fn prometheus_text(&self) -> String {
        prometheus_text(&self.snapshot())
    }

    /// Renders the current state as a JSON object via [`crate::json`].
    pub fn snapshot_json(&self) -> String {
        snapshot_json(&self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_label_order_insensitive() {
        let hub = MetricsHub::new();
        let a = hub.counter("x_total", &[("a", "1"), ("b", "2")], "h");
        let b = hub.counter("x_total", &[("b", "2"), ("a", "1")], "h");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same canonical key, same counter");
        assert_eq!(hub.snapshot().len(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let hub = MetricsHub::new();
        hub.counter("x_total", &[], "h");
        hub.gauge("x_total", &[], "h");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_are_rejected() {
        MetricsHub::new().counter("bad name", &[], "h");
    }

    #[test]
    fn roll_closes_windows_with_deltas() {
        let hub = MetricsHub::with_window_ms(50.0);
        assert_eq!(hub.window_ms(), 50.0);
        let c = hub.counter("jobs_total", &[], "jobs");
        let g = hub.gauge("util", &[], "utilization");
        let h = hub.histogram("lat_ms", &[], "latency", &LATENCY_BOUNDS_MS);
        c.add(3);
        g.set(0.5);
        h.record(0.4);
        h.record(0.4);
        assert_eq!(hub.roll(), 1);
        c.add(2);
        g.set(0.75);
        h.record(80.0);
        assert_eq!(hub.roll(), 2);

        let jobs = hub.windows("jobs_total", &[]);
        assert_eq!(jobs.len(), 2);
        assert_eq!((jobs[0].index, jobs[0].count), (1, 3));
        assert_eq!((jobs[1].index, jobs[1].count), (2, 2));

        let util = hub.windows("util", &[]);
        assert_eq!(util[0].sum, 0.5);
        assert_eq!(util[1].sum, 0.75);

        let lat = hub.windows("lat_ms", &[]);
        assert_eq!(lat[0].count, 2);
        assert!((lat[0].sum - 0.8).abs() < 1e-9);
        assert_eq!(lat[0].p99, 0.5, "windowed p99 sees only this window");
        assert_eq!(lat[1].count, 1);
        assert_eq!(lat[1].p99, 100.0, "next window forgets the fast samples");
        assert_eq!(hub.window_index(), 2);
    }

    #[test]
    fn empty_histogram_window_has_nan_p99() {
        let hub = MetricsHub::new();
        let _h = hub.histogram("lat_ms", &[], "latency", &LATENCY_BOUNDS_MS);
        hub.roll();
        let lat = hub.windows("lat_ms", &[]);
        assert_eq!(lat[0].count, 0);
        assert!(lat[0].p99.is_nan());
    }

    #[test]
    fn unknown_series_has_no_windows() {
        assert!(MetricsHub::new().windows("nope", &[]).is_empty());
    }

    #[test]
    fn exposition_is_identical_whatever_the_recording_thread_count() {
        let render = |threads: usize| -> String {
            let hub = std::sync::Arc::new(MetricsHub::new());
            let c = hub.counter("jobs_total", &[("device", "gpu0")], "jobs");
            let h = hub.histogram("lat_ms", &[], "latency", &LATENCY_BOUNDS_MS);
            // Each run records the same global sample sequence, partitioned
            // across the threads — the multiset of recordings is identical,
            // only the interleaving differs.
            let per_thread = 1200 / threads;
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let (c, h) = (c.clone(), h.clone());
                    std::thread::spawn(move || {
                        for i in (t * per_thread)..((t + 1) * per_thread) {
                            c.inc();
                            h.record((i % 7) as f64 * 0.01);
                        }
                    })
                })
                .collect();
            for handle in handles {
                handle.join().unwrap();
            }
            hub.roll();
            hub.prometheus_text()
        };
        let reference = render(1);
        assert_eq!(render(4), reference);
        assert_eq!(render(16), reference);
    }

    #[test]
    fn hub_exposition_round_trips() {
        let hub = MetricsHub::new();
        hub.counter("a_total", &[("k", "v w")], "a").add(9);
        hub.gauge("b", &[], "b").set(1.25);
        hub.histogram("c_ms", &[], "c", &BATCH_BOUNDS).record(3.0);
        let snap = hub.snapshot();
        let parsed = parse_prometheus(&hub.prometheus_text()).unwrap();
        assert_eq!(parsed, samples(&snap));
        let doc = crate::json::parse(&hub.snapshot_json()).expect("valid JSON");
        assert_eq!(
            doc.get("series").unwrap().as_array().unwrap().len(),
            snap.len()
        );
    }

    #[test]
    fn metrics_gate_toggles() {
        let _guard = crate::test_lock();
        set_metrics_enabled(true);
        assert!(metrics_enabled());
        set_metrics_enabled(false);
        assert!(!metrics_enabled());
    }

    #[test]
    fn global_hub_is_a_singleton() {
        let a = global() as *const MetricsHub;
        let b = global() as *const MetricsHub;
        assert_eq!(a, b);
    }
}
