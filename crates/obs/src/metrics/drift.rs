//! Online drift detection over windowed series, and the health board that
//! turns detector verdicts into placement advice.
//!
//! Two classic detectors run side by side on each monitored series:
//!
//! * **EWMA band** — an exponentially weighted mean/variance; a window
//!   flags when its value leaves the `k·sigma` band (with an absolute
//!   `min_band` floor so a near-constant series doesn't alarm on noise at
//!   the 1e-15 scale).
//! * **Page-Hinkley** — cumulative deviation from the running mean minus a
//!   drift allowance `delta`; flags when the cumulative sum climbs `lambda`
//!   above its historical minimum. Catches slow ramps the EWMA band
//!   forgives.
//!
//! Both are pure fold functions of the observation sequence — no clocks, no
//! randomness — so verdicts over deterministic window series are themselves
//! deterministic, and identical at any thread count.

use std::collections::BTreeMap;

/// Which direction of change counts as degradation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Increases are degradation (latency, failure score).
    Up,
    /// Decreases are degradation (utilization, goodput).
    Down,
}

/// Detector tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// EWMA smoothing factor in `(0, 1]` (higher = faster forgetting).
    pub alpha: f64,
    /// Sigma multiplier for the EWMA band.
    pub k: f64,
    /// Absolute band floor: observations within `min_band` of the mean
    /// never flag, whatever the variance estimate says.
    pub min_band: f64,
    /// Page-Hinkley drift allowance per observation.
    pub ph_delta: f64,
    /// Page-Hinkley alarm threshold.
    pub ph_lambda: f64,
    /// Observations to absorb before verdicts may flag.
    pub warmup: u32,
    /// Which direction of change is degradation.
    pub direction: Direction,
    /// Calibrated baseline mean. `Some(m)` arms the detector immediately
    /// around `m` (the simulators calibrate a calm baseline up front);
    /// `None` seeds the mean from the first observation.
    pub baseline: Option<f64>,
}

impl DriftConfig {
    /// Degradation-is-increase defaults (latency / failure-score series).
    pub fn upward() -> Self {
        DriftConfig {
            alpha: 0.25,
            k: 3.0,
            min_band: 0.05,
            ph_delta: 0.005,
            ph_lambda: 0.05,
            warmup: 0,
            direction: Direction::Up,
            baseline: None,
        }
    }

    /// Degradation-is-decrease defaults (utilization / goodput series).
    pub fn downward() -> Self {
        DriftConfig {
            direction: Direction::Down,
            ..DriftConfig::upward()
        }
    }
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig::upward()
    }
}

/// The detectors' verdict on one observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Verdict {
    /// Whether either detector flags this observation as drift.
    pub drift: bool,
    /// Whether the EWMA band flagged.
    pub ewma: bool,
    /// Whether Page-Hinkley flagged.
    pub page_hinkley: bool,
    /// How far past the trigger the observation sits (0 when calm); used
    /// as a placement penalty weight.
    pub score: f64,
}

impl Verdict {
    const CALM: Verdict = Verdict {
        drift: false,
        ewma: false,
        page_hinkley: false,
        score: 0.0,
    };
}

/// An online drift detector over one windowed series (EWMA band +
/// Page-Hinkley, see the module docs).
#[derive(Debug, Clone)]
pub struct SeriesDetector {
    cfg: DriftConfig,
    /// EWMA mean/variance state; armed once `seen_mean` is true.
    mean: f64,
    var: f64,
    seen_mean: bool,
    /// Page-Hinkley state: running mean of all observations, cumulative
    /// deviation, and its historical minimum.
    run_mean: f64,
    ph_m: f64,
    ph_min: f64,
    n: u64,
}

impl SeriesDetector {
    /// Creates a detector; `cfg.baseline` (if set) arms the EWMA mean
    /// immediately.
    pub fn new(cfg: DriftConfig) -> Self {
        let (mean, seen_mean) = match cfg.baseline {
            Some(b) => (Self::orient_value(cfg.direction, b), true),
            None => (0.0, false),
        };
        SeriesDetector {
            cfg,
            mean,
            var: 0.0,
            seen_mean,
            run_mean: 0.0,
            ph_m: 0.0,
            ph_min: 0.0,
            n: 0,
        }
    }

    fn orient_value(direction: Direction, x: f64) -> f64 {
        match direction {
            Direction::Up => x,
            Direction::Down => -x,
        }
    }

    /// Folds one observation (a window's value) and returns the verdict.
    /// Non-finite observations are absorbed as calm without touching the
    /// detector state.
    pub fn observe(&mut self, x: f64) -> Verdict {
        if !x.is_finite() {
            return Verdict::CALM;
        }
        // Orient so "up is bad" internally regardless of direction.
        let s = Self::orient_value(self.cfg.direction, x);
        self.n += 1;

        // Test against the state *before* this observation updates it —
        // otherwise a step change drags the mean with it and shrinks its
        // own excess.
        let (ewma_flag, ewma_excess) = if self.seen_mean {
            let band = (self.cfg.k * self.var.sqrt()).max(self.cfg.min_band);
            let excess = s - (self.mean + band);
            (excess > 0.0, excess.max(0.0))
        } else {
            (false, 0.0)
        };

        // Page-Hinkley fold (increase-only, oriented input).
        self.run_mean += (s - self.run_mean) / self.n as f64;
        self.ph_m += s - self.run_mean - self.cfg.ph_delta;
        self.ph_min = self.ph_min.min(self.ph_m);
        let ph_excess = self.ph_m - self.ph_min - self.cfg.ph_lambda;
        let ph_flag = self.n > 1 && ph_excess > 0.0;

        // EWMA update after the test.
        if self.seen_mean {
            let d = s - self.mean;
            self.mean += self.cfg.alpha * d;
            self.var = (1.0 - self.cfg.alpha) * (self.var + self.cfg.alpha * d * d);
        } else {
            self.mean = s;
            self.seen_mean = true;
        }

        if self.n <= u64::from(self.cfg.warmup) {
            return Verdict::CALM;
        }
        let drift = ewma_flag || ph_flag;
        Verdict {
            drift,
            ewma: ewma_flag,
            page_hinkley: ph_flag,
            score: if drift {
                ewma_excess.max(ph_excess.max(0.0))
            } else {
                0.0
            },
        }
    }

    /// Clears all state back to construction (baseline re-arms).
    pub fn reset(&mut self) {
        *self = SeriesDetector::new(self.cfg);
    }

    /// The detector's configuration.
    pub fn config(&self) -> &DriftConfig {
        &self.cfg
    }
}

/// What a [`HealthSignal`] is reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SignalKind {
    /// Latency windows drifted upward past the band.
    LatencyInflation,
    /// Utilization windows collapsed below the band.
    UtilizationDrop,
    /// Outcome mix degraded (failures, retries, migrations, sheds).
    OutcomeAnomaly,
    /// A previously flagged key aged out of the board.
    Recovered,
}

impl SignalKind {
    /// Stable name used in logs and bench artifacts.
    pub fn name(self) -> &'static str {
        match self {
            SignalKind::LatencyInflation => "latency_inflation",
            SignalKind::UtilizationDrop => "utilization_drop",
            SignalKind::OutcomeAnomaly => "outcome_anomaly",
            SignalKind::Recovered => "recovered",
        }
    }
}

/// A typed, timestamped (in windows) drift notification for one key
/// (a device, a lane, a regime — whatever the monitor watches).
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSignal {
    /// What the signal is about (e.g. `device:3`).
    pub key: String,
    /// What kind of degradation (or recovery) was observed.
    pub kind: SignalKind,
    /// Window index the verdict landed on.
    pub window: u64,
    /// Detector excess past the trigger (penalty weight).
    pub score: f64,
}

#[derive(Debug, Clone)]
struct ActiveEntry {
    until_window: u64,
    score: f64,
    kind: SignalKind,
}

/// Aggregates [`HealthSignal`]s into per-key active state with a TTL, and
/// answers penalty queries from the placer.
///
/// Deterministic by construction: `BTreeMap` keyed state, mutated only from
/// serial phases, no clocks — `expire` advances on the caller's window
/// counter.
#[derive(Debug, Clone)]
pub struct HealthBoard {
    ttl_windows: u64,
    active: BTreeMap<String, ActiveEntry>,
    history: Vec<HealthSignal>,
}

impl HealthBoard {
    /// Creates an empty board; raised signals stay active for
    /// `ttl_windows` windows past the window they were raised in.
    pub fn new(ttl_windows: u64) -> Self {
        HealthBoard {
            ttl_windows,
            active: BTreeMap::new(),
            history: Vec::new(),
        }
    }

    /// Raises (or refreshes) a signal for `key`: extends its TTL, keeps the
    /// maximum score, and appends to the history.
    pub fn raise(&mut self, key: &str, kind: SignalKind, window: u64, score: f64) {
        let signal = HealthSignal {
            key: key.to_string(),
            kind,
            window,
            score,
        };
        let entry = self
            .active
            .entry(key.to_string())
            .or_insert_with(|| ActiveEntry {
                until_window: window + self.ttl_windows,
                score,
                kind,
            });
        entry.until_window = window + self.ttl_windows;
        entry.score = entry.score.max(score);
        entry.kind = kind;
        self.history.push(signal);
    }

    /// Expires entries whose TTL passed before `window`, appending a
    /// [`SignalKind::Recovered`] record for each.
    pub fn expire(&mut self, window: u64) {
        let expired: Vec<String> = self
            .active
            .iter()
            .filter(|(_, e)| e.until_window < window)
            .map(|(k, _)| k.clone())
            .collect();
        for key in expired {
            self.active.remove(&key);
            self.history.push(HealthSignal {
                key,
                kind: SignalKind::Recovered,
                window,
                score: 0.0,
            });
        }
    }

    /// Whether `key` currently has an active (unexpired) signal.
    pub fn is_flagged(&self, key: &str) -> bool {
        self.active.contains_key(key)
    }

    /// The active score for `key` (0 when unflagged) — placers scale their
    /// cost estimates by a function of this.
    pub fn penalty(&self, key: &str) -> f64 {
        self.active.get(key).map_or(0.0, |e| e.score)
    }

    /// Currently flagged keys in sorted order.
    pub fn flagged_keys(&self) -> Vec<&str> {
        self.active.keys().map(String::as_str).collect()
    }

    /// Every signal ever raised or expired, in raise order.
    pub fn signals(&self) -> &[HealthSignal] {
        &self.history
    }

    /// Number of degradation signals raised (excludes `Recovered` records).
    pub fn raised_count(&self) -> u64 {
        self.history
            .iter()
            .filter(|s| s.kind != SignalKind::Recovered)
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_series_never_flags() {
        let mut d = SeriesDetector::new(DriftConfig::upward());
        for _ in 0..200 {
            assert!(!d.observe(0.5).drift);
        }
    }

    #[test]
    fn zero_series_with_zero_baseline_never_flags() {
        let mut d = SeriesDetector::new(DriftConfig {
            baseline: Some(0.0),
            ..DriftConfig::upward()
        });
        for _ in 0..500 {
            assert!(!d.observe(0.0).drift);
        }
    }

    #[test]
    fn step_change_flags_immediately_with_baseline() {
        let mut d = SeriesDetector::new(DriftConfig {
            baseline: Some(0.0),
            min_band: 0.02,
            ..DriftConfig::upward()
        });
        let v = d.observe(1.0);
        assert!(v.drift && v.ewma, "{v:?}");
        assert!(v.score > 0.9, "{v:?}");
    }

    #[test]
    fn step_change_flags_after_calm_prefix() {
        let mut d = SeriesDetector::new(DriftConfig::upward());
        for _ in 0..20 {
            assert!(!d.observe(0.1).drift);
        }
        assert!(d.observe(2.0).drift);
    }

    #[test]
    fn slow_ramp_trips_page_hinkley() {
        // A ramp of +0.004/window stays inside a wide EWMA band but
        // accumulates in the Page-Hinkley sum.
        let mut d = SeriesDetector::new(DriftConfig {
            min_band: 10.0, // disable the EWMA band entirely
            ph_delta: 0.001,
            ph_lambda: 0.05,
            ..DriftConfig::upward()
        });
        let mut flagged = false;
        for i in 0..100 {
            let v = d.observe(i as f64 * 0.004);
            if v.drift {
                assert!(v.page_hinkley && !v.ewma, "{v:?}");
                flagged = true;
                break;
            }
        }
        assert!(flagged, "ramp never flagged");
    }

    #[test]
    fn downward_direction_flags_collapses() {
        let mut d = SeriesDetector::new(DriftConfig {
            baseline: Some(0.9),
            min_band: 0.1,
            ..DriftConfig::downward()
        });
        assert!(!d.observe(0.88).drift, "small wobble stays calm");
        assert!(d.observe(0.2).drift, "collapse flags");
    }

    #[test]
    fn upward_direction_ignores_improvements() {
        let mut d = SeriesDetector::new(DriftConfig {
            baseline: Some(1.0),
            ..DriftConfig::upward()
        });
        for _ in 0..50 {
            assert!(!d.observe(0.0).drift, "getting faster is not drift");
        }
    }

    #[test]
    fn warmup_suppresses_early_verdicts() {
        let mut d = SeriesDetector::new(DriftConfig {
            baseline: Some(0.0),
            warmup: 3,
            ..DriftConfig::upward()
        });
        assert!(!d.observe(5.0).drift);
        assert!(!d.observe(5.0).drift);
        assert!(!d.observe(5.0).drift);
        // Warmup over; a fresh excursion past the (now higher) mean flags.
        assert!(d.observe(50.0).drift);
    }

    #[test]
    fn non_finite_observations_are_absorbed() {
        let mut d = SeriesDetector::new(DriftConfig {
            baseline: Some(0.0),
            ..DriftConfig::upward()
        });
        assert!(!d.observe(f64::NAN).drift);
        assert!(!d.observe(f64::INFINITY).drift);
        assert!(d.observe(1.0).drift, "state unharmed by the NaNs");
    }

    #[test]
    fn reset_re_arms_the_baseline() {
        let cfg = DriftConfig {
            baseline: Some(0.0),
            ..DriftConfig::upward()
        };
        let mut d = SeriesDetector::new(cfg);
        for _ in 0..10 {
            d.observe(3.0);
        }
        d.reset();
        assert!(d.observe(1.0).drift, "baseline back at 0 after reset");
    }

    #[test]
    fn detector_is_a_pure_fold() {
        let cfg = DriftConfig {
            baseline: Some(0.1),
            ..DriftConfig::upward()
        };
        let series: Vec<f64> = (0..60).map(|i| 0.1 + (i % 7) as f64 * 0.03).collect();
        let run = |series: &[f64]| -> Vec<Verdict> {
            let mut d = SeriesDetector::new(cfg);
            series.iter().map(|&x| d.observe(x)).collect()
        };
        assert_eq!(run(&series), run(&series));
    }

    #[test]
    fn board_raises_flags_and_expires_with_recovery() {
        let mut board = HealthBoard::new(2);
        board.raise("device:1", SignalKind::OutcomeAnomaly, 10, 0.4);
        assert!(board.is_flagged("device:1"));
        assert_eq!(board.penalty("device:1"), 0.4);
        assert_eq!(board.penalty("device:0"), 0.0);
        board.expire(12); // until_window = 12, not yet past
        assert!(board.is_flagged("device:1"));
        board.expire(13);
        assert!(!board.is_flagged("device:1"));
        let kinds: Vec<SignalKind> = board.signals().iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![SignalKind::OutcomeAnomaly, SignalKind::Recovered]
        );
        assert_eq!(board.raised_count(), 1);
    }

    #[test]
    fn board_refresh_extends_ttl_and_keeps_max_score() {
        let mut board = HealthBoard::new(2);
        board.raise("d", SignalKind::LatencyInflation, 1, 0.9);
        board.raise("d", SignalKind::LatencyInflation, 3, 0.2);
        board.expire(4); // original TTL (1+2) passed; refreshed TTL (3+2) holds
        assert!(board.is_flagged("d"));
        assert_eq!(board.penalty("d"), 0.9, "max score retained");
        assert_eq!(board.flagged_keys(), vec!["d"]);
    }
}
