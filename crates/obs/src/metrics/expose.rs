//! Exposition: Prometheus text format and JSON snapshots for a frozen set
//! of series, plus a parser for the text format so benches can prove the
//! output round-trips.
//!
//! The renderer follows the Prometheus text exposition conventions: one
//! `# HELP`/`# TYPE` header per metric name, label values escaped with
//! `\\`, `\"` and `\n`, histograms expanded to cumulative `_bucket{le=...}`
//! sample lines plus `_sum` and `_count`, with a closing `le="+Inf"`
//! bucket. Numbers render through Rust's shortest-round-trip `Display`, so
//! parsing a rendered value back yields the identical `f64`.

use crate::json;

/// The frozen value of one series.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesValue {
    /// Monotonic counter total.
    Counter(u64),
    /// Last-value gauge.
    Gauge(f64),
    /// Fixed-bucket histogram state.
    Histogram {
        /// Upper bucket bounds (ascending, excluding `+Inf`).
        bounds: Vec<f64>,
        /// Per-bucket counts, one per bound plus the trailing overflow
        /// bucket (*not* cumulative; the renderer accumulates).
        buckets: Vec<u64>,
        /// Sum of recorded samples.
        sum: f64,
        /// Total recorded samples.
        count: u64,
    },
}

impl SeriesValue {
    /// The Prometheus `# TYPE` keyword for this value.
    pub fn type_name(&self) -> &'static str {
        match self {
            SeriesValue::Counter(_) => "counter",
            SeriesValue::Gauge(_) => "gauge",
            SeriesValue::Histogram { .. } => "histogram",
        }
    }
}

/// One frozen series: name, sorted labels, help text and value.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// Metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
    /// One-line help text.
    pub help: String,
    /// The frozen value.
    pub value: SeriesValue,
}

/// One sample line of the exposition format, as the parser sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Sample name (may carry a `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs in exposition order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// Escapes a label value per the exposition rules (`\\`, `\"`, `\n`).
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a label set (optionally with an extra `le` pair appended) as
/// `{k="v",...}`, or the empty string when there are no labels.
fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Renders an `f64` exposition value (`+Inf`/`-Inf`/`NaN` spelled the
/// Prometheus way; finite values via shortest-round-trip `Display`).
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Renders a frozen series list in the Prometheus text exposition format.
///
/// Series must arrive grouped by name (the hub's BTreeMap order guarantees
/// this); each new name emits one `# HELP` and `# TYPE` header.
pub fn prometheus_text(series: &[SeriesSnapshot]) -> String {
    let mut out = String::new();
    let mut prev_name: Option<&str> = None;
    for s in series {
        if prev_name != Some(s.name.as_str()) {
            out.push_str(&format!(
                "# HELP {} {}\n# TYPE {} {}\n",
                s.name,
                s.help.replace('\\', "\\\\").replace('\n', "\\n"),
                s.name,
                s.value.type_name()
            ));
            prev_name = Some(s.name.as_str());
        }
        match &s.value {
            SeriesValue::Counter(v) => {
                out.push_str(&format!("{}{} {v}\n", s.name, label_block(&s.labels, None)));
            }
            SeriesValue::Gauge(v) => {
                out.push_str(&format!(
                    "{}{} {}\n",
                    s.name,
                    label_block(&s.labels, None),
                    fmt_value(*v)
                ));
            }
            SeriesValue::Histogram {
                bounds,
                buckets,
                sum,
                count,
            } => {
                let mut cumulative = 0u64;
                for (i, bound) in bounds.iter().enumerate() {
                    cumulative += buckets.get(i).copied().unwrap_or(0);
                    out.push_str(&format!(
                        "{}_bucket{} {cumulative}\n",
                        s.name,
                        label_block(&s.labels, Some(&fmt_value(*bound)))
                    ));
                }
                out.push_str(&format!(
                    "{}_bucket{} {count}\n",
                    s.name,
                    label_block(&s.labels, Some("+Inf"))
                ));
                out.push_str(&format!(
                    "{}_sum{} {}\n",
                    s.name,
                    label_block(&s.labels, None),
                    fmt_value(*sum)
                ));
                out.push_str(&format!(
                    "{}_count{} {count}\n",
                    s.name,
                    label_block(&s.labels, None)
                ));
            }
        }
    }
    out
}

/// Expands a frozen series list into the sample lines [`prometheus_text`]
/// renders for it — the ground truth a round-trip test compares
/// [`parse_prometheus`] output against.
pub fn samples(series: &[SeriesSnapshot]) -> Vec<PromSample> {
    let mut out = Vec::new();
    for s in series {
        match &s.value {
            SeriesValue::Counter(v) => out.push(PromSample {
                name: s.name.clone(),
                labels: s.labels.clone(),
                value: *v as f64,
            }),
            SeriesValue::Gauge(v) => out.push(PromSample {
                name: s.name.clone(),
                labels: s.labels.clone(),
                value: *v,
            }),
            SeriesValue::Histogram {
                bounds,
                buckets,
                sum,
                count,
            } => {
                let mut cumulative = 0u64;
                for (i, bound) in bounds.iter().enumerate() {
                    cumulative += buckets.get(i).copied().unwrap_or(0);
                    let mut labels = s.labels.clone();
                    labels.push(("le".to_string(), fmt_value(*bound)));
                    out.push(PromSample {
                        name: format!("{}_bucket", s.name),
                        labels,
                        value: cumulative as f64,
                    });
                }
                let mut labels = s.labels.clone();
                labels.push(("le".to_string(), "+Inf".to_string()));
                out.push(PromSample {
                    name: format!("{}_bucket", s.name),
                    labels,
                    value: *count as f64,
                });
                out.push(PromSample {
                    name: format!("{}_sum", s.name),
                    labels: s.labels.clone(),
                    value: *sum,
                });
                out.push(PromSample {
                    name: format!("{}_count", s.name),
                    labels: s.labels.clone(),
                    value: *count as f64,
                });
            }
        }
    }
    out
}

/// Parses Prometheus text exposition back into sample lines, skipping
/// comments and blank lines. Returns an error naming the first malformed
/// line.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_sample(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(out)
}

fn parse_sample(line: &str) -> Result<PromSample, String> {
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len()
        && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b':')
    {
        i += 1;
    }
    if i == 0 {
        return Err("expected metric name".to_string());
    }
    let name = line[..i].to_string();
    let mut labels = Vec::new();
    let rest = &line[i..];
    let rest = if let Some(stripped) = rest.strip_prefix('{') {
        let (parsed, remainder) = parse_labels(stripped)?;
        labels = parsed;
        remainder
    } else {
        rest
    };
    let value_str = rest.trim();
    // Reject a second brace or garbage: the value must be one token.
    let value_str = value_str
        .split_whitespace()
        .next()
        .ok_or("missing sample value")?;
    let value = parse_value(value_str)?;
    Ok(PromSample {
        name,
        labels,
        value,
    })
}

/// Owned label pairs plus the unparsed remainder of the line.
type ParsedLabels<'a> = (Vec<(String, String)>, &'a str);

/// Parses `k="v",...}` (the leading `{` already consumed); returns the
/// pairs and the remainder after the closing brace.
fn parse_labels(s: &str) -> Result<ParsedLabels<'_>, String> {
    let mut labels = Vec::new();
    let mut rest = s;
    loop {
        rest = rest.trim_start();
        if let Some(after) = rest.strip_prefix('}') {
            return Ok((labels, after));
        }
        let eq = rest.find('=').ok_or("label missing '='")?;
        let key = rest[..eq].trim().to_string();
        if key.is_empty() {
            return Err("empty label name".to_string());
        }
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or("label value missing opening quote")?;
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut end = None;
        while let Some((idx, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, other)) => {
                        // Unknown escape: the spec says keep it literally.
                        value.push('\\');
                        value.push(other);
                    }
                    None => return Err("dangling escape in label value".to_string()),
                },
                '"' => {
                    end = Some(idx + 1);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or("unterminated label value")?;
        labels.push((key, value));
        rest = &rest[end..];
        rest = rest.trim_start();
        if let Some(after) = rest.strip_prefix(',') {
            rest = after;
        }
    }
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" | "Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        s => s
            .parse::<f64>()
            .map_err(|e| format!("bad sample value {s:?}: {e}")),
    }
}

/// Renders a frozen series list as a JSON object via the shared
/// [`crate::json`] writer (no serde in the workspace; non-finite numbers
/// become `null`, matching the other emitters).
pub fn snapshot_json(series: &[SeriesSnapshot]) -> String {
    let mut out = String::from("{\"series\": [");
    for (i, s) in series.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"name\": {}, \"labels\": {{",
            json::escape(&s.name)
        ));
        for (j, (k, v)) in s.labels.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {}", json::escape(k), json::escape(v)));
        }
        out.push_str(&format!(
            "}}, \"type\": {}, ",
            json::escape(s.value.type_name())
        ));
        match &s.value {
            SeriesValue::Counter(v) => out.push_str(&format!("\"value\": {v}")),
            SeriesValue::Gauge(v) => out.push_str(&format!("\"value\": {}", json::num(*v))),
            SeriesValue::Histogram {
                bounds,
                buckets,
                sum,
                count,
            } => {
                out.push_str("\"buckets\": [");
                for (j, bound) in bounds.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!(
                        "{{\"le\": {}, \"count\": {}}}",
                        json::num(*bound),
                        buckets.get(j).copied().unwrap_or(0)
                    ));
                }
                if !bounds.is_empty() {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"le\": null, \"count\": {}}}",
                    buckets.last().copied().unwrap_or(0)
                ));
                out.push_str(&format!(
                    "], \"sum\": {}, \"count\": {count}",
                    json::num(*sum)
                ));
            }
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter(name: &str, labels: &[(&str, &str)], v: u64) -> SeriesSnapshot {
        SeriesSnapshot {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            help: format!("{name} help"),
            value: SeriesValue::Counter(v),
        }
    }

    #[test]
    fn counters_render_with_headers_and_labels() {
        let series = [
            counter("jobs_total", &[("device", "gpu0")], 7),
            counter("jobs_total", &[("device", "phi1")], 3),
        ];
        let text = prometheus_text(&series);
        assert_eq!(text.matches("# TYPE jobs_total counter").count(), 1);
        assert!(text.contains("jobs_total{device=\"gpu0\"} 7\n"));
        assert!(text.contains("jobs_total{device=\"phi1\"} 3\n"));
    }

    #[test]
    fn label_values_escape_and_round_trip() {
        let series = [counter("weird_total", &[("path", "a\"b\\c\nd")], 1)];
        let text = prometheus_text(&series);
        assert!(text.contains(r#"path="a\"b\\c\nd""#), "{text}");
        let parsed = parse_prometheus(&text).unwrap();
        assert_eq!(parsed, samples(&series));
    }

    #[test]
    fn histogram_renders_cumulative_buckets_sum_and_count() {
        let series = [SeriesSnapshot {
            name: "lat_ms".to_string(),
            labels: vec![("stage".to_string(), "place".to_string())],
            help: "latency".to_string(),
            value: SeriesValue::Histogram {
                bounds: vec![1.0, 5.0],
                buckets: vec![2, 1, 3], // last is overflow
                sum: 99.5,
                count: 6,
            },
        }];
        let text = prometheus_text(&series);
        assert!(text.contains("# TYPE lat_ms histogram"));
        assert!(text.contains("lat_ms_bucket{stage=\"place\",le=\"1\"} 2\n"));
        assert!(text.contains("lat_ms_bucket{stage=\"place\",le=\"5\"} 3\n"));
        assert!(text.contains("lat_ms_bucket{stage=\"place\",le=\"+Inf\"} 6\n"));
        assert!(text.contains("lat_ms_sum{stage=\"place\"} 99.5\n"));
        assert!(text.contains("lat_ms_count{stage=\"place\"} 6\n"));
    }

    #[test]
    fn parser_round_trips_every_series_kind() {
        let series = [
            counter("a_total", &[], 42),
            SeriesSnapshot {
                name: "g".to_string(),
                labels: vec![("k".to_string(), "v".to_string())],
                help: "gauge".to_string(),
                value: SeriesValue::Gauge(0.1875),
            },
            SeriesSnapshot {
                name: "h_ms".to_string(),
                labels: vec![],
                help: "hist".to_string(),
                value: SeriesValue::Histogram {
                    bounds: vec![0.000025, 0.5, 100.0],
                    buckets: vec![1, 0, 4, 2],
                    sum: 250.125,
                    count: 7,
                },
            },
        ];
        let parsed = parse_prometheus(&prometheus_text(&series)).unwrap();
        assert_eq!(parsed, samples(&series));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_prometheus("jobs_total{device=\"x} 1").is_err());
        assert!(parse_prometheus("jobs_total{device} 1").is_err());
        assert!(parse_prometheus("{} 1").is_err());
        assert!(parse_prometheus("jobs_total banana").is_err());
        assert!(parse_prometheus("jobs_total").is_err());
    }

    #[test]
    fn non_finite_values_spell_the_prometheus_way() {
        assert_eq!(fmt_value(f64::INFINITY), "+Inf");
        assert_eq!(fmt_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(fmt_value(f64::NAN), "NaN");
        assert_eq!(parse_value("+Inf").unwrap(), f64::INFINITY);
        assert!(parse_value("NaN").unwrap().is_nan());
    }

    #[test]
    fn snapshot_json_parses_back_through_obs_json() {
        let series = [
            counter("a_total", &[("x", "y\"z")], 3),
            SeriesSnapshot {
                name: "h_ms".to_string(),
                labels: vec![],
                help: "hist".to_string(),
                value: SeriesValue::Histogram {
                    bounds: vec![1.0],
                    buckets: vec![2, 1],
                    sum: 5.25,
                    count: 3,
                },
            },
        ];
        let doc = json::parse(&snapshot_json(&series)).expect("valid JSON");
        let arr = doc.get("series").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("name").unwrap().as_str(), Some("a_total"));
        assert_eq!(
            arr[0].get("labels").unwrap().get("x").unwrap().as_str(),
            Some("y\"z")
        );
        assert_eq!(arr[0].get("value").unwrap().as_f64(), Some(3.0));
        let buckets = arr[1].get("buckets").unwrap().as_array().unwrap();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[1].get("count").unwrap().as_f64(), Some(1.0));
        assert_eq!(arr[1].get("count").unwrap().as_f64(), Some(3.0));
    }
}
