//! Monotonic trace clock and compact thread identifiers.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process's trace epoch (first call wins; monotonic).
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

static NEXT_THREAD: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static THREAD_ID: u32 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
}

/// A small, dense, process-unique id for the calling thread (1-based in
/// registration order — stable for the thread's lifetime, unlike the
/// opaque `std::thread::ThreadId`).
#[inline]
pub fn thread_id() -> u32 {
    THREAD_ID.with(|id| *id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn thread_ids_are_distinct_and_stable() {
        let mine = thread_id();
        assert_eq!(mine, thread_id());
        let other = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(mine, other);
    }
}
