//! The flight recorder: lock-free per-thread span ring buffers.
//!
//! Every thread that records a span owns one [`SpanRing`] — a fixed-capacity
//! ring it alone writes to, so recording never takes a lock and never
//! contends with other threads. Memory is bounded: when the ring wraps, the
//! oldest spans are overwritten and counted as drops (a flight recorder
//! keeps the newest history, exactly what you want when a process misbehaves
//! *now*).
//!
//! Snapshots are taken from arbitrary threads through per-slot sequence
//! numbers (a seqlock): the writer marks a slot odd while overwriting it and
//! even when stable; readers copy the slot and retry if the sequence moved.
//! Readers can briefly spin; writers never wait.
//!
//! A global registry holds one `Arc` per live ring so [`snapshot_spans`]
//! can walk all of them; registration happens once per thread (plus once
//! per [`reset`] generation).

use crate::clock;
use std::cell::RefCell;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One completed span, as stored in the flight recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static span name (e.g. `"predict"`).
    pub name: &'static str,
    /// Static category (e.g. `"core"`, `"kernel"`, `"serve"`).
    pub cat: &'static str,
    /// Start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Recording thread ([`crate::thread_id`]).
    pub thread: u32,
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Enclosing span's id on the same thread, or 0 for a root span.
    pub parent: u64,
}

impl SpanRecord {
    const EMPTY: SpanRecord = SpanRecord {
        name: "",
        cat: "",
        start_ns: 0,
        dur_ns: 0,
        thread: 0,
        id: 0,
        parent: 0,
    };
}

struct Slot {
    /// `2*(write_index+1)` when stable, odd while being overwritten.
    seq: AtomicU64,
    data: std::cell::UnsafeCell<SpanRecord>,
}

/// A single-writer, many-reader bounded span ring.
///
/// The owning thread calls [`SpanRing::push`]; any thread may call
/// [`SpanRing::read`]. Constructing one directly is useful for tests; the
/// instrumentation macros go through the thread-local registry instead.
pub struct SpanRing {
    slots: Box<[Slot]>,
    /// Total pushes ever; `writes - capacity` of them have been dropped.
    writes: AtomicU64,
    /// Held while a push is in progress. The ring is designed around a
    /// single-writer invariant; this flag makes that invariant sound even
    /// if safe code shares the ring and pushes from two threads (the
    /// second writer spins instead of racing the data write).
    writer: AtomicBool,
}

// SAFETY: writers are mutually excluded by the `writer` flag; cross-thread
// reads of `data` are mediated by the per-slot seqlock, with torn reads
// detected by the sequence check and discarded.
unsafe impl Sync for SpanRing {}
unsafe impl Send for SpanRing {}

impl std::fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRing")
            .field("capacity", &self.slots.len())
            .field("writes", &self.writes.load(Ordering::Relaxed))
            .finish()
    }
}

impl SpanRing {
    /// Creates a ring holding at most `capacity` spans (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SpanRing {
            slots: (0..capacity)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    data: std::cell::UnsafeCell::new(SpanRecord::EMPTY),
                })
                .collect(),
            writes: AtomicU64::new(0),
            writer: AtomicBool::new(false),
        }
    }

    /// Ring capacity in spans.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total spans ever pushed.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Acquire)
    }

    /// Spans overwritten before anyone could read them.
    pub fn dropped(&self) -> u64 {
        self.writes().saturating_sub(self.slots.len() as u64)
    }

    /// Appends a span, overwriting the oldest once full.
    ///
    /// Intended for the ring's owning thread (the thread-local registry
    /// upholds this); a second concurrent pusher is tolerated soundly by
    /// spinning on `writer` rather than racing the slot write. The
    /// uncontended cost is one compare-exchange and one store.
    pub fn push(&self, record: SpanRecord) {
        while self
            .writer
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
        let n = self.writes.load(Ordering::Relaxed);
        let slot = &self.slots[(n % self.slots.len() as u64) as usize];
        // Crossbeam-style seqlock write: the odd transition is an AcqRel
        // RMW so the data write below cannot be hoisted above it, and the
        // even Release store publishes the data. The write index is
        // encoded in the stable value so readers can order and dedupe.
        slot.seq.swap(2 * n + 1, Ordering::AcqRel);
        // SAFETY: single writer (enforced by `writer` above); readers
        // validate via `seq`.
        unsafe { *slot.data.get() = record };
        slot.seq.store(2 * (n + 1), Ordering::Release);
        self.writes.store(n + 1, Ordering::Release);
        self.writer.store(false, Ordering::Release);
    }

    /// Copies out the stable contents, oldest first, plus the drop count.
    ///
    /// Concurrent pushes may cause individual slots to be skipped (they are
    /// counted as neither read nor dropped by this call); the returned spans
    /// are always internally consistent.
    pub fn read(&self) -> (Vec<SpanRecord>, u64) {
        let writes = self.writes();
        let cap = self.slots.len() as u64;
        let mut out: Vec<(u64, SpanRecord)> = Vec::with_capacity(writes.min(cap) as usize);
        for slot in self.slots.iter() {
            // Bounded retries: a hot writer can keep a slot in flux.
            for _ in 0..16 {
                let s1 = slot.seq.load(Ordering::Acquire);
                if s1 == 0 {
                    break; // Never written.
                }
                if s1 % 2 == 1 {
                    std::hint::spin_loop();
                    continue; // Mid-overwrite; retry.
                }
                // SAFETY: torn reads are possible while racing the writer;
                // the `seq` recheck below discards them. Volatile keeps the
                // compiler from folding the read across the fences.
                let record = unsafe { std::ptr::read_volatile(slot.data.get()) };
                // The Acquire fence keeps the data read above from sinking
                // past the validation load (the load alone orders nothing
                // before it).
                fence(Ordering::Acquire);
                let s2 = slot.seq.load(Ordering::Relaxed);
                if s1 == s2 {
                    out.push((s1 / 2 - 1, record));
                    break;
                }
            }
        }
        out.sort_by_key(|(idx, _)| *idx);
        (
            out.into_iter().map(|(_, r)| r).collect(),
            writes.saturating_sub(cap),
        )
    }
}

/// Default per-thread ring capacity (spans); ~56 B per slot, so the flight
/// recorder holds a few hundred KiB per recording thread.
pub const DEFAULT_RING_CAPACITY: usize = 8_192;

struct Registry {
    rings: Vec<Arc<SpanRing>>,
    /// Bumped by [`reset`]; threads holding a stale generation re-register.
    generation: u64,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    rings: Vec::new(),
    generation: 0,
});
static GENERATION: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// The calling thread's ring (plus the generation it was registered
    /// under). The thread-local owns one `Arc`; the registry holds the
    /// other, so re-registering after a [`reset_spans`] drops the stale
    /// ring instead of leaking it.
    static LOCAL_RING: RefCell<Option<(u64, Arc<SpanRing>)>> = const { RefCell::new(None) };
}

fn register_ring() -> (u64, Arc<SpanRing>) {
    let ring = Arc::new(SpanRing::new(DEFAULT_RING_CAPACITY));
    let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    reg.rings.push(Arc::clone(&ring));
    (reg.generation, ring)
}

/// Records a span into the calling thread's ring (registering the ring on
/// first use or after a [`reset`]).
pub fn record_span(record: SpanRecord) {
    // `try_with` tolerates TLS teardown: spans recorded while the thread's
    // destructors run are silently dropped instead of panicking.
    let _ = LOCAL_RING.try_with(|cell| {
        let current_gen = GENERATION.load(Ordering::Relaxed);
        let mut local = cell.borrow_mut();
        match &*local {
            Some((generation, ring)) if *generation == current_gen => ring.push(record),
            _ => {
                let (generation, ring) = register_ring();
                ring.push(record);
                *local = Some((generation, ring));
            }
        }
    });
}

/// Collects every thread's stable spans, ordered by start time, plus the
/// total number of spans dropped to ring wraparound.
pub fn snapshot_spans() -> (Vec<SpanRecord>, u64) {
    let rings: Vec<Arc<SpanRing>> = {
        let reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
        reg.rings.clone()
    };
    let mut spans = Vec::new();
    let mut dropped = 0u64;
    for ring in rings {
        let (mut s, d) = ring.read();
        spans.append(&mut s);
        dropped += d;
    }
    spans.sort_by_key(|s| (s.start_ns, s.id));
    (spans, dropped)
}

/// Discards all recorded spans (each thread transparently re-registers a
/// fresh ring on its next span). Benches use this between configurations.
pub fn reset_spans() {
    let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    reg.rings.clear();
    reg.generation += 1;
    GENERATION.store(reg.generation, Ordering::Relaxed);
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a process-unique span id (never 0; 0 means "no parent").
pub fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// Convenience constructor for a finished span record.
pub fn finished_span(
    name: &'static str,
    cat: &'static str,
    start_ns: u64,
    id: u64,
    parent: u64,
) -> SpanRecord {
    SpanRecord {
        name,
        cat,
        start_ns,
        dur_ns: clock::now_ns().saturating_sub(start_ns),
        thread: clock::thread_id(),
        id,
        parent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u64) -> SpanRecord {
        SpanRecord {
            name: "t",
            cat: "test",
            start_ns: i,
            dur_ns: 1,
            thread: 1,
            id: i + 1,
            parent: 0,
        }
    }

    #[test]
    fn ring_preserves_everything_under_capacity() {
        let ring = SpanRing::new(8);
        for i in 0..5 {
            ring.push(rec(i));
        }
        let (spans, dropped) = ring.read();
        assert_eq!(dropped, 0);
        assert_eq!(
            spans.iter().map(|s| s.start_ns).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn wraparound_keeps_newest_and_counts_drops() {
        let ring = SpanRing::new(4);
        for i in 0..10 {
            ring.push(rec(i));
        }
        let (spans, dropped) = ring.read();
        assert_eq!(dropped, 6, "10 pushed into capacity 4");
        assert_eq!(
            spans.iter().map(|s| s.start_ns).collect::<Vec<_>>(),
            vec![6, 7, 8, 9],
            "the newest spans survive, oldest first"
        );
        assert_eq!(ring.dropped(), 6);
    }

    #[test]
    fn capacity_of_zero_is_clamped_to_one() {
        let ring = SpanRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.push(rec(0));
        ring.push(rec(1));
        let (spans, dropped) = ring.read();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].start_ns, 1);
        assert_eq!(dropped, 1);
    }

    #[test]
    fn concurrent_reads_see_only_coherent_records() {
        let ring = Arc::new(SpanRing::new(64));
        let writer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..50_000u64 {
                    // id and start_ns move in lockstep so a torn read is
                    // detectable as a mismatch.
                    ring.push(SpanRecord {
                        name: "w",
                        cat: "test",
                        start_ns: i,
                        dur_ns: i,
                        thread: 7,
                        id: i + 1,
                        parent: 0,
                    });
                }
            })
        };
        let mut snapshots = 0;
        loop {
            // Snapshot-then-check so at least one read races the writer
            // (or lands just after it) even if the writer wins the start.
            let done = writer.is_finished();
            let (spans, _) = ring.read();
            for s in spans {
                assert_eq!(s.id, s.start_ns + 1, "torn read escaped the seqlock");
                assert_eq!(s.dur_ns, s.start_ns);
            }
            snapshots += 1;
            if done {
                break;
            }
        }
        writer.join().unwrap();
        assert!(snapshots > 0);
        let (spans, dropped) = ring.read();
        assert_eq!(spans.len(), 64);
        assert_eq!(dropped, 50_000 - 64);
    }

    #[test]
    fn concurrent_pushers_are_serialized() {
        // The single-writer invariant is meant to be upheld by the
        // registry, but safe code can share a ring; pushes must then
        // serialize on the writer flag instead of racing.
        let ring = Arc::new(SpanRing::new(128));
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..10_000 {
                        ring.push(rec(t * 100_000 + i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let (spans, dropped) = ring.read();
        assert_eq!(ring.writes(), 40_000);
        assert_eq!(spans.len(), 128);
        assert_eq!(dropped, 40_000 - 128);
        for s in spans {
            assert_eq!(s.id, s.start_ns + 1, "torn write escaped the writer flag");
        }
    }

    #[test]
    fn span_ids_are_unique() {
        let a = next_span_id();
        let b = next_span_id();
        assert_ne!(a, b);
        assert_ne!(a, 0);
    }
}
