//! Trace exporters: JSON snapshot, chrome://tracing file, flat phase table.

use crate::event::{snapshot_events, EventRecord};
use crate::json;
use crate::recorder::{snapshot_spans, SpanRecord};
use crate::util::{utilization_report, UtilizationReport};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::PathBuf;

/// Environment variable naming the chrome trace output file.
pub const TRACE_FILE_ENV_VAR: &str = "HETEROMAP_TRACE_FILE";

/// Default chrome trace output file.
pub const DEFAULT_TRACE_FILE: &str = "heteromap_trace.json";

/// The chrome trace path: `$HETEROMAP_TRACE_FILE` or the default.
pub fn trace_file_path() -> PathBuf {
    std::env::var_os(TRACE_FILE_ENV_VAR)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(DEFAULT_TRACE_FILE))
}

/// A coherent copy of everything the observability layer has recorded.
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// All stable spans, ordered by start time.
    pub spans: Vec<SpanRecord>,
    /// Spans lost to ring wraparound.
    pub spans_dropped: u64,
    /// Structured events, oldest first.
    pub events: Vec<EventRecord>,
    /// Events lost to the log bound.
    pub events_dropped: u64,
    /// Aggregated per-worker utilization.
    pub utilization: UtilizationReport,
}

/// Captures the current spans, events, and utilization in one snapshot.
pub fn snapshot() -> TraceSnapshot {
    let (spans, spans_dropped) = snapshot_spans();
    let (events, events_dropped) = snapshot_events();
    TraceSnapshot {
        spans,
        spans_dropped,
        events,
        events_dropped,
        utilization: utilization_report(),
    }
}

/// Discards all recorded spans, events, and utilization samples.
pub fn reset() {
    crate::recorder::reset_spans();
    crate::event::reset_events();
    crate::util::reset_regions();
}

impl TraceSnapshot {
    /// Renders the snapshot in chrome://tracing `trace_event` format
    /// (load the file at `chrome://tracing` or <https://ui.perfetto.dev>).
    ///
    /// Spans become complete (`ph:"X"`) events with microsecond
    /// timestamps; structured events become instants (`ph:"i"`).
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::with_capacity(128 * (self.spans.len() + self.events.len()) + 256);
        out.push_str("{\"traceEvents\": [");
        let mut first = true;
        for span in &self.spans {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n  {{\"name\": {}, \"cat\": {}, \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \
                 \"pid\": 1, \"tid\": {}, \"args\": {{\"id\": {}, \"parent\": {}}}}}",
                json::escape(span.name),
                json::escape(span.cat),
                span.start_ns as f64 / 1_000.0,
                span.dur_ns as f64 / 1_000.0,
                span.thread,
                span.id,
                span.parent,
            );
        }
        for event in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n  {{\"name\": {}, \"cat\": \"event\", \"ph\": \"i\", \"ts\": {}, \
                 \"s\": \"t\", \"pid\": 1, \"tid\": {}, \"args\": {{\"detail\": {}}}}}",
                json::escape(event.kind),
                event.ts_ns as f64 / 1_000.0,
                event.thread,
                json::escape(&event.detail),
            );
        }
        let _ = write!(
            out,
            "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {{\"spans_dropped\": {}, \
             \"events_dropped\": {}}}}}\n",
            self.spans_dropped, self.events_dropped
        );
        out
    }

    /// Aggregates spans into per-(category, name) phase totals.
    pub fn phase_breakdown(&self) -> Vec<PhaseStat> {
        let mut phases: BTreeMap<(&'static str, &'static str), PhaseStat> = BTreeMap::new();
        for span in &self.spans {
            let stat = phases
                .entry((span.cat, span.name))
                .or_insert_with(|| PhaseStat {
                    cat: span.cat,
                    name: span.name,
                    count: 0,
                    total_ns: 0,
                    max_ns: 0,
                });
            stat.count += 1;
            stat.total_ns += span.dur_ns;
            stat.max_ns = stat.max_ns.max(span.dur_ns);
        }
        let mut out: Vec<PhaseStat> = phases.into_values().collect();
        out.sort_by_key(|stat| std::cmp::Reverse(stat.total_ns));
        out
    }

    /// Renders the phase breakdown as an aligned text table (bench bins
    /// print this after a run).
    pub fn phase_table(&self) -> String {
        let phases = self.phase_breakdown();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:<10} {:>8} {:>12} {:>12} {:>12}",
            "phase", "cat", "count", "total_ms", "mean_us", "max_us"
        );
        for p in &phases {
            let _ = writeln!(
                out,
                "{:<28} {:<10} {:>8} {:>12.3} {:>12.2} {:>12.2}",
                p.name,
                p.cat,
                p.count,
                p.total_ns as f64 / 1e6,
                p.mean_ns() / 1e3,
                p.max_ns as f64 / 1e3,
            );
        }
        if self.spans_dropped > 0 || self.events_dropped > 0 {
            let _ = writeln!(
                out,
                "(dropped: {} spans, {} events)",
                self.spans_dropped, self.events_dropped
            );
        }
        out
    }

    /// Renders a compact JSON summary: phase totals, utilization, drop
    /// counts. Bench artifacts embed this object.
    pub fn summary_json(&self) -> String {
        let mut out = String::from("{\"phases\": [");
        for (i, p) in self.phase_breakdown().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"name\": {}, \"cat\": {}, \"count\": {}, \"total_ns\": {}, \"max_ns\": {}}}",
                json::escape(p.name),
                json::escape(p.cat),
                p.count,
                p.total_ns,
                p.max_ns
            );
        }
        let _ = write!(
            out,
            "], \"spans\": {}, \"spans_dropped\": {}, \"events\": {}, \"events_dropped\": {}",
            self.spans.len(),
            self.spans_dropped,
            self.events.len(),
            self.events_dropped
        );
        out.push_str(", \"workers\": [");
        for (i, w) in self.utilization.workers.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"worker\": {}, \"busy_ns\": {}, \"parked_ns\": {}, \"occupancy\": {}}}",
                w.worker,
                w.busy_ns,
                w.parked_ns,
                json::num(w.occupancy)
            );
        }
        let _ = write!(
            out,
            "], \"regions\": {}, \"mean_occupancy\": {}}}",
            self.utilization.regions,
            json::num(self.utilization.mean_occupancy())
        );
        out
    }
}

/// Aggregate statistics for one span name within a category.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// Span category.
    pub cat: &'static str,
    /// Span name.
    pub name: &'static str,
    /// Occurrences.
    pub count: u64,
    /// Summed duration, nanoseconds.
    pub total_ns: u64,
    /// Longest single occurrence, nanoseconds.
    pub max_ns: u64,
}

impl PhaseStat {
    /// Mean duration in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// Writes the current snapshot as a chrome://tracing file at `path`
/// (callers usually pass [`trace_file_path`]).
pub fn write_chrome_trace(path: &std::path::Path) -> io::Result<TraceSnapshot> {
    let snap = snapshot();
    std::fs::write(path, snap.chrome_trace_json())?;
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str, cat: &'static str, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            name,
            cat,
            start_ns: start,
            dur_ns: dur,
            thread: 1,
            id: start + 1,
            parent: 0,
        }
    }

    fn sample_snapshot() -> TraceSnapshot {
        TraceSnapshot {
            spans: vec![
                span("predict", "core", 100, 2_000),
                span("predict", "core", 5_000, 4_000),
                span("ivector", "core", 0, 90),
            ],
            spans_dropped: 3,
            events: vec![EventRecord {
                ts_ns: 42,
                thread: 2,
                kind: "fault.transient",
                detail: "seed=7 \"quoted\"".to_string(),
            }],
            events_dropped: 0,
            utilization: UtilizationReport::from_regions(
                &[crate::util::RegionUtil {
                    label: "bfs",
                    wall_ns: 100,
                    busy_ns: vec![80, 60],
                }],
                0,
            ),
        }
    }

    #[test]
    fn chrome_trace_parses_and_carries_every_record() {
        let snap = sample_snapshot();
        let doc = json::parse(&snap.chrome_trace_json()).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 4, "3 spans + 1 instant");
        let complete: Vec<&json::Value> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .collect();
        assert_eq!(complete.len(), 3);
        // Span timestamps are microseconds.
        let predict = complete
            .iter()
            .find(|e| e.get("ts").unwrap().as_f64() == Some(0.1))
            .unwrap();
        assert_eq!(predict.get("dur").unwrap().as_f64(), Some(2.0));
        assert_eq!(predict.get("name").unwrap().as_str(), Some("predict"));
        let instant = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("i"))
            .unwrap();
        assert_eq!(
            instant.get("args").unwrap().get("detail").unwrap().as_str(),
            Some("seed=7 \"quoted\"")
        );
        assert_eq!(
            doc.get("otherData")
                .unwrap()
                .get("spans_dropped")
                .unwrap()
                .as_f64(),
            Some(3.0)
        );
    }

    #[test]
    fn phase_breakdown_aggregates_by_cat_and_name() {
        let snap = sample_snapshot();
        let phases = snap.phase_breakdown();
        assert_eq!(phases.len(), 2);
        // Sorted by total time descending: predict (6000) before ivector (90).
        assert_eq!(phases[0].name, "predict");
        assert_eq!(phases[0].count, 2);
        assert_eq!(phases[0].total_ns, 6_000);
        assert_eq!(phases[0].max_ns, 4_000);
        assert!((phases[0].mean_ns() - 3_000.0).abs() < 1e-9);
        assert_eq!(phases[1].name, "ivector");
    }

    #[test]
    fn phase_table_mentions_every_phase_and_drops() {
        let snap = sample_snapshot();
        let table = snap.phase_table();
        assert!(table.contains("predict"));
        assert!(table.contains("ivector"));
        assert!(table.contains("dropped: 3 spans"));
    }

    #[test]
    fn summary_json_is_valid_and_complete() {
        let snap = sample_snapshot();
        let doc = json::parse(&snap.summary_json()).expect("valid JSON");
        assert_eq!(doc.get("spans").unwrap().as_f64(), Some(3.0));
        assert_eq!(doc.get("spans_dropped").unwrap().as_f64(), Some(3.0));
        let workers = doc.get("workers").unwrap().as_array().unwrap();
        assert_eq!(workers.len(), 2);
        assert_eq!(workers[0].get("busy_ns").unwrap().as_f64(), Some(80.0));
        let phases = doc.get("phases").unwrap().as_array().unwrap();
        assert_eq!(phases.len(), 2);
    }

    #[test]
    fn trace_file_path_defaults_sensibly() {
        // The env var may or may not be set in the test environment; only
        // assert the default branch when it is absent.
        if std::env::var_os(TRACE_FILE_ENV_VAR).is_none() {
            assert_eq!(trace_file_path(), PathBuf::from(DEFAULT_TRACE_FILE));
        }
    }
}
