//! The structured event log: bounded, timestamped, with a quiet-aware
//! stderr mirror.
//!
//! Events cover the rare-but-important happenings spans don't capture well:
//! injected faults, retry/backoff decisions, failovers, cache
//! invalidations, lenient database reads. Two entry points:
//!
//! * [`event`] — records silently (when the level is
//!   [`TraceLevel::Full`](crate::TraceLevel::Full)); for high-volume
//!   machinery events like per-attempt fault draws;
//! * [`diag`] — additionally mirrors to stderr unless
//!   [`quiet`](crate::quiet) is set; the structured replacement for the
//!   ad-hoc `eprintln!` diagnostics it supersedes. Diagnostics print even
//!   with tracing off — turning tracing on must never be a precondition for
//!   seeing a warning.
//!
//! The detail string is built lazily (closure) so a disabled, quiet process
//! never formats anything.

use crate::clock;
use crate::config::{level, quiet, TraceLevel};
use std::collections::VecDeque;
use std::sync::Mutex;

/// One structured event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Emitting thread.
    pub thread: u32,
    /// Static dotted kind, e.g. `"fault.transient"`, `"cache.invalidate"`.
    pub kind: &'static str,
    /// Free-form detail (cause, seed, counts).
    pub detail: String,
}

/// Bound on retained events; the oldest are dropped (and counted) beyond it.
pub const EVENT_LOG_CAPACITY: usize = 4_096;

struct EventLog {
    events: VecDeque<EventRecord>,
    dropped: u64,
}

static EVENTS: Mutex<EventLog> = Mutex::new(EventLog {
    events: VecDeque::new(),
    dropped: 0,
});

fn push(kind: &'static str, detail: String) {
    let record = EventRecord {
        ts_ns: clock::now_ns(),
        thread: clock::thread_id(),
        kind,
        detail,
    };
    let mut log = EVENTS.lock().unwrap_or_else(|e| e.into_inner());
    if log.events.len() >= EVENT_LOG_CAPACITY {
        log.events.pop_front();
        log.dropped += 1;
    }
    log.events.push_back(record);
}

/// Records a structured event when full tracing is active. `detail` is only
/// evaluated if the event is recorded.
pub fn event<F: FnOnce() -> String>(kind: &'static str, detail: F) {
    if level() == TraceLevel::Full {
        push(kind, detail());
    }
}

/// Records a diagnostic event and mirrors it to stderr unless quiet.
///
/// The mirror fires regardless of trace level (this is the replacement for
/// plain `eprintln!` sites); the structured record additionally lands in
/// the event log under full tracing.
pub fn diag<F: FnOnce() -> String>(kind: &'static str, detail: F) {
    let record = level() == TraceLevel::Full;
    let mirror = !quiet();
    if !record && !mirror {
        return;
    }
    let detail = detail();
    if mirror {
        eprintln!("[{kind}] {detail}");
    }
    if record {
        push(kind, detail);
    }
}

/// Copies out the retained events (oldest first) and the drop count.
pub fn snapshot_events() -> (Vec<EventRecord>, u64) {
    let log = EVENTS.lock().unwrap_or_else(|e| e.into_inner());
    (log.events.iter().cloned().collect(), log.dropped)
}

/// Clears the event log (benches use this between configurations).
pub fn reset_events() {
    let mut log = EVENTS.lock().unwrap_or_else(|e| e.into_inner());
    log.events.clear();
    log.dropped = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{set_level, set_quiet};
    use crate::test_lock;

    fn events_of_kind(kind: &str) -> Vec<EventRecord> {
        snapshot_events()
            .0
            .into_iter()
            .filter(|e| e.kind == kind)
            .collect()
    }

    #[test]
    fn events_record_only_under_full() {
        let _guard = test_lock();
        set_level(TraceLevel::Spans);
        event("event_test.spans", || "ignored".into());
        assert!(events_of_kind("event_test.spans").is_empty());

        set_level(TraceLevel::Full);
        event("event_test.full", || "seed=42 cause=test".into());
        set_level(TraceLevel::Off);
        let got = events_of_kind("event_test.full");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].detail, "seed=42 cause=test");
        assert!(got[0].thread > 0);
    }

    #[test]
    fn disabled_event_never_formats() {
        let _guard = test_lock();
        set_level(TraceLevel::Off);
        event("event_test.lazy", || panic!("detail must not be built"));
    }

    #[test]
    fn quiet_diag_with_tracing_off_is_free() {
        let _guard = test_lock();
        set_level(TraceLevel::Off);
        set_quiet(true);
        diag("event_test.quiet", || panic!("detail must not be built"));
        set_quiet(false);
    }

    #[test]
    fn diag_records_under_full_even_when_quiet() {
        let _guard = test_lock();
        set_level(TraceLevel::Full);
        set_quiet(true);
        diag("event_test.diag", || "warned".into());
        set_level(TraceLevel::Off);
        set_quiet(false);
        let got = events_of_kind("event_test.diag");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].detail, "warned");
    }

    #[test]
    fn log_is_bounded_and_counts_drops() {
        let _guard = test_lock();
        set_level(TraceLevel::Full);
        reset_events();
        for i in 0..EVENT_LOG_CAPACITY + 10 {
            event("event_test.flood", move || format!("{i}"));
        }
        let (events, dropped) = snapshot_events();
        set_level(TraceLevel::Off);
        assert_eq!(events.len(), EVENT_LOG_CAPACITY);
        assert_eq!(dropped, 10);
        // Newest survive.
        assert_eq!(
            events.last().unwrap().detail,
            format!("{}", EVENT_LOG_CAPACITY + 9)
        );
        reset_events();
    }
}
