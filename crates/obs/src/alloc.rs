//! Feature-gated allocation probe for zero-allocation assertions.
//!
//! The serving hot path claims to be allocation-free in steady state; a
//! claim like that rots silently unless something counts. With the
//! `alloc-probe` feature enabled, this module installs a counting
//! `#[global_allocator]` (a pass-through wrapper over [`std::alloc::System`]
//! with one thread-local counter bump per `alloc`/`realloc`) so a test can
//! bracket a code region with [`thread_alloc_count`] and assert the delta is
//! zero. Without the feature nothing is installed, [`probe_enabled`] returns
//! `false`, and the count reads zero — callers skip gracefully.
//!
//! The counter is per-thread: a probe around single-threaded steady-state
//! serving is not perturbed by allocations on other threads.

#[cfg(feature = "alloc-probe")]
mod imp {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    thread_local! {
        // `const` init keeps first TLS access allocation-free, so the probe
        // itself never recurses into the allocator.
        static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
    }

    /// Pass-through allocator that counts `alloc`/`realloc` calls per thread.
    struct CountingAllocator;

    impl CountingAllocator {
        #[inline]
        fn bump() {
            // `try_with`: allocation during TLS teardown must not panic.
            let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        }
    }

    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            Self::bump();
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            Self::bump();
            unsafe { System.realloc(ptr, layout, new_size) }
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            Self::bump();
            unsafe { System.alloc_zeroed(layout) }
        }
    }

    #[global_allocator]
    static PROBE: CountingAllocator = CountingAllocator;

    pub fn thread_alloc_count() -> u64 {
        THREAD_ALLOCS.try_with(|c| c.get()).unwrap_or(0)
    }

    pub const fn probe_enabled() -> bool {
        true
    }
}

#[cfg(not(feature = "alloc-probe"))]
mod imp {
    pub fn thread_alloc_count() -> u64 {
        0
    }

    pub const fn probe_enabled() -> bool {
        false
    }
}

/// Number of heap allocations (`alloc` + `realloc` + `alloc_zeroed`) this
/// thread has performed since it started. Monotone; diff two readings to
/// count allocations in a region. Always `0` when [`probe_enabled`] is
/// `false`.
pub fn thread_alloc_count() -> u64 {
    imp::thread_alloc_count()
}

/// Whether the counting allocator is installed (the `alloc-probe` feature).
/// Zero-allocation assertions must be skipped when this is `false` — a zero
/// reading then means "not measured", not "no allocations".
pub const fn probe_enabled() -> bool {
    imp::probe_enabled()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_probe_reads_zero() {
        if !probe_enabled() {
            let _v: Vec<u64> = (0..64).collect();
            assert_eq!(thread_alloc_count(), 0);
        }
    }

    #[test]
    fn enabled_probe_counts_and_is_monotone() {
        if !probe_enabled() {
            return;
        }
        let before = thread_alloc_count();
        let v: Vec<u64> = Vec::with_capacity(128);
        let after = thread_alloc_count();
        assert!(after > before, "allocation must be counted");
        drop(v);
        assert!(thread_alloc_count() >= after, "monotone");
    }

    #[test]
    fn pure_arithmetic_allocates_nothing() {
        if !probe_enabled() {
            return;
        }
        let warm: u64 = (0..10u64).sum();
        let before = thread_alloc_count();
        let mut acc = warm;
        for k in 0..1000u64 {
            acc = acc.wrapping_mul(31).wrapping_add(k);
        }
        let after = thread_alloc_count();
        assert_eq!(after, before, "arithmetic loop allocated (acc={acc})");
    }
}
