//! Cross-layer observability for the HeteroMap reproduction: spans, a
//! lock-free flight recorder, per-worker utilization, a structured event
//! log, and exporters (chrome://tracing, JSON summaries, phase tables).
//!
//! # Design
//!
//! * **Spans** ([`span`]/[`span_cat`]/[`span!`]) are RAII guards around the
//!   pipeline stages the paper times — ivector construction, prediction,
//!   deployment, kernel execution, batch assembly. Each completed span lands
//!   in a per-thread lock-free ring ([`SpanRing`]) with bounded memory;
//!   overflow overwrites the oldest spans and is counted, flight-recorder
//!   style.
//! * **Utilization** ([`record_region`]/[`utilization_report`]) measures
//!   per-worker busy vs. parked time inside the execution engine's parallel
//!   regions — the runtime analogue of the paper's Fig. 13 core-utilization
//!   study.
//! * **Events** ([`event`]/[`diag`]) capture rare happenings: injected
//!   faults, retries, failovers, cache invalidations. [`diag`] also mirrors
//!   to stderr unless [`quiet`], replacing ad-hoc `eprintln!` diagnostics.
//! * **Metrics** ([`metrics`]) are the numeric complement to spans: a
//!   label-aware time-series registry (sharded counters, gauges,
//!   fixed-bucket histograms) aggregated into windowed ring buckets, with
//!   Prometheus text exposition, JSON snapshots and online drift detection
//!   (EWMA + Page-Hinkley) feeding typed [`metrics::HealthSignal`]s to the
//!   fleet placer. Gated on [`metrics_enabled`] (`HETEROMAP_METRICS`),
//!   same one-relaxed-load cost model as the trace level.
//! * **Exporters** ([`snapshot`], [`TraceSnapshot::chrome_trace_json`],
//!   [`TraceSnapshot::phase_table`], [`TraceSnapshot::summary_json`]) turn
//!   the recorded data into chrome://tracing files, aligned tables, and
//!   JSON objects for bench artifacts.
//!
//! # Cost model
//!
//! Everything is gated on [`level`], a single process-wide atomic read from
//! `HETEROMAP_TRACE` (`off`/`spans`/`full`) or [`set_level`]. With tracing
//! off, a [`span!`] costs one relaxed load and a branch — no clock read, no
//! allocation, no lock. The `exp_obs_overhead` bench in `heteromap-bench`
//! quantifies this against an uninstrumented baseline.
//!
//! This crate has no dependencies (so the leaf kernel crates can depend on
//! it without cycles) and does nothing until instrumentation runs.

#![warn(missing_docs)]
#![forbid(unsafe_op_in_unsafe_fn)]

pub mod alloc;
mod clock;
mod config;
mod event;
pub mod export;
pub mod json;
pub mod metrics;
mod recorder;
mod span;
pub mod util;

pub use alloc::{probe_enabled, thread_alloc_count};
pub use clock::{now_ns, thread_id};
pub use config::{
    enabled, level, quiet, set_level, set_quiet, TraceLevel, QUIET_ENV_VAR, TRACE_ENV_VAR,
};
pub use event::{diag, event, reset_events, snapshot_events, EventRecord, EVENT_LOG_CAPACITY};
pub use export::{
    reset, snapshot, trace_file_path, write_chrome_trace, PhaseStat, TraceSnapshot,
    DEFAULT_TRACE_FILE, TRACE_FILE_ENV_VAR,
};
pub use metrics::{metrics_enabled, set_metrics_enabled, MetricsHub, METRICS_ENV_VAR};
pub use recorder::{reset_spans, snapshot_spans, SpanRecord, SpanRing, DEFAULT_RING_CAPACITY};
pub use span::{span, span_cat, spans_named, SpanGuard};
pub use util::{
    current_region_label, record_region, region_scope, reset_regions, utilization_report,
    RegionLabelGuard, RegionUtil, UtilizationReport, WorkerUtil,
};

/// Serializes tests that touch the process-wide level/quiet state (Rust
/// runs tests concurrently; the flight recorder is global).
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end: record real spans and an event, export to
    /// chrome://tracing, parse the file back, and find every record.
    #[test]
    fn chrome_trace_round_trips_through_the_parser() {
        let _guard = test_lock();
        set_level(TraceLevel::Full);
        {
            let _outer = span_cat("lib_test_pipeline", "test");
            let _inner = span!("lib_test_stage", "test");
            event("lib_test.event", || "k=v".to_string());
        }
        set_level(TraceLevel::Off);

        let snap = snapshot();
        let doc = json::parse(&snap.chrome_trace_json()).expect("exporter emits valid JSON");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let find = |name: &str| {
            events
                .iter()
                .find(|e| e.get("name").and_then(json::Value::as_str) == Some(name))
        };
        let outer = find("lib_test_pipeline").expect("outer span exported");
        let inner = find("lib_test_stage").expect("inner span exported");
        let instant = find("lib_test.event").expect("event exported");
        assert_eq!(outer.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(inner.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(instant.get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(
            inner.get("args").unwrap().get("parent").unwrap().as_f64(),
            outer.get("args").unwrap().get("id").unwrap().as_f64(),
            "parent link survives export"
        );
    }

    /// Acceptance gate: `BENCH_obs.json` (written by `exp_obs_overhead`)
    /// must show disabled-mode overhead within 1%. Skips when the artifact
    /// has not been generated in this checkout.
    #[test]
    fn bench_artifact_disabled_overhead_within_one_percent() {
        let candidates = ["BENCH_obs.json", "../../BENCH_obs.json"];
        let Some(text) = candidates
            .iter()
            .find_map(|p| std::fs::read_to_string(p).ok())
        else {
            eprintln!("BENCH_obs.json not present; run exp_obs_overhead to enable this check");
            return;
        };
        let doc = json::parse(&text).expect("BENCH_obs.json parses");
        let overhead = doc
            .get("overhead_disabled")
            .and_then(json::Value::as_f64)
            .expect("overhead_disabled field");
        assert!(
            overhead <= 0.01,
            "disabled tracing overhead {overhead:.4} exceeds the 1% budget"
        );
    }
}
