//! Per-worker utilization accounting — the runtime analogue of the paper's
//! Fig. 13 core-utilization measurement.
//!
//! The execution engine reports one [`RegionUtil`] per parallel region: the
//! region's wall time plus each participating worker's busy nanoseconds.
//! Aggregation turns those into per-worker busy/parked totals and an
//! occupancy fraction (`busy / wall-while-participating`), which is exactly
//! what the paper measures per deployed `(B, I, M)` combination.
//!
//! Regions are labelled by a thread-local region label (set by the kernel
//! runner to the workload name) so a report can be sliced per kernel.

use std::cell::Cell;
use std::sync::Mutex;

/// Utilization sample for one parallel region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionUtil {
    /// Region label (workload name, or `"region"` when unlabelled).
    pub label: &'static str,
    /// Region wall-clock nanoseconds (entry to barrier exit).
    pub wall_ns: u64,
    /// Busy nanoseconds per participating worker, indexed by worker id
    /// (index 0 is the calling thread).
    pub busy_ns: Vec<u64>,
}

/// Bound on retained region samples.
pub const REGION_LOG_CAPACITY: usize = 65_536;

struct RegionLog {
    regions: Vec<RegionUtil>,
    dropped: u64,
}

static REGIONS: Mutex<RegionLog> = Mutex::new(RegionLog {
    regions: Vec::new(),
    dropped: 0,
});

/// Records one region's utilization sample.
pub fn record_region(label: &'static str, wall_ns: u64, busy_ns: Vec<u64>) {
    let mut log = REGIONS.lock().unwrap_or_else(|e| e.into_inner());
    if log.regions.len() >= REGION_LOG_CAPACITY {
        log.dropped += 1;
        return;
    }
    log.regions.push(RegionUtil {
        label,
        wall_ns,
        busy_ns,
    });
}

/// Copies out the retained region samples and the drop count.
pub fn snapshot_regions() -> (Vec<RegionUtil>, u64) {
    let log = REGIONS.lock().unwrap_or_else(|e| e.into_inner());
    (log.regions.clone(), log.dropped)
}

/// Clears retained region samples.
pub fn reset_regions() {
    let mut log = REGIONS.lock().unwrap_or_else(|e| e.into_inner());
    log.regions.clear();
    log.dropped = 0;
}

thread_local! {
    static REGION_LABEL: Cell<&'static str> = const { Cell::new("region") };
}

/// The calling thread's current region label.
pub fn current_region_label() -> &'static str {
    REGION_LABEL.with(Cell::get)
}

/// Scoped region label: parallel regions entered while the guard lives are
/// recorded under `label`.
#[must_use = "the label only applies while the guard is alive"]
#[derive(Debug)]
pub struct RegionLabelGuard {
    previous: &'static str,
}

/// Sets the thread-local region label for the guard's lifetime.
pub fn region_scope(label: &'static str) -> RegionLabelGuard {
    RegionLabelGuard {
        previous: REGION_LABEL.with(|l| l.replace(label)),
    }
}

impl Drop for RegionLabelGuard {
    fn drop(&mut self) {
        REGION_LABEL.with(|l| l.set(self.previous));
    }
}

/// Aggregated utilization for one worker index.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerUtil {
    /// Worker index (0 = the calling thread of each region).
    pub worker: usize,
    /// Total busy nanoseconds across participated regions.
    pub busy_ns: u64,
    /// Total parked nanoseconds while a participated region was running.
    pub parked_ns: u64,
    /// `busy / (busy + parked)`; `NaN` if the worker never participated.
    pub occupancy: f64,
}

/// The aggregated core-utilization report (Fig. 13 analogue).
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationReport {
    /// Per-worker totals, indexed by worker id.
    pub workers: Vec<WorkerUtil>,
    /// Regions aggregated.
    pub regions: usize,
    /// Sum of region wall times, nanoseconds.
    pub total_wall_ns: u64,
    /// Region samples dropped to the capacity bound.
    pub dropped: u64,
}

impl UtilizationReport {
    /// Aggregates explicit region samples (tests hand-build scenarios;
    /// production code goes through [`utilization_report`]).
    pub fn from_regions(regions: &[RegionUtil], dropped: u64) -> Self {
        let width = regions.iter().map(|r| r.busy_ns.len()).max().unwrap_or(0);
        let mut workers: Vec<WorkerUtil> = (0..width)
            .map(|worker| WorkerUtil {
                worker,
                busy_ns: 0,
                parked_ns: 0,
                occupancy: f64::NAN,
            })
            .collect();
        let mut total_wall_ns = 0u64;
        for region in regions {
            total_wall_ns += region.wall_ns;
            for (worker, &busy) in region.busy_ns.iter().enumerate() {
                // Busy can measure marginally past the region barrier;
                // clamp so parked time never underflows.
                let busy = busy.min(region.wall_ns);
                workers[worker].busy_ns += busy;
                workers[worker].parked_ns += region.wall_ns - busy;
            }
        }
        for w in &mut workers {
            let span = w.busy_ns + w.parked_ns;
            if span > 0 {
                w.occupancy = w.busy_ns as f64 / span as f64;
            }
        }
        UtilizationReport {
            workers,
            regions: regions.len(),
            total_wall_ns,
            dropped,
        }
    }

    /// Total busy nanoseconds across all workers.
    pub fn total_busy_ns(&self) -> u64 {
        self.workers.iter().map(|w| w.busy_ns).sum()
    }

    /// Mean occupancy over workers that participated at all.
    pub fn mean_occupancy(&self) -> f64 {
        let used: Vec<f64> = self
            .workers
            .iter()
            .map(|w| w.occupancy)
            .filter(|o| o.is_finite())
            .collect();
        if used.is_empty() {
            f64::NAN
        } else {
            used.iter().sum::<f64>() / used.len() as f64
        }
    }
}

/// Aggregates every retained region sample into a report.
pub fn utilization_report() -> UtilizationReport {
    let (regions, dropped) = snapshot_regions();
    UtilizationReport::from_regions(&regions, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_worker_scenario_matches_hand_computation() {
        // Region A: wall 100; worker0 busy 60, worker1 busy 40.
        // Region B: wall 50; worker0 busy 50 (worker1 absent).
        let regions = vec![
            RegionUtil {
                label: "a",
                wall_ns: 100,
                busy_ns: vec![60, 40],
            },
            RegionUtil {
                label: "b",
                wall_ns: 50,
                busy_ns: vec![50],
            },
        ];
        let report = UtilizationReport::from_regions(&regions, 0);
        assert_eq!(report.regions, 2);
        assert_eq!(report.total_wall_ns, 150);
        let w0 = &report.workers[0];
        let w1 = &report.workers[1];
        assert_eq!((w0.busy_ns, w0.parked_ns), (110, 40));
        assert_eq!((w1.busy_ns, w1.parked_ns), (40, 60));
        assert!((w0.occupancy - 110.0 / 150.0).abs() < 1e-12);
        assert!((w1.occupancy - 0.4).abs() < 1e-12);
        assert_eq!(report.total_busy_ns(), 150);
    }

    #[test]
    fn busy_never_exceeds_wall_times_workers() {
        let regions = vec![
            RegionUtil {
                label: "x",
                wall_ns: 10,
                // Busy overshoot (timer skew) is clamped to the wall.
                busy_ns: vec![25, 10, 3],
            },
            RegionUtil {
                label: "x",
                wall_ns: 7,
                busy_ns: vec![7, 7, 7],
            },
        ];
        let report = UtilizationReport::from_regions(&regions, 0);
        let workers = report.workers.len() as u64;
        assert!(report.total_busy_ns() <= report.total_wall_ns * workers);
        for w in &report.workers {
            assert!(w.occupancy <= 1.0);
        }
    }

    #[test]
    fn empty_report_is_nan_occupancy() {
        let report = UtilizationReport::from_regions(&[], 0);
        assert!(report.workers.is_empty());
        assert!(report.mean_occupancy().is_nan());
        assert_eq!(report.total_busy_ns(), 0);
    }

    #[test]
    fn region_label_scopes_nest_and_restore() {
        assert_eq!(current_region_label(), "region");
        {
            let _outer = region_scope("bfs");
            assert_eq!(current_region_label(), "bfs");
            {
                let _inner = region_scope("pagerank");
                assert_eq!(current_region_label(), "pagerank");
            }
            assert_eq!(current_region_label(), "bfs");
        }
        assert_eq!(current_region_label(), "region");
    }

    #[test]
    fn recorded_regions_round_trip_through_the_global_log() {
        record_region("util_test_unique_label", 42, vec![21, 7]);
        let (regions, _) = snapshot_regions();
        let mine: Vec<&RegionUtil> = regions
            .iter()
            .filter(|r| r.label == "util_test_unique_label")
            .collect();
        assert_eq!(mine.len(), 1);
        assert_eq!(mine[0].wall_ns, 42);
        assert_eq!(mine[0].busy_ns, vec![21, 7]);
    }
}
