//! RAII span guards and the thread-local parent stack.

use crate::clock;
use crate::config::{level, TraceLevel};
use crate::recorder::{self, SpanRecord};
use std::cell::RefCell;
use std::marker::PhantomData;

thread_local! {
    /// Ids of the spans currently open on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// An open span; records itself into the flight recorder on drop.
///
/// Obtained from [`span`]/[`span_cat`] (or the [`crate::span!`] macro).
/// When tracing is off the guard is inert: no clock read, no allocation,
/// nothing recorded.
#[derive(Debug)]
#[must_use = "a span measures the scope holding its guard"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
    /// `!Send`: the guard's id sits on the opening thread's `SPAN_STACK`,
    /// so dropping it on another thread would strand the id there and
    /// corrupt every later span's parent on the origin thread.
    _not_send: PhantomData<*const ()>,
}

#[derive(Debug)]
struct ActiveSpan {
    name: &'static str,
    cat: &'static str,
    start_ns: u64,
    id: u64,
    parent: u64,
}

/// Opens a span in the default `"app"` category.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_cat(name, "app")
}

/// Opens a span under an explicit category (used as the chrome://tracing
/// `cat` field and for per-layer filtering).
///
/// The disabled check is a raw byte compare so span sites in sub-µs hot
/// paths (the per-schedule pipeline) stay within the 1% overhead budget;
/// the uninitialized sentinel reads as "not off" and falls into the cold
/// path, which resolves the level from the environment.
#[inline]
pub fn span_cat(name: &'static str, cat: &'static str) -> SpanGuard {
    if crate::config::raw_level_is_off() {
        return SpanGuard {
            active: None,
            _not_send: PhantomData,
        };
    }
    span_cat_cold(name, cat)
}

#[cold]
fn span_cat_cold(name: &'static str, cat: &'static str) -> SpanGuard {
    if level() == TraceLevel::Off {
        // First span before the lazy env read resolved the level to Off.
        return SpanGuard {
            active: None,
            _not_send: PhantomData,
        };
    }
    let id = recorder::next_span_id();
    let parent = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied().unwrap_or(0);
        stack.push(id);
        parent
    });
    SpanGuard {
        active: Some(ActiveSpan {
            name,
            cat,
            start_ns: clock::now_ns(),
            id,
            parent,
        }),
        _not_send: PhantomData,
    }
}

impl SpanGuard {
    /// Whether this guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }

    /// The span's id (0 when tracing is off).
    pub fn id(&self) -> u64 {
        self.active.as_ref().map_or(0, |a| a.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards drop in LIFO order in well-formed code; tolerate
            // out-of-order drops (e.g. a guard moved into a struct) by
            // removing the id wherever it sits.
            if stack.last() == Some(&active.id) {
                stack.pop();
            } else if let Some(pos) = stack.iter().rposition(|&id| id == active.id) {
                stack.remove(pos);
            }
        });
        // Level may have flipped while the span was open; record anyway —
        // the start was measured, and losing closing spans on a live
        // toggle is worse than one extra record.
        recorder::record_span(recorder::finished_span(
            active.name,
            active.cat,
            active.start_ns,
            active.id,
            active.parent,
        ));
    }
}

/// Opens a [`SpanGuard`]: `span!("predict")` or `span!("predict", "core")`.
///
/// Binds nothing by itself — assign it (`let _span = span!(...)`) so the
/// guard lives for the scope being measured.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $cat:expr) => {
        $crate::span_cat($name, $cat)
    };
}

/// Returns all recorded spans matching `name` (test helper; snapshots the
/// whole flight recorder).
pub fn spans_named(name: &str) -> Vec<SpanRecord> {
    recorder::snapshot_spans()
        .0
        .into_iter()
        .filter(|s| s.name == name)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::set_level;
    use crate::test_lock;

    /// Compile-time proof that `SpanGuard` is `!Send`: if it ever became
    /// `Send`, both blanket impls would apply and this call would fail to
    /// compile as ambiguous.
    #[allow(dead_code)]
    fn span_guard_is_not_send() {
        trait AmbiguousIfSend<A> {
            fn check() {}
        }
        struct IsSend;
        impl<T: ?Sized> AmbiguousIfSend<()> for T {}
        impl<T: ?Sized + Send> AmbiguousIfSend<IsSend> for T {}
        <SpanGuard as AmbiguousIfSend<_>>::check();
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _guard = test_lock();
        set_level(TraceLevel::Off);
        let s = span("span_test_disabled");
        assert!(!s.is_recording());
        assert_eq!(s.id(), 0);
        drop(s);
        assert!(spans_named("span_test_disabled").is_empty());
    }

    #[test]
    fn nested_spans_link_parents() {
        let _guard = test_lock();
        set_level(TraceLevel::Spans);
        {
            let outer = span_cat("span_test_outer", "test");
            let outer_id = outer.id();
            {
                let inner = span!("span_test_inner", "test");
                assert!(inner.is_recording());
            }
            assert!(outer_id != 0);
        }
        set_level(TraceLevel::Off);
        let outer = spans_named("span_test_outer");
        let inner = spans_named("span_test_inner");
        assert_eq!(outer.len(), 1);
        assert_eq!(inner.len(), 1);
        assert_eq!(inner[0].parent, outer[0].id);
        assert_eq!(outer[0].parent, 0);
        assert!(inner[0].start_ns >= outer[0].start_ns);
        assert!(inner[0].dur_ns <= outer[0].dur_ns);
        assert_eq!(outer[0].cat, "test");
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let _guard = test_lock();
        set_level(TraceLevel::Spans);
        {
            let root = span!("span_test_root");
            let _ = root.id();
            let _a = span!("span_test_sib_a");
            drop(_a);
            let _b = span!("span_test_sib_b");
        }
        set_level(TraceLevel::Off);
        let root = spans_named("span_test_root");
        let a = spans_named("span_test_sib_a");
        let b = spans_named("span_test_sib_b");
        assert_eq!(a[0].parent, root[0].id);
        assert_eq!(b[0].parent, root[0].id);
    }
}
