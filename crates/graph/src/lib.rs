//! Graph substrate for the HeteroMap reproduction.
//!
//! This crate provides everything HeteroMap needs from graphs:
//!
//! * a compact [`CsrGraph`] (compressed sparse row) representation built from
//!   an [`EdgeList`],
//! * synthetic graph generators (uniform random, Kronecker, R-MAT, road-like
//!   grids, power-law social graphs) in [`gen`],
//! * structural statistics ([`GraphStats`]) including an approximate diameter,
//!   which feed the paper's `I` input variables, plus incrementally
//!   maintained counters ([`IncrementalStats`]) for graphs mutating under
//!   edge deltas,
//! * the paper's Table I dataset registry ([`datasets`]) with scaled-down
//!   structural surrogates for host execution,
//! * Stinger-like chunk streaming ([`stream`]) for graphs larger than an
//!   accelerator's memory, and a vertex-range [`partition`]er,
//! * SNAP/DIMACS-style plain-text edge-list [`io`].
//!
//! # Example
//!
//! ```
//! use heteromap_graph::gen::GraphGenerator;
//! use heteromap_graph::gen::UniformRandom;
//!
//! let graph = UniformRandom::new(1_000, 8_000).generate(42);
//! let stats = graph.stats();
//! assert_eq!(stats.vertices, 1_000);
//! assert!(stats.edges > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod csr;
pub mod datasets;
pub mod edgelist;
pub mod gen;
pub mod incremental;
pub mod io;
pub mod partition;
pub mod stats;
pub mod stream;

pub use csr::CsrGraph;
pub use edgelist::EdgeList;
pub use incremental::IncrementalStats;
pub use stats::{AdjacencySource, GraphStats};

use std::error::Error;
use std::fmt;

/// Vertex identifier used across the crate.
pub type VertexId = u32;

/// Errors produced when constructing or manipulating graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge referenced a vertex id outside `0..vertex_count`.
    VertexOutOfBounds {
        /// The offending vertex id.
        vertex: VertexId,
        /// The number of vertices in the graph.
        vertex_count: usize,
    },
    /// A generator was asked for an impossible configuration
    /// (e.g. more edges than a simple graph can hold).
    InvalidGeneratorConfig(String),
    /// A requested chunk does not exist.
    ChunkOutOfBounds {
        /// The requested chunk index.
        index: usize,
        /// The number of chunks available.
        chunk_count: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfBounds {
                vertex,
                vertex_count,
            } => write!(
                f,
                "vertex {vertex} out of bounds for graph with {vertex_count} vertices"
            ),
            GraphError::InvalidGeneratorConfig(msg) => {
                write!(f, "invalid generator configuration: {msg}")
            }
            GraphError::ChunkOutOfBounds { index, chunk_count } => {
                write!(f, "chunk {index} out of bounds ({chunk_count} chunks)")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        let e = GraphError::VertexOutOfBounds {
            vertex: 7,
            vertex_count: 3,
        };
        assert!(!e.to_string().is_empty());
        let e = GraphError::InvalidGeneratorConfig("too many edges".into());
        assert!(e.to_string().contains("too many edges"));
        let e = GraphError::ChunkOutOfBounds {
            index: 9,
            chunk_count: 2,
        };
        assert!(e.to_string().contains('9'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
