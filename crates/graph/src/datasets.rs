//! The paper's Table I evaluation datasets.
//!
//! We cannot ship Twitter or Friendster (billions of edges, proprietary
//! crawls); instead each dataset carries its **published statistics** (which
//! is all the `I` variables and the accelerator cost model consume) plus a
//! **structural surrogate generator** that reproduces the dataset's shape —
//! planar/long-diameter for roads, heavy-tailed/small-world for social
//! networks, dense for the connectome — at a host-executable scale for the
//! real threaded kernels. This substitution is documented in DESIGN.md §2.

use crate::gen::{GraphGenerator, Grid, Kronecker, PowerLaw, UniformRandom};
use crate::stats::GraphStats;
use crate::CsrGraph;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the nine evaluation inputs from Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Dataset {
    /// USA-Cal road network (CA): 1.9M vertices, 4.7M edges, diameter 850.
    UsaCal,
    /// Facebook social graph (FB): 2.9M vertices, 41.9M edges.
    Facebook,
    /// LiveJournal (LJ): 4.8M vertices, 85.7M edges.
    LiveJournal,
    /// Twitter follower graph (Twtr): 41.7M vertices, 1.47B edges.
    Twitter,
    /// Friendster (Frnd): 65.6M vertices, 1.81B edges.
    Friendster,
    /// Mouse Retina 3 connectome (CO): 562 vertices, 0.57M edges — dense.
    MouseRetina,
    /// CAGE-14 DNA electrophoresis matrix (CAGE): 1.5M vertices, 25.6M edges.
    Cage14,
    /// rgg-n-24 random geometric graph (Rgg): 16.8M vertices, diameter 2622.
    RggN24,
    /// Large Kronecker graph (Kron): 134M vertices, 2.15B edges.
    KronLarge,
}

impl Dataset {
    /// All nine Table I datasets in paper order.
    pub fn all() -> [Dataset; 9] {
        [
            Dataset::UsaCal,
            Dataset::Facebook,
            Dataset::LiveJournal,
            Dataset::Twitter,
            Dataset::Friendster,
            Dataset::MouseRetina,
            Dataset::Cage14,
            Dataset::RggN24,
            Dataset::KronLarge,
        ]
    }

    /// The paper's abbreviation (the x-axis labels of Figs. 11/14).
    pub fn abbrev(&self) -> &'static str {
        match self {
            Dataset::UsaCal => "CA",
            Dataset::Facebook => "FB",
            Dataset::LiveJournal => "LJ",
            Dataset::Twitter => "Twtr",
            Dataset::Friendster => "Frnd",
            Dataset::MouseRetina => "CO",
            Dataset::Cage14 => "CAGE",
            Dataset::RggN24 => "Rgg",
            Dataset::KronLarge => "Kron",
        }
    }

    /// Full dataset name as printed in Table I.
    pub fn full_name(&self) -> &'static str {
        match self {
            Dataset::UsaCal => "USA-Cal",
            Dataset::Facebook => "Facebook",
            Dataset::LiveJournal => "Livejournal",
            Dataset::Twitter => "Twitter",
            Dataset::Friendster => "Friendster",
            Dataset::MouseRetina => "Mouse Retina 3",
            Dataset::Cage14 => "Cage14",
            Dataset::RggN24 => "rgg-n-24",
            Dataset::KronLarge => "KronLarge",
        }
    }

    /// Published full-scale statistics (Table I). These drive the `I`
    /// variables and the accelerator simulator; no giant download needed.
    ///
    /// Two diameters are garbled in the paper's table scan; CO uses 8 (stated
    /// in the row) and CAGE uses 40, consistent with the text's "CAGE-14 ...
    /// has a lower diameter" relative to USA-Cal's 850.
    pub fn stats(&self) -> GraphStats {
        match self {
            Dataset::UsaCal => GraphStats::from_known(1_900_000, 4_700_000, 12, 850),
            Dataset::Facebook => GraphStats::from_known(2_900_000, 41_900_000, 90_000, 12),
            Dataset::LiveJournal => GraphStats::from_known(4_800_000, 85_700_000, 20_000, 16),
            Dataset::Twitter => GraphStats::from_known(41_700_000, 1_470_000_000, 3_000_000, 5),
            Dataset::Friendster => GraphStats::from_known(65_600_000, 1_810_000_000, 5_200, 32),
            Dataset::MouseRetina => GraphStats::from_known(562, 570_000, 1_027, 8),
            Dataset::Cage14 => GraphStats::from_known(1_500_000, 25_600_000, 80, 40),
            Dataset::RggN24 => GraphStats::from_known(16_800_000, 387_000_000, 40, 2_622),
            Dataset::KronLarge => GraphStats::from_known(134_000_000, 2_150_000_000, 16_000, 12),
        }
    }

    /// A structural surrogate generator at roughly `target_vertices` scale.
    ///
    /// The surrogate preserves the dataset's *shape* — degree distribution
    /// family, density regime, diameter regime — so that real kernel
    /// executions on the surrogate exercise the same code paths the original
    /// would (see DESIGN.md §2).
    pub fn surrogate(&self, target_vertices: usize) -> Box<dyn GraphGenerator> {
        let n = target_vertices.max(16);
        match self {
            // Roads and random-geometric graphs: planar lattices.
            Dataset::UsaCal | Dataset::RggN24 => {
                let side = (n as f64).sqrt().ceil() as usize;
                Box::new(Grid::new(side, side))
            }
            // Social graphs: preferential attachment; attach scaled to the
            // published average degree.
            Dataset::Facebook => Box::new(PowerLaw::new(n, 7)),
            Dataset::LiveJournal => Box::new(PowerLaw::new(n, 9)),
            Dataset::Twitter => Box::new(PowerLaw::new(n, 17)),
            Dataset::Friendster => Box::new(PowerLaw::new(n, 14)),
            // Dense connectome: uniformly dense small graph. The original is
            // tiny enough that we keep its true vertex count and density.
            Dataset::MouseRetina => Box::new(UniformRandom::new(562, 570_000.min(n * 500))),
            // Regular sparse matrix: uniform random with avg degree ~17.
            Dataset::Cage14 => Box::new(UniformRandom::new(n, n * 17)),
            // Kronecker stays Kronecker.
            Dataset::KronLarge => {
                let scale = (n as f64).log2().ceil() as u32;
                Box::new(Kronecker::new(scale, 16.0))
            }
        }
    }

    /// Convenience: generate the surrogate graph directly.
    pub fn surrogate_graph(&self, target_vertices: usize, seed: u64) -> CsrGraph {
        self.surrogate(target_vertices).generate(seed)
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// Literature-wide maxima used for log-normalizing `I` variables (Section
/// III-B): the largest vertex count, edge count, max degree, and diameter
/// across the datasets "available in literature" — within Table I these are
/// KronLarge (V, E), Twitter (max degree) and rgg-n-24 (diameter).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LiteratureMaxima {
    /// Largest vertex count (KronLarge: 134M).
    pub vertices: u64,
    /// Largest edge count (KronLarge: 2.15B).
    pub edges: u64,
    /// Largest max-degree (Twitter: 3M).
    pub max_degree: u64,
    /// Largest diameter (rgg-n-24: 2622).
    pub diameter: u64,
}

impl LiteratureMaxima {
    /// The maxima over the paper's Table I.
    pub fn paper() -> Self {
        LiteratureMaxima {
            vertices: 134_000_000,
            edges: 2_150_000_000,
            max_degree: 3_000_000,
            diameter: 2_622,
        }
    }

    /// Recomputes the maxima over an arbitrary set of stats (useful when
    /// normalizing fleets of synthetic graphs).
    pub fn from_stats<'a, S: IntoIterator<Item = &'a GraphStats>>(stats: S) -> Self {
        let mut m = LiteratureMaxima {
            vertices: 1,
            edges: 1,
            max_degree: 1,
            diameter: 1,
        };
        for s in stats {
            m.vertices = m.vertices.max(s.vertices);
            m.edges = m.edges.max(s.edges);
            m.max_degree = m.max_degree.max(s.max_degree);
            m.diameter = m.diameter.max(s.diameter);
        }
        m
    }
}

impl Default for LiteratureMaxima {
    fn default() -> Self {
        LiteratureMaxima::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_row_count_and_order() {
        let all = Dataset::all();
        assert_eq!(all.len(), 9);
        assert_eq!(all[0].abbrev(), "CA");
        assert_eq!(all[8].abbrev(), "Kron");
    }

    #[test]
    fn paper_maxima_match_table1() {
        let maxima = LiteratureMaxima::from_stats(
            Dataset::all()
                .iter()
                .map(|d| d.stats())
                .collect::<Vec<_>>()
                .iter(),
        );
        let paper = LiteratureMaxima::paper();
        assert_eq!(maxima.vertices, paper.vertices);
        assert_eq!(maxima.edges, paper.edges);
        assert_eq!(maxima.max_degree, paper.max_degree);
        assert_eq!(maxima.diameter, paper.diameter);
    }

    #[test]
    fn road_surrogate_has_long_diameter_and_low_degree() {
        let g = Dataset::UsaCal.surrogate_graph(900, 1);
        let s = g.stats();
        assert!(s.max_degree <= 4);
        assert!(s.diameter >= 30, "diameter {}", s.diameter);
    }

    #[test]
    fn social_surrogate_has_hubs_and_small_diameter() {
        let g = Dataset::Twitter.surrogate_graph(1_000, 1);
        let s = g.stats();
        assert!(s.max_degree as f64 > 4.0 * s.average_degree());
        assert!(s.diameter <= 10, "diameter {}", s.diameter);
    }

    #[test]
    fn connectome_surrogate_is_dense() {
        let g = Dataset::MouseRetina.surrogate_graph(562, 1);
        let s = g.stats();
        assert!(
            s.average_degree() > 50.0,
            "avg degree {}",
            s.average_degree()
        );
    }

    #[test]
    fn stats_match_published_headline_numbers() {
        assert_eq!(Dataset::UsaCal.stats().diameter, 850);
        assert_eq!(Dataset::Twitter.stats().max_degree, 3_000_000);
        assert_eq!(Dataset::RggN24.stats().diameter, 2_622);
        assert_eq!(Dataset::KronLarge.stats().edges, 2_150_000_000);
    }

    #[test]
    fn display_uses_abbrev() {
        assert_eq!(Dataset::Facebook.to_string(), "FB");
    }
}
