//! Compressed sparse row (CSR) graph representation.

use crate::edgelist::EdgeList;
use crate::stats::GraphStats;
use crate::{GraphError, VertexId};
use std::sync::{Arc, OnceLock};

/// An immutable directed graph in compressed-sparse-row form.
///
/// Vertices are dense ids `0..vertex_count`. Out-edges of vertex `v` occupy
/// `offsets[v]..offsets[v + 1]` in the `targets`/`weights` arrays. This is the
/// layout every kernel in `heteromap-kernels` consumes, mirroring the CSR
/// layouts used by CRONO / GAP / Pannotia in the paper.
///
/// # Example
///
/// ```
/// use heteromap_graph::{CsrGraph, EdgeList};
///
/// let mut el = EdgeList::new(3);
/// el.push(0, 1, 1.0);
/// el.push(0, 2, 2.0);
/// el.push(1, 2, 3.0);
/// let g = CsrGraph::from_edge_list(el).unwrap();
/// assert_eq!(g.out_degree(0), 2);
/// assert_eq!(g.neighbors(1), &[2]);
/// ```
#[derive(Debug)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
    weights: Vec<f32>,
    /// Lazily computed transpose, shared by reference across kernels
    /// (pull-PageRank gathers and bottom-up BFS both need in-neighbours).
    transpose_cache: OnceLock<Arc<CsrGraph>>,
}

impl Clone for CsrGraph {
    fn clone(&self) -> Self {
        // The cache is per-instance; a clone recomputes lazily if needed.
        CsrGraph {
            offsets: self.offsets.clone(),
            targets: self.targets.clone(),
            weights: self.weights.clone(),
            transpose_cache: OnceLock::new(),
        }
    }
}

impl PartialEq for CsrGraph {
    fn eq(&self, other: &Self) -> bool {
        // Equality is structural; the transpose cache is derived state.
        self.offsets == other.offsets
            && self.targets == other.targets
            && self.weights == other.weights
    }
}

impl CsrGraph {
    /// Builds a CSR graph from an [`EdgeList`] using a counting sort, so
    /// construction is `O(V + E)`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfBounds`] if any edge endpoint is
    /// outside `0..vertex_count`.
    pub fn from_edge_list(edges: EdgeList) -> Result<Self, GraphError> {
        let (n, sources, targets, weights) = edges.into_parts();
        for &v in sources.iter().chain(targets.iter()) {
            if (v as usize) >= n {
                return Err(GraphError::VertexOutOfBounds {
                    vertex: v,
                    vertex_count: n,
                });
            }
        }
        let mut offsets = vec![0usize; n + 1];
        for &s in &sources {
            offsets[s as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let m = sources.len();
        let mut out_targets = vec![0 as VertexId; m];
        let mut out_weights = vec![0.0f32; m];
        let mut cursor = offsets.clone();
        for i in 0..m {
            let s = sources[i] as usize;
            let at = cursor[s];
            out_targets[at] = targets[i];
            out_weights[at] = weights[i];
            cursor[s] += 1;
        }
        // Sort each adjacency run for deterministic iteration and fast
        // intersection (triangle counting relies on sorted neighbours).
        let mut g = CsrGraph {
            offsets,
            targets: out_targets,
            weights: out_weights,
            transpose_cache: OnceLock::new(),
        };
        g.sort_adjacency();
        Ok(g)
    }

    fn sort_adjacency(&mut self) {
        let n = self.vertex_count();
        for v in 0..n {
            let (lo, hi) = (self.offsets[v], self.offsets[v + 1]);
            let mut idx: Vec<usize> = (lo..hi).collect();
            idx.sort_unstable_by_key(|&i| self.targets[i]);
            let t: Vec<VertexId> = idx.iter().map(|&i| self.targets[i]).collect();
            let w: Vec<f32> = idx.iter().map(|&i| self.weights[i]).collect();
            self.targets[lo..hi].copy_from_slice(&t);
            self.weights[lo..hi].copy_from_slice(&w);
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn out_degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Out-neighbours of `v`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Weights parallel to [`CsrGraph::neighbors`].
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn weights(&self, v: VertexId) -> &[f32] {
        let v = v as usize;
        &self.weights[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Iterates `(neighbor, weight)` pairs of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, f32)> + '_ {
        self.neighbors(v)
            .iter()
            .copied()
            .zip(self.weights(v).iter().copied())
    }

    /// Maximum out-degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.vertex_count())
            .map(|v| self.out_degree(v as VertexId))
            .max()
            .unwrap_or(0)
    }

    /// Average out-degree (`E / V`), or 0.0 for an empty graph.
    pub fn average_degree(&self) -> f64 {
        if self.vertex_count() == 0 {
            0.0
        } else {
            self.edge_count() as f64 / self.vertex_count() as f64
        }
    }

    /// Returns the transposed graph (every edge reversed), preserving weights.
    pub fn transpose(&self) -> CsrGraph {
        let n = self.vertex_count();
        let mut el = EdgeList::with_capacity(n, self.edge_count());
        for v in 0..n {
            for (t, w) in self.edges(v as VertexId) {
                el.push(t, v as VertexId, w);
            }
        }
        // Cannot fail: all ids came from a valid graph.
        CsrGraph::from_edge_list(el).expect("transpose endpoints are in range")
    }

    /// The transposed graph, computed once per instance and shared by
    /// reference afterwards. Kernels that need in-neighbours repeatedly
    /// (pull PageRank every call, bottom-up BFS every level) amortize the
    /// `O(V + E)` transpose across all invocations on the same graph.
    pub fn transpose_cached(&self) -> Arc<CsrGraph> {
        Arc::clone(
            self.transpose_cache
                .get_or_init(|| Arc::new(self.transpose())),
        )
    }

    /// Computes full structural statistics (degree distribution, approximate
    /// diameter); see [`GraphStats::measure`].
    pub fn stats(&self) -> GraphStats {
        GraphStats::measure(self)
    }

    /// Approximate size in bytes of the CSR arrays, used by the memory model
    /// when deciding whether a graph fits in an accelerator's DRAM.
    pub fn footprint_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.targets.len() * std::mem::size_of::<VertexId>()
            + self.weights.len() * std::mem::size_of::<f32>()
    }

    /// Extracts the subgraph induced by the vertex range `lo..hi`, with edges
    /// leaving the range dropped. Vertex ids are remapped to `0..(hi - lo)`.
    /// Used by the Stinger-like chunk streamer.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `hi > vertex_count`.
    pub fn vertex_range_subgraph(&self, lo: VertexId, hi: VertexId) -> CsrGraph {
        assert!(lo <= hi && (hi as usize) <= self.vertex_count());
        let n = (hi - lo) as usize;
        let mut el = EdgeList::new(n);
        for v in lo..hi {
            for (t, w) in self.edges(v) {
                if t >= lo && t < hi {
                    el.push(v - lo, t - lo, w);
                }
            }
        }
        CsrGraph::from_edge_list(el).expect("subgraph endpoints are in range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut el = EdgeList::new(4);
        el.push(0, 1, 1.0);
        el.push(0, 2, 1.0);
        el.push(1, 3, 1.0);
        el.push(2, 3, 1.0);
        el.into_csr().unwrap()
    }

    #[test]
    fn counts_and_degrees() {
        let g = diamond();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.max_degree(), 2);
        assert!((g.average_degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn neighbors_are_sorted() {
        let mut el = EdgeList::new(3);
        el.push(0, 2, 1.0);
        el.push(0, 1, 2.0);
        let g = el.into_csr().unwrap();
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.weights(0), &[2.0, 1.0]);
    }

    #[test]
    fn out_of_bounds_edge_is_rejected() {
        let mut el = EdgeList::new(2);
        el.push(0, 5, 1.0);
        let err = el.into_csr().unwrap_err();
        assert!(matches!(
            err,
            GraphError::VertexOutOfBounds { vertex: 5, .. }
        ));
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.edge_count(), 4);
        assert_eq!(t.neighbors(3), &[1, 2]);
        assert_eq!(t.neighbors(0), &[] as &[VertexId]);
        // Transposing twice gives back the original.
        assert_eq!(t.transpose(), g);
    }

    #[test]
    fn cached_transpose_matches_and_is_shared() {
        let g = diamond();
        let a = g.transpose_cached();
        assert_eq!(*a, g.transpose());
        let b = g.transpose_cached();
        // Same allocation, not a recomputation.
        assert!(Arc::ptr_eq(&a, &b));
        // Clones do not inherit the cache but recompute identically.
        let c = g.clone();
        assert_eq!(*c.transpose_cached(), *a);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = EdgeList::new(0).into_csr().unwrap();
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.average_degree(), 0.0);
    }

    #[test]
    fn subgraph_remaps_and_filters() {
        let g = diamond();
        let s = g.vertex_range_subgraph(1, 4); // vertices 1,2,3 -> 0,1,2
        assert_eq!(s.vertex_count(), 3);
        // edges 1->3 and 2->3 survive as 0->2, 1->2; 0->1 / 0->2 dropped.
        assert_eq!(s.edge_count(), 2);
        assert_eq!(s.neighbors(0), &[2]);
        assert_eq!(s.neighbors(1), &[2]);
    }

    #[test]
    fn footprint_is_positive_for_nonempty() {
        let g = diamond();
        assert!(g.footprint_bytes() > 0);
    }

    #[test]
    fn edges_iterator_pairs_targets_with_weights() {
        let g = diamond();
        let pairs: Vec<_> = g.edges(0).collect();
        assert_eq!(pairs, vec![(1, 1.0), (2, 1.0)]);
    }
}
