//! Uniform random (Erdős–Rényi / GTgraph `random`) generator.

use super::GraphGenerator;
use crate::{CsrGraph, EdgeList, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform random directed graph: `edges` edges drawn uniformly from
/// `V × V`, self-loops and duplicates removed, matching GTgraph's random
/// generator used for HeteroMap's training inputs (Table III).
///
/// # Example
///
/// ```
/// use heteromap_graph::gen::{GraphGenerator, UniformRandom};
///
/// let g = UniformRandom::new(500, 2_000).generate(1);
/// assert_eq!(g.vertex_count(), 500);
/// assert!(g.edge_count() <= 2_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformRandom {
    vertices: usize,
    edges: usize,
}

impl UniformRandom {
    /// Creates a generator for `vertices` vertices and (up to) `edges` edges.
    pub fn new(vertices: usize, edges: usize) -> Self {
        UniformRandom { vertices, edges }
    }

    /// Target vertex count.
    pub fn vertices(&self) -> usize {
        self.vertices
    }

    /// Target edge count (before dedup).
    pub fn edges(&self) -> usize {
        self.edges
    }
}

impl GraphGenerator for UniformRandom {
    fn generate(&self, seed: u64) -> CsrGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut el = EdgeList::with_capacity(self.vertices, self.edges);
        if self.vertices > 1 {
            for _ in 0..self.edges {
                let s = rng.gen_range(0..self.vertices) as VertexId;
                let t = rng.gen_range(0..self.vertices) as VertexId;
                let w = rng.gen_range(1.0f32..16.0f32);
                el.push(s, t, w);
            }
        }
        el.dedup();
        el.into_csr().expect("generated ids are in range")
    }

    fn name(&self) -> &str {
        "uniform-random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_vertex_count() {
        let g = UniformRandom::new(100, 400).generate(3);
        assert_eq!(g.vertex_count(), 100);
    }

    #[test]
    fn no_self_loops() {
        let g = UniformRandom::new(50, 500).generate(9);
        for v in 0..g.vertex_count() as VertexId {
            assert!(!g.neighbors(v).contains(&v));
        }
    }

    #[test]
    fn no_duplicate_edges() {
        let g = UniformRandom::new(30, 300).generate(11);
        for v in 0..g.vertex_count() as VertexId {
            let n = g.neighbors(v);
            for w in n.windows(2) {
                assert!(w[0] < w[1], "duplicate or unsorted neighbor");
            }
        }
    }

    #[test]
    fn single_vertex_graph_has_no_edges() {
        let g = UniformRandom::new(1, 100).generate(5);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn weights_are_positive() {
        let g = UniformRandom::new(40, 200).generate(2);
        for v in 0..g.vertex_count() as VertexId {
            for &w in g.weights(v) {
                assert!((1.0..16.0).contains(&w));
            }
        }
    }
}
