//! Synthetic graph generators.
//!
//! The paper trains HeteroMap on synthetic inputs — uniform random graphs
//! (GTgraph) and Kronecker graphs (Table III) — and motivates with real road
//! and social networks. This module provides structural equivalents:
//!
//! * [`UniformRandom`] — Erdős–Rényi style, GTgraph's `random` mode,
//! * [`Kronecker`] — stochastic Kronecker / R-MAT family,
//! * [`RMat`] — explicit R-MAT with tunable `(a, b, c, d)`,
//! * [`Grid`] — 2-D lattice with long diameter, a road-network surrogate,
//! * [`PowerLaw`] — preferential-attachment graph with heavy-tailed degrees,
//!   a social-network surrogate,
//! * [`Densifying`] — a seeded sparse→dense *batch schedule* for the
//!   dynamic-graph engine (each batch a pure function of `(seed, index)`).
//!
//! All generators are deterministic given a seed.

mod densifying;
mod grid;
mod kronecker;
mod powerlaw;
mod rmat;
mod smallworld;
mod uniform;

pub use densifying::Densifying;
pub use grid::Grid;
pub use kronecker::Kronecker;
pub use powerlaw::PowerLaw;
pub use rmat::RMat;
pub use smallworld::SmallWorld;
pub use uniform::UniformRandom;

use crate::CsrGraph;

/// A deterministic, seedable graph generator.
///
/// This trait is object-safe so benchmark harnesses can iterate over a
/// heterogeneous list of `Box<dyn GraphGenerator>`.
pub trait GraphGenerator {
    /// Generates a graph using `seed` for all randomness.
    fn generate(&self, seed: u64) -> CsrGraph;

    /// Human-readable generator name for reports.
    fn name(&self) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_object_safe_and_deterministic() {
        let gens: Vec<Box<dyn GraphGenerator>> = vec![
            Box::new(UniformRandom::new(200, 800)),
            Box::new(Kronecker::new(6, 4.0)),
            Box::new(RMat::new(6, 4.0, 0.57, 0.19, 0.19)),
            Box::new(Grid::new(10, 10)),
            Box::new(PowerLaw::new(200, 3)),
            Box::new(SmallWorld::new(200, 2, 0.1)),
            Box::new(Densifying::new(200, 5, 120)),
        ];
        for g in &gens {
            let a = g.generate(7);
            let b = g.generate(7);
            assert_eq!(
                a.edge_count(),
                b.edge_count(),
                "{} not deterministic",
                g.name()
            );
            assert!(!g.name().is_empty());
        }
    }
}
