//! Preferential-attachment generator — a structural surrogate for social
//! networks (Facebook, LiveJournal, Twitter, Friendster in Table I).

use super::GraphGenerator;
use crate::{CsrGraph, EdgeList, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `attach` existing vertices chosen proportionally to current degree,
/// producing the heavy-tailed degree distribution and tiny diameter that
/// characterize the paper's social inputs (e.g. Twitter: max degree 3M,
/// diameter 5).
///
/// # Example
///
/// ```
/// use heteromap_graph::gen::{GraphGenerator, PowerLaw};
///
/// let g = PowerLaw::new(1_000, 4).generate(0);
/// assert_eq!(g.vertex_count(), 1_000);
/// assert!(g.max_degree() > 8); // hubs emerge
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowerLaw {
    vertices: usize,
    attach: usize,
}

impl PowerLaw {
    /// Creates a generator for `vertices` vertices, each attaching to
    /// `attach` earlier vertices.
    pub fn new(vertices: usize, attach: usize) -> Self {
        PowerLaw { vertices, attach }
    }

    /// Target vertex count.
    pub fn vertices(&self) -> usize {
        self.vertices
    }
}

impl GraphGenerator for PowerLaw {
    fn generate(&self, seed: u64) -> CsrGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.vertices;
        let m = self.attach.max(1);
        let mut el = EdgeList::with_capacity(n, 2 * n * m);
        // `ends` holds one entry per edge endpoint; sampling uniformly from it
        // is sampling proportionally to degree.
        let mut ends: Vec<VertexId> = Vec::with_capacity(2 * n * m);
        let seedlings = (m + 1).min(n);
        for i in 1..seedlings {
            el.push_undirected(i as VertexId, (i - 1) as VertexId, 1.0);
            ends.push(i as VertexId);
            ends.push((i - 1) as VertexId);
        }
        for v in seedlings..n {
            for _ in 0..m {
                let t = ends[rng.gen_range(0..ends.len())];
                if t == v as VertexId {
                    continue;
                }
                let w = rng.gen_range(1.0f32..8.0f32);
                el.push_undirected(v as VertexId, t, w);
                ends.push(v as VertexId);
                ends.push(t);
            }
        }
        el.dedup();
        el.into_csr().expect("power-law ids are in range")
    }

    fn name(&self) -> &str {
        "power-law"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hubs_dominate_degree_distribution() {
        let g = PowerLaw::new(2_000, 3).generate(1);
        let s = g.stats();
        // Max degree should be far above the average for power-law graphs.
        assert!(
            s.max_degree as f64 > 5.0 * s.average_degree(),
            "max {} avg {}",
            s.max_degree,
            s.average_degree()
        );
    }

    #[test]
    fn small_world_diameter() {
        let g = PowerLaw::new(2_000, 3).generate(2);
        assert!(g.stats().diameter <= 16);
    }

    #[test]
    fn handles_tiny_graphs() {
        let g = PowerLaw::new(2, 3).generate(0);
        assert_eq!(g.vertex_count(), 2);
    }

    #[test]
    fn graph_is_connected_enough() {
        // Preferential attachment grows a single component.
        let g = PowerLaw::new(500, 2).generate(3);
        let s = g.stats();
        assert!(s.diameter >= 2);
        assert!(s.edges > 0);
    }
}
