//! 2-D lattice generator — a structural surrogate for road networks.

use super::GraphGenerator;
use crate::{CsrGraph, EdgeList, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A `rows × cols` 4-connected lattice with small random weight jitter.
///
/// Road networks (the paper's USA-Cal input) are planar, near-constant-degree
/// and have very large diameters; a lattice reproduces exactly those
/// properties (`diameter = rows + cols - 2`, `max_degree = 4`), which is what
/// the `I` variables and the cost model observe.
///
/// # Example
///
/// ```
/// use heteromap_graph::gen::{GraphGenerator, Grid};
///
/// let g = Grid::new(20, 30).generate(0);
/// assert_eq!(g.vertex_count(), 600);
/// assert_eq!(g.stats().diameter, 48);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid {
    rows: usize,
    cols: usize,
}

impl Grid {
    /// Creates a generator for a `rows × cols` lattice.
    pub fn new(rows: usize, cols: usize) -> Self {
        Grid { rows, cols }
    }

    /// Total vertex count (`rows * cols`).
    pub fn vertices(&self) -> usize {
        self.rows * self.cols
    }
}

impl GraphGenerator for Grid {
    fn generate(&self, seed: u64) -> CsrGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.vertices();
        let mut el = EdgeList::with_capacity(n, 4 * n);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let v = (r * self.cols + c) as VertexId;
                if c + 1 < self.cols {
                    let w = rng.gen_range(1.0f32..4.0f32);
                    el.push_undirected(v, v + 1, w);
                }
                if r + 1 < self.rows {
                    let w = rng.gen_range(1.0f32..4.0f32);
                    el.push_undirected(v, v + self.cols as VertexId, w);
                }
            }
        }
        el.into_csr().expect("grid ids are in range")
    }

    fn name(&self) -> &str {
        "grid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_is_bounded_by_four() {
        let g = Grid::new(8, 8).generate(0);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn diameter_is_manhattan() {
        let g = Grid::new(5, 7).generate(0);
        assert_eq!(g.stats().diameter, 5 + 7 - 2);
    }

    #[test]
    fn edge_count_matches_lattice_formula() {
        let (r, c) = (6, 9);
        let g = Grid::new(r, c).generate(0);
        // undirected edges: r*(c-1) + c*(r-1); stored directed => ×2
        assert_eq!(g.edge_count(), 2 * (r * (c - 1) + c * (r - 1)));
    }

    #[test]
    fn one_by_one_grid_has_no_edges() {
        let g = Grid::new(1, 1).generate(0);
        assert_eq!(g.vertex_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }
}
