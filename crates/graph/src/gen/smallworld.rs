//! Watts-Strogatz small-world generator — ring lattice with random
//! rewiring, bridging the road-like (high diameter) and social-like (low
//! diameter) regimes the paper's inputs span.

use super::GraphGenerator;
use crate::{CsrGraph, EdgeList, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Watts-Strogatz small-world graph: each vertex connects to its `k`
/// nearest ring neighbours, then each edge is rewired to a random endpoint
/// with probability `rewire`.
///
/// At `rewire = 0` the graph is a lattice (diameter ~ `n / 2k`); a few
/// percent of rewiring collapses the diameter while keeping local
/// clustering — useful for sweeping the `I4` axis continuously in training
/// and ablation studies.
///
/// # Example
///
/// ```
/// use heteromap_graph::gen::{GraphGenerator, SmallWorld};
///
/// let ring = SmallWorld::new(500, 4, 0.0).generate(1);
/// let small = SmallWorld::new(500, 4, 0.2).generate(1);
/// assert!(small.stats().diameter < ring.stats().diameter);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmallWorld {
    vertices: usize,
    k: usize,
    rewire: f64,
}

impl SmallWorld {
    /// Creates a generator over `vertices` vertices with `k` ring
    /// neighbours per side and rewiring probability `rewire`.
    ///
    /// # Panics
    ///
    /// Panics if `rewire` is outside `[0, 1]` or `k == 0`.
    pub fn new(vertices: usize, k: usize, rewire: f64) -> Self {
        assert!((0.0..=1.0).contains(&rewire), "rewire must be in [0, 1]");
        assert!(k > 0, "k must be positive");
        SmallWorld {
            vertices,
            k,
            rewire,
        }
    }

    /// Target vertex count.
    pub fn vertices(&self) -> usize {
        self.vertices
    }
}

impl GraphGenerator for SmallWorld {
    fn generate(&self, seed: u64) -> CsrGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.vertices;
        let mut el = EdgeList::with_capacity(n, 2 * n * self.k);
        if n > 1 {
            for v in 0..n {
                for off in 1..=self.k {
                    let mut t = (v + off) % n;
                    if t == v {
                        continue;
                    }
                    if rng.gen_bool(self.rewire) {
                        t = rng.gen_range(0..n);
                        if t == v {
                            continue;
                        }
                    }
                    let w = rng.gen_range(1.0f32..4.0f32);
                    el.push_undirected(v as VertexId, t as VertexId, w);
                }
            }
        }
        el.dedup();
        el.into_csr().expect("small-world ids are in range")
    }

    fn name(&self) -> &str {
        "small-world"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rewire_is_a_ring_lattice() {
        let g = SmallWorld::new(100, 2, 0.0).generate(0);
        let s = g.stats();
        // Ring with k=2: diameter = ceil((n/2) / k) = 25.
        assert_eq!(s.diameter, 25);
        assert_eq!(s.max_degree, 4); // 2 per side, undirected
    }

    #[test]
    fn rewiring_shrinks_the_diameter() {
        let ring = SmallWorld::new(400, 3, 0.0).generate(2);
        let sw = SmallWorld::new(400, 3, 0.3).generate(2);
        assert!(sw.stats().diameter < ring.stats().diameter / 2);
    }

    #[test]
    fn full_rewire_is_still_connected_enough() {
        let g = SmallWorld::new(300, 3, 1.0).generate(4);
        assert!(g.edge_count() > 300);
        assert!(g.stats().diameter >= 2);
    }

    #[test]
    #[should_panic(expected = "rewire must be in [0, 1]")]
    fn bad_probability_panics() {
        let _ = SmallWorld::new(10, 2, 1.5);
    }

    #[test]
    fn single_vertex_graph_is_empty() {
        let g = SmallWorld::new(1, 2, 0.5).generate(0);
        assert_eq!(g.edge_count(), 0);
    }
}
