//! R-MAT recursive-matrix generator.

use super::GraphGenerator;
use crate::{CsrGraph, EdgeList, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// R-MAT generator (Chakrabarti et al.), the recursive-quadrant scheme behind
/// the Graph500 / Kronecker inputs in the paper's Table III.
///
/// The adjacency matrix of a `2^scale`-vertex graph is subdivided recursively
/// into quadrants chosen with probabilities `(a, b, c, d)` where
/// `d = 1 - a - b - c`. Skewed parameters (`a ≫ d`) yield heavy-tailed degree
/// distributions like social networks.
///
/// # Example
///
/// ```
/// use heteromap_graph::gen::{GraphGenerator, RMat};
///
/// let g = RMat::new(8, 8.0, 0.57, 0.19, 0.19).generate(0);
/// assert_eq!(g.vertex_count(), 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RMat {
    scale: u32,
    edge_factor: f64,
    a: f64,
    b: f64,
    c: f64,
}

impl RMat {
    /// Creates an R-MAT generator for `2^scale` vertices and
    /// `edge_factor * 2^scale` edges with quadrant probabilities `(a, b, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `a + b + c >= 1.0` or any probability is negative.
    pub fn new(scale: u32, edge_factor: f64, a: f64, b: f64, c: f64) -> Self {
        assert!(a >= 0.0 && b >= 0.0 && c >= 0.0 && a + b + c < 1.0);
        RMat {
            scale,
            edge_factor,
            a,
            b,
            c,
        }
    }

    /// Number of vertices (`2^scale`).
    pub fn vertices(&self) -> usize {
        1usize << self.scale
    }

    fn sample_edge(&self, rng: &mut StdRng) -> (VertexId, VertexId) {
        let (mut row, mut col) = (0u64, 0u64);
        for level in (0..self.scale).rev() {
            let bit = 1u64 << level;
            let r: f64 = rng.gen();
            if r < self.a {
                // top-left: nothing
            } else if r < self.a + self.b {
                col |= bit;
            } else if r < self.a + self.b + self.c {
                row |= bit;
            } else {
                row |= bit;
                col |= bit;
            }
        }
        (row as VertexId, col as VertexId)
    }
}

impl GraphGenerator for RMat {
    fn generate(&self, seed: u64) -> CsrGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.vertices();
        let m = (self.edge_factor * n as f64).round() as usize;
        let mut el = EdgeList::with_capacity(n, m);
        for _ in 0..m {
            let (s, t) = self.sample_edge(&mut rng);
            let w = rng.gen_range(1.0f32..16.0f32);
            el.push(s, t, w);
        }
        el.dedup();
        el.into_csr().expect("R-MAT ids are in range")
    }

    fn name(&self) -> &str {
        "rmat"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_count_is_power_of_two() {
        let g = RMat::new(7, 4.0, 0.57, 0.19, 0.19).generate(1);
        assert_eq!(g.vertex_count(), 128);
    }

    #[test]
    #[should_panic]
    fn invalid_probabilities_panic() {
        let _ = RMat::new(4, 4.0, 0.5, 0.3, 0.3);
    }

    #[test]
    fn skewed_rmat_has_heavier_tail_than_uniform_quadrants() {
        let skew = RMat::new(10, 8.0, 0.57, 0.19, 0.19).generate(5);
        let flat = RMat::new(10, 8.0, 0.25, 0.25, 0.25).generate(5);
        assert!(
            skew.max_degree() > flat.max_degree(),
            "skewed max {} should exceed flat max {}",
            skew.max_degree(),
            flat.max_degree()
        );
    }

    #[test]
    fn edge_factor_controls_edge_count_order() {
        let small = RMat::new(8, 2.0, 0.57, 0.19, 0.19).generate(3);
        let large = RMat::new(8, 16.0, 0.57, 0.19, 0.19).generate(3);
        assert!(large.edge_count() > small.edge_count());
    }
}
