//! Stochastic Kronecker generator (Leskovec et al.), used by the paper for
//! training inputs (Table III) and the `KronLarge` evaluation graph.

use super::{GraphGenerator, RMat};
use crate::CsrGraph;

/// Stochastic Kronecker graph with the canonical initiator matrix
/// `[[0.57, 0.19], [0.19, 0.05]]`, which is equivalent to R-MAT sampling with
/// those quadrant probabilities.
///
/// # Example
///
/// ```
/// use heteromap_graph::gen::{GraphGenerator, Kronecker};
///
/// let g = Kronecker::new(8, 16.0).generate(0);
/// assert_eq!(g.vertex_count(), 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Kronecker {
    inner: RMat,
}

impl Kronecker {
    /// Creates a Kronecker generator with `2^scale` vertices and
    /// `edge_factor * 2^scale` sampled edges.
    pub fn new(scale: u32, edge_factor: f64) -> Self {
        Kronecker {
            inner: RMat::new(scale, edge_factor, 0.57, 0.19, 0.19),
        }
    }

    /// Number of vertices (`2^scale`).
    pub fn vertices(&self) -> usize {
        self.inner.vertices()
    }
}

impl GraphGenerator for Kronecker {
    fn generate(&self, seed: u64) -> CsrGraph {
        self.inner.generate(seed)
    }

    fn name(&self) -> &str {
        "kronecker"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kronecker_matches_rmat_with_canonical_initiator() {
        let k = Kronecker::new(7, 4.0).generate(13);
        let r = RMat::new(7, 4.0, 0.57, 0.19, 0.19).generate(13);
        assert_eq!(k.edge_count(), r.edge_count());
        assert_eq!(k.max_degree(), r.max_degree());
    }

    #[test]
    fn produces_low_diameter_graphs() {
        // Kronecker graphs are small-world: diameter far below vertex count.
        let g = Kronecker::new(10, 16.0).generate(4);
        let s = g.stats();
        assert!(s.diameter < 32, "diameter {} too large", s.diameter);
    }
}
