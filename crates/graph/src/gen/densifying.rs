//! Densifying delta-batch generator — the driving input of the dynamic
//! graph engine.
//!
//! Real graph serving sees graphs that *densify*: road networks stay
//! sparse, but social/interaction graphs accrete edges around hubs over
//! time, pushing density (and the paper's `I` variables) across the
//! decision-tree boundaries the predictor keyed on at deploy time. This
//! generator produces that trajectory as a sequence of seeded edge
//! batches: batch 0 lays a long sparse path skeleton (high diameter, max
//! degree 2), and each later batch attaches edges preferentially to a
//! small hub pool, shrinking the diameter and growing density and degree
//! skew.

use super::GraphGenerator;
use crate::{CsrGraph, EdgeList, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded batch schedule driving a graph from sparse to dense.
///
/// Every batch is a *pure function of `(seed, index)`* — replaying batches
/// `0..k` always yields the same graph, no matter who applies them or in
/// which process. All weights are 1.0 so that replay semantics that update
/// a duplicate edge's weight in place agree bit-for-bit with edge-list
/// deduplication that keeps the first occurrence.
///
/// # Example
///
/// ```
/// use heteromap_graph::gen::{Densifying, GraphGenerator};
///
/// let gen = Densifying::new(500, 8, 300);
/// let sparse = gen.batch(7, 0).len();    // path skeleton
/// let g = gen.generate(7);               // all batches applied
/// assert_eq!(g.vertex_count(), 500);
/// assert!(g.edge_count() > sparse);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Densifying {
    vertices: usize,
    batches: usize,
    batch_edges: usize,
    hub_pool: usize,
}

impl Densifying {
    /// Schedule over `vertices` vertices: one skeleton batch plus
    /// `batches - 1` densification batches of `batch_edges` undirected
    /// edges each, attached to a default hub pool of `vertices / 16`.
    pub fn new(vertices: usize, batches: usize, batch_edges: usize) -> Self {
        Densifying {
            vertices,
            batches,
            batch_edges,
            hub_pool: (vertices / 16).max(1),
        }
    }

    /// Overrides the hub pool size. `1` concentrates every densification
    /// edge on vertex 0 — a mega-hub burst that spikes the max degree.
    pub fn with_hub_pool(mut self, hub_pool: usize) -> Self {
        self.hub_pool = hub_pool.clamp(1, self.vertices.max(1));
        self
    }

    /// Number of batches in the schedule (including the skeleton).
    pub fn batches(&self) -> usize {
        self.batches
    }

    /// Vertex count of every snapshot (deltas only touch edges).
    pub fn vertices(&self) -> usize {
        self.vertices
    }

    /// Directed edges of batch `index`, a pure function of
    /// `(seed, index)`.
    ///
    /// Batch 0 is the path skeleton `0-1-...-(n-1)` in both directions;
    /// batch `k >= 1` draws `batch_edges` undirected hub-attached edges
    /// (each emitted in both directions) from an RNG seeded only by
    /// `(seed, k)`. Self-loops are skipped, duplicates are allowed — the
    /// consumer's insert semantics deduplicate.
    pub fn batch(&self, seed: u64, index: usize) -> Vec<(VertexId, VertexId, f32)> {
        let n = self.vertices;
        if n < 2 {
            return Vec::new();
        }
        let mut edges = Vec::new();
        if index == 0 {
            edges.reserve(2 * (n - 1));
            for i in 0..n - 1 {
                edges.push((i as VertexId, (i + 1) as VertexId, 1.0));
                edges.push(((i + 1) as VertexId, i as VertexId, 1.0));
            }
            return edges;
        }
        let mut rng =
            StdRng::seed_from_u64(seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        edges.reserve(2 * self.batch_edges);
        for _ in 0..self.batch_edges {
            let hub = rng.gen_range(0..self.hub_pool) as VertexId;
            let other = rng.gen_range(0..n) as VertexId;
            if hub == other {
                continue;
            }
            edges.push((hub, other, 1.0));
            edges.push((other, hub, 1.0));
        }
        edges
    }
}

impl GraphGenerator for Densifying {
    /// The final snapshot: all batches applied (batch-0 skeleton plus
    /// every densification batch), duplicates resolved.
    fn generate(&self, seed: u64) -> CsrGraph {
        let mut el = EdgeList::new(self.vertices);
        for k in 0..self.batches.max(1) {
            for (src, dst, w) in self.batch(seed, k) {
                el.push(src, dst, w);
            }
        }
        el.dedup();
        el.into_csr().expect("densifying ids are in range")
    }

    fn name(&self) -> &str {
        "densifying"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_are_pure_functions_of_seed_and_index() {
        let g = Densifying::new(300, 6, 150);
        for k in 0..6 {
            assert_eq!(g.batch(11, k), g.batch(11, k), "batch {k} not pure");
        }
        assert_ne!(g.batch(11, 2), g.batch(12, 2), "seed must matter");
        assert_ne!(g.batch(11, 2), g.batch(11, 3), "index must matter");
    }

    #[test]
    fn skeleton_is_a_path() {
        let g = Densifying::new(100, 4, 50);
        let skel = g.batch(0, 0);
        assert_eq!(skel.len(), 2 * 99);
        assert!(skel.iter().all(|&(_, _, w)| w == 1.0));
    }

    #[test]
    fn schedule_densifies_the_graph() {
        let g = Densifying::new(400, 10, 400);
        let sparse = {
            let mut el = EdgeList::new(400);
            for (s, d, w) in g.batch(5, 0) {
                el.push(s, d, w);
            }
            el.dedup();
            el.into_csr().unwrap().stats()
        };
        let dense = g.generate(5).stats();
        assert!(dense.average_degree() > 3.0 * sparse.average_degree());
        assert!(dense.diameter < sparse.diameter);
        assert!(dense.max_degree > sparse.max_degree);
    }

    #[test]
    fn mega_hub_pool_spikes_max_degree() {
        let base = Densifying::new(400, 6, 300).generate(9).stats();
        let spiky = Densifying::new(400, 6, 300)
            .with_hub_pool(1)
            .generate(9)
            .stats();
        assert!(spiky.max_degree > 2 * base.max_degree);
    }

    #[test]
    fn tiny_graphs_do_not_panic() {
        assert_eq!(Densifying::new(1, 3, 10).generate(0).vertex_count(), 1);
        assert_eq!(Densifying::new(0, 3, 10).generate(0).vertex_count(), 0);
    }
}
