//! Structural graph statistics feeding the paper's `I` input variables.

use crate::csr::CsrGraph;
use crate::VertexId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Structural statistics of a graph.
///
/// The four paper-relevant quantities map to the `I` variables of Section
/// III-B: `vertices` → I1, density (`edges`/`vertices`) → I2, `max_degree` →
/// I3, `diameter` → I4. For the Table I datasets these are taken verbatim
/// from the paper; for generated graphs they are measured with
/// [`GraphStats::measure`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of vertices (paper variable behind `I1`).
    pub vertices: u64,
    /// Number of directed edges (behind `I2` via density).
    pub edges: u64,
    /// Maximum out-degree (behind `I3`).
    pub max_degree: u64,
    /// Graph diameter — exact on small graphs, double-sweep approximation on
    /// large ones (behind `I4`). The paper obtains it "alongside input graphs
    /// or using runtime approximations".
    pub diameter: u64,
}

impl GraphStats {
    /// Builds stats from already-known quantities (e.g. Table I rows).
    pub fn from_known(vertices: u64, edges: u64, max_degree: u64, diameter: u64) -> Self {
        GraphStats {
            vertices,
            edges,
            max_degree,
            diameter,
        }
    }

    /// Measures statistics of `graph`.
    ///
    /// The diameter is approximated with the classic *double-sweep* heuristic
    /// (BFS from an arbitrary vertex, then BFS from the farthest vertex
    /// found), repeated from a few seeds; this lower-bounds the true diameter
    /// and is exact on trees and most meshes. Unreachable pairs are ignored —
    /// the eccentricity within the largest reachable region is reported, as
    /// the paper's road/social datasets are connected.
    pub fn measure(graph: &CsrGraph) -> Self {
        let n = graph.vertex_count();
        let diameter = if n == 0 {
            0
        } else {
            approximate_diameter(graph)
        };
        GraphStats {
            vertices: n as u64,
            edges: graph.edge_count() as u64,
            max_degree: graph.max_degree() as u64,
            diameter,
        }
    }

    /// Average degree `E / V` (0.0 when the graph is empty).
    pub fn average_degree(&self) -> f64 {
        if self.vertices == 0 {
            0.0
        } else {
            self.edges as f64 / self.vertices as f64
        }
    }

    /// Approximate in-memory footprint in bytes of a CSR representation with
    /// 4-byte ids and 4-byte weights — the quantity compared against an
    /// accelerator's DRAM capacity by the memory model.
    pub fn footprint_bytes(&self) -> u64 {
        self.vertices * 8 + self.edges * 8
    }
}

/// Read-only adjacency view shared by every structure the stats code
/// traverses. [`CsrGraph`] implements it, and so does the dynamic graph in
/// `heteromap-dyngraph` — which is what makes the incrementally maintained
/// statistics *bit-identical* to a full recompute: both run the very same
/// BFS over the very same neighbor ordering.
pub trait AdjacencySource {
    /// Number of vertices.
    fn vertex_count(&self) -> usize;
    /// Out-neighbors of `v` in ascending order.
    fn neighbors_of(&self, v: VertexId) -> &[VertexId];
}

impl AdjacencySource for CsrGraph {
    fn vertex_count(&self) -> usize {
        CsrGraph::vertex_count(self)
    }

    fn neighbors_of(&self, v: VertexId) -> &[VertexId] {
        self.neighbors(v)
    }
}

/// BFS from `src` returning `(distances, farthest_vertex, eccentricity)`.
/// Distance `u32::MAX` marks unreachable vertices.
fn bfs_eccentricity<G: AdjacencySource + ?Sized>(graph: &G, src: VertexId) -> (VertexId, u32) {
    let n = graph.vertex_count();
    let mut dist = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    let mut farthest = src;
    let mut ecc = 0;
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        if d > ecc {
            ecc = d;
            farthest = v;
        }
        for &t in graph.neighbors_of(v) {
            if dist[t as usize] == u32::MAX {
                dist[t as usize] = d + 1;
                queue.push_back(t);
            }
        }
    }
    (farthest, ecc)
}

/// Double-sweep diameter approximation with a handful of restarts.
///
/// Public so that any [`AdjacencySource`] (notably the mutable graph of
/// `heteromap-dyngraph`) can reuse the exact BFS the static path uses —
/// the seeds, sweep order, and tie-breaks are part of the contract that
/// keeps incremental statistics bit-identical to [`GraphStats::measure`].
pub fn approximate_diameter<G: AdjacencySource + ?Sized>(graph: &G) -> u64 {
    let n = graph.vertex_count();
    let seeds: [usize; 4] = [0, n / 3, n / 2, (2 * n) / 3];
    let mut best = 0u32;
    for &s in &seeds {
        if s >= n {
            continue;
        }
        let (far, _) = bfs_eccentricity(graph, s as VertexId);
        let (_, ecc) = bfs_eccentricity(graph, far);
        best = best.max(ecc);
    }
    best as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::EdgeList;

    fn path(n: usize) -> CsrGraph {
        let mut el = EdgeList::new(n);
        for i in 0..n - 1 {
            el.push_undirected(i as VertexId, (i + 1) as VertexId, 1.0);
        }
        el.into_csr().unwrap()
    }

    fn cycle(n: usize) -> CsrGraph {
        let mut el = EdgeList::new(n);
        for i in 0..n {
            el.push_undirected(i as VertexId, ((i + 1) % n) as VertexId, 1.0);
        }
        el.into_csr().unwrap()
    }

    #[test]
    fn path_diameter_is_exact() {
        let g = path(10);
        let s = GraphStats::measure(&g);
        assert_eq!(s.diameter, 9);
        assert_eq!(s.vertices, 10);
        assert_eq!(s.edges, 18);
        assert_eq!(s.max_degree, 2);
    }

    #[test]
    fn cycle_diameter_is_half() {
        let g = cycle(12);
        let s = GraphStats::measure(&g);
        assert_eq!(s.diameter, 6);
    }

    #[test]
    fn star_diameter_is_two() {
        let mut el = EdgeList::new(6);
        for i in 1..6 {
            el.push_undirected(0, i, 1.0);
        }
        let s = el.into_csr().unwrap().stats();
        assert_eq!(s.diameter, 2);
        assert_eq!(s.max_degree, 5);
    }

    #[test]
    fn empty_graph_stats_are_zero() {
        let g = EdgeList::new(0).into_csr().unwrap();
        let s = GraphStats::measure(&g);
        assert_eq!(s.vertices, 0);
        assert_eq!(s.diameter, 0);
        assert_eq!(s.average_degree(), 0.0);
    }

    #[test]
    fn from_known_round_trips() {
        let s = GraphStats::from_known(10, 20, 5, 3);
        assert_eq!(s.average_degree(), 2.0);
        assert_eq!(s.footprint_bytes(), 10 * 8 + 20 * 8);
    }

    #[test]
    fn diameter_handles_disconnected_graphs() {
        // Two disjoint edges: eccentricity within a component is 1.
        let mut el = EdgeList::new(4);
        el.push_undirected(0, 1, 1.0);
        el.push_undirected(2, 3, 1.0);
        let s = el.into_csr().unwrap().stats();
        assert_eq!(s.diameter, 1);
    }

    #[test]
    fn double_sweep_is_lower_bound_on_grid() {
        // 4x4 grid: true diameter 6; double-sweep must find at least a long
        // shortest path and never exceed it.
        let side = 4u32;
        let mut el = EdgeList::new((side * side) as usize);
        for r in 0..side {
            for c in 0..side {
                let v = r * side + c;
                if c + 1 < side {
                    el.push_undirected(v, v + 1, 1.0);
                }
                if r + 1 < side {
                    el.push_undirected(v, v + side, 1.0);
                }
            }
        }
        let s = el.into_csr().unwrap().stats();
        assert!(s.diameter >= 4 && s.diameter <= 6, "got {}", s.diameter);
    }
}
