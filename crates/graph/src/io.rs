//! Plain-text edge-list I/O.
//!
//! The format is the de-facto standard the paper's dataset sources use
//! (DIMACS/SNAP-style): one `src dst [weight]` triple per line, `#` or `%`
//! comment lines ignored. Vertex ids are dense non-negative integers; the
//! vertex count is `max id + 1` unless a larger count is supplied.

use crate::edgelist::EdgeList;
use crate::{CsrGraph, GraphError, VertexId};
use std::io::{self, BufRead, BufReader, Read, Write};

/// Errors while reading an edge-list stream.
#[derive(Debug)]
#[non_exhaustive]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// The parsed edges referenced out-of-range vertices.
    Graph(GraphError),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
            ReadError::Parse { line, reason } => write!(f, "parse error at line {line}: {reason}"),
            ReadError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

impl From<GraphError> for ReadError {
    fn from(e: GraphError) -> Self {
        ReadError::Graph(e)
    }
}

/// Reads an edge list from `reader`. Weights default to `1.0` when the
/// third column is absent.
///
/// # Errors
///
/// Returns [`ReadError`] on I/O failures or malformed lines.
pub fn read_edge_list<R: Read>(reader: R) -> Result<EdgeList, ReadError> {
    let mut edges: Vec<(VertexId, VertexId, f32)> = Vec::new();
    let mut max_id: u64 = 0;
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse_id = |tok: Option<&str>, what: &str| -> Result<VertexId, ReadError> {
            tok.ok_or_else(|| ReadError::Parse {
                line: idx + 1,
                reason: format!("missing {what}"),
            })?
            .parse::<VertexId>()
            .map_err(|e| ReadError::Parse {
                line: idx + 1,
                reason: format!("bad {what}: {e}"),
            })
        };
        let src = parse_id(it.next(), "source")?;
        let dst = parse_id(it.next(), "target")?;
        let weight = match it.next() {
            Some(tok) => tok.parse::<f32>().map_err(|e| ReadError::Parse {
                line: idx + 1,
                reason: format!("bad weight: {e}"),
            })?,
            None => 1.0,
        };
        max_id = max_id.max(src as u64).max(dst as u64);
        edges.push((src, dst, weight));
    }
    let n = if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    };
    let mut el = EdgeList::with_capacity(n, edges.len());
    el.extend(edges);
    Ok(el)
}

/// Reads an edge list and freezes it into a [`CsrGraph`].
///
/// # Errors
///
/// See [`read_edge_list`]; additionally surfaces CSR construction errors.
pub fn read_csr<R: Read>(reader: R) -> Result<CsrGraph, ReadError> {
    Ok(read_edge_list(reader)?.into_csr()?)
}

/// Writes `graph` as a `src dst weight` edge list.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_edge_list<W: Write>(graph: &CsrGraph, mut writer: W) -> io::Result<()> {
    writeln!(
        writer,
        "# heteromap edge list: {} vertices, {} edges",
        graph.vertex_count(),
        graph.edge_count()
    )?;
    for v in 0..graph.vertex_count() as VertexId {
        for (t, w) in graph.edges(v) {
            writeln!(writer, "{v} {t} {w}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GraphGenerator, UniformRandom};

    #[test]
    fn round_trip_preserves_structure() {
        let g = UniformRandom::new(80, 400).generate(3);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_csr(&buf[..]).unwrap();
        assert_eq!(back.edge_count(), g.edge_count());
        for v in 0..g.vertex_count() as VertexId {
            assert_eq!(back.neighbors(v), g.neighbors(v), "vertex {v}");
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# comment\n% another\n\n0 1\n1 2 3.5\n";
        let g = read_csr(text.as_bytes()).unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.weights(0), &[1.0]); // default weight
        assert_eq!(g.weights(1), &[3.5]);
    }

    #[test]
    fn malformed_line_reports_line_number() {
        let text = "0 1\nnot an edge\n";
        match read_csr(text.as_bytes()) {
            Err(ReadError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn missing_target_is_an_error() {
        let text = "42\n";
        assert!(matches!(
            read_csr(text.as_bytes()),
            Err(ReadError::Parse { .. })
        ));
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_csr("# nothing\n".as_bytes()).unwrap();
        assert_eq!(g.vertex_count(), 0);
    }

    #[test]
    fn error_display_mentions_line() {
        let e = ReadError::Parse {
            line: 9,
            reason: "bad weight".into(),
        };
        assert!(e.to_string().contains("line 9"));
    }
}
