//! Stinger-like temporal chunk streaming.
//!
//! The paper streams graphs larger than an accelerator's DRAM through the
//! Stinger framework: "chunks from larger graphs are extracted temporally ...
//! and streamed in the accelerator's memory to be processed" (§II). This
//! module reproduces that behaviour: a [`GraphStream`] cuts a source graph
//! into vertex-range chunks that each fit a byte budget, yields them in
//! temporal order, and reports per-chunk statistics so the prediction
//! paradigm can pick per-chunk `M` configurations.

use crate::incremental::IncrementalStats;
use crate::partition::{partition_by_edges, VertexRange};
use crate::stats::GraphStats;
use crate::{CsrGraph, GraphError};

/// A single streamed chunk: the induced subgraph of a vertex range plus the
/// statistics the predictor consumes.
#[derive(Debug, Clone)]
pub struct GraphChunk {
    /// Index of the chunk in temporal order.
    pub index: usize,
    /// The vertex range of the source graph this chunk covers.
    pub range: VertexRange,
    /// The chunk's induced subgraph (ids remapped to `0..range.len()`).
    pub graph: CsrGraph,
    /// Measured statistics of the chunk subgraph.
    pub stats: GraphStats,
}

/// Streams a graph through a byte-budgeted window, Stinger-style.
///
/// # Example
///
/// ```
/// use heteromap_graph::gen::{GraphGenerator, UniformRandom};
/// use heteromap_graph::stream::GraphStream;
///
/// let g = UniformRandom::new(1_000, 8_000).generate(0);
/// let stream = GraphStream::with_byte_budget(&g, 16 * 1024);
/// assert!(stream.chunk_count() > 1);
/// let total: usize = stream.iter().map(|c| c.graph.vertex_count()).sum();
/// assert_eq!(total, 1_000);
/// ```
#[derive(Debug)]
pub struct GraphStream<'g> {
    source: &'g CsrGraph,
    ranges: Vec<VertexRange>,
}

impl<'g> GraphStream<'g> {
    /// Creates a stream whose chunks each fit within `byte_budget` bytes of
    /// CSR storage (8 bytes per vertex + 8 per edge, matching
    /// [`GraphStats::footprint_bytes`]). A budget smaller than one vertex's
    /// adjacency still yields singleton chunks.
    pub fn with_byte_budget(source: &'g CsrGraph, byte_budget: usize) -> Self {
        // bytes ≈ 8V + 8E; approximate the edge budget from the byte budget
        // assuming the vertex share is proportional.
        let per_edge = 8usize;
        let max_edges = (byte_budget / per_edge).max(1);
        let ranges = partition_by_edges(source, max_edges);
        GraphStream { source, ranges }
    }

    /// Creates a stream with an explicit per-chunk edge budget.
    pub fn with_edge_budget(source: &'g CsrGraph, max_edges: usize) -> Self {
        GraphStream {
            source,
            ranges: partition_by_edges(source, max_edges.max(1)),
        }
    }

    /// Number of chunks the stream will yield.
    pub fn chunk_count(&self) -> usize {
        self.ranges.len()
    }

    /// Materializes chunk `index`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::ChunkOutOfBounds`] if `index >= chunk_count()`.
    pub fn chunk(&self, index: usize) -> Result<GraphChunk, GraphError> {
        let range = *self.ranges.get(index).ok_or(GraphError::ChunkOutOfBounds {
            index,
            chunk_count: self.ranges.len(),
        })?;
        let graph = self.source.vertex_range_subgraph(range.start, range.end);
        // Chunk statistics ride the incremental path: the counting-based
        // quantities are accumulated delta-by-delta from the source
        // adjacency (one `on_insert` per surviving in-range edge) instead
        // of rescanning the materialized subgraph, and `finalize` runs the
        // shared diameter sweep. Bit-identical to `graph.stats()` — the
        // regression test below pins that.
        let mut inc = IncrementalStats::new(graph.vertex_count());
        for v in range.start..range.end {
            for &t in self.source.neighbors(v) {
                if t >= range.start && t < range.end {
                    inc.on_insert(v - range.start);
                }
            }
        }
        let stats = inc.finalize(&graph);
        Ok(GraphChunk {
            index,
            range,
            graph,
            stats,
        })
    }

    /// Iterates over all chunks in temporal order.
    pub fn iter(&self) -> impl Iterator<Item = GraphChunk> + '_ {
        (0..self.chunk_count()).map(move |i| self.chunk(i).expect("index in range"))
    }

    /// The vertex ranges backing the chunks (cheap, no materialization).
    pub fn ranges(&self) -> &[VertexRange] {
        &self.ranges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GraphGenerator, Grid, UniformRandom};

    #[test]
    fn chunks_partition_the_vertex_set() {
        let g = UniformRandom::new(300, 2_000).generate(1);
        let s = GraphStream::with_edge_budget(&g, 256);
        let total: usize = s.iter().map(|c| c.graph.vertex_count()).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn single_chunk_when_budget_is_huge() {
        let g = UniformRandom::new(100, 500).generate(2);
        let s = GraphStream::with_byte_budget(&g, usize::MAX / 2);
        assert_eq!(s.chunk_count(), 1);
        let c = s.chunk(0).unwrap();
        assert_eq!(c.graph.edge_count(), g.edge_count());
    }

    #[test]
    fn out_of_bounds_chunk_errors() {
        let g = UniformRandom::new(10, 30).generate(0);
        let s = GraphStream::with_edge_budget(&g, 10);
        let n = s.chunk_count();
        assert!(matches!(
            s.chunk(n),
            Err(GraphError::ChunkOutOfBounds { .. })
        ));
    }

    #[test]
    fn chunk_stats_reflect_subgraph() {
        let g = Grid::new(10, 10).generate(0);
        let s = GraphStream::with_edge_budget(&g, 64);
        for c in s.iter() {
            assert_eq!(c.stats.vertices as usize, c.graph.vertex_count());
            assert_eq!(c.stats.edges as usize, c.graph.edge_count());
        }
    }

    #[test]
    fn incremental_chunk_stats_match_full_recompute() {
        // Regression: the incremental per-chunk statistics path must be
        // bit-identical to measuring the materialized subgraph from
        // scratch, across sparse, meshy, and heavy-tailed chunk shapes.
        use crate::gen::{Densifying, PowerLaw};
        let graphs: Vec<CsrGraph> = vec![
            UniformRandom::new(300, 2_000).generate(1),
            Grid::new(12, 9).generate(0),
            PowerLaw::new(250, 3).generate(3),
            Densifying::new(200, 6, 150).generate(8),
        ];
        for g in &graphs {
            for budget in [64, 500, usize::MAX / 2] {
                let s = GraphStream::with_edge_budget(g, budget);
                for c in s.iter() {
                    assert_eq!(
                        c.stats,
                        GraphStats::measure(&c.graph),
                        "chunk {} stats drifted from full recompute",
                        c.index
                    );
                }
            }
        }
    }

    #[test]
    fn chunk_edges_never_exceed_source_edges() {
        let g = UniformRandom::new(200, 1_500).generate(4);
        let s = GraphStream::with_edge_budget(&g, 200);
        let total: usize = s.iter().map(|c| c.graph.edge_count()).sum();
        // Cross-chunk edges are dropped, so chunk edges sum to at most E.
        assert!(total <= g.edge_count());
    }

    #[test]
    fn tiny_budget_yields_per_vertex_chunks() {
        let g = UniformRandom::new(20, 100).generate(6);
        let s = GraphStream::with_edge_budget(&g, 1);
        assert!(s.chunk_count() >= 10);
    }
}
