//! Edge-list representation used as the construction format for [`CsrGraph`].
//!
//! [`CsrGraph`]: crate::CsrGraph

use crate::{GraphError, VertexId};

/// A weighted directed edge list.
///
/// This is the mutable "staging" representation: generators append edges here
/// and the result is frozen into a [`crate::CsrGraph`]. Weights default to
/// `1.0` for unweighted algorithms; SSSP kernels use them directly.
///
/// # Example
///
/// ```
/// use heteromap_graph::EdgeList;
///
/// let mut el = EdgeList::new(3);
/// el.push(0, 1, 1.0);
/// el.push(1, 2, 2.5);
/// assert_eq!(el.len(), 2);
/// let csr = el.into_csr().unwrap();
/// assert_eq!(csr.vertex_count(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EdgeList {
    vertex_count: usize,
    sources: Vec<VertexId>,
    targets: Vec<VertexId>,
    weights: Vec<f32>,
}

impl EdgeList {
    /// Creates an empty edge list over `vertex_count` vertices.
    pub fn new(vertex_count: usize) -> Self {
        EdgeList {
            vertex_count,
            sources: Vec::new(),
            targets: Vec::new(),
            weights: Vec::new(),
        }
    }

    /// Creates an empty edge list with capacity for `edges` edges.
    pub fn with_capacity(vertex_count: usize, edges: usize) -> Self {
        EdgeList {
            vertex_count,
            sources: Vec::with_capacity(edges),
            targets: Vec::with_capacity(edges),
            weights: Vec::with_capacity(edges),
        }
    }

    /// Number of vertices this edge list ranges over.
    pub fn vertex_count(&self) -> usize {
        self.vertex_count
    }

    /// Number of edges currently stored.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// Returns `true` if no edges are stored.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// Appends a directed edge `src -> dst` with `weight`.
    ///
    /// Out-of-range endpoints are detected later by [`EdgeList::into_csr`];
    /// `push` itself never fails so generators can stay branch-free.
    pub fn push(&mut self, src: VertexId, dst: VertexId, weight: f32) {
        self.sources.push(src);
        self.targets.push(dst);
        self.weights.push(weight);
    }

    /// Appends both `src -> dst` and `dst -> src` with the same weight.
    pub fn push_undirected(&mut self, a: VertexId, b: VertexId, weight: f32) {
        self.push(a, b, weight);
        self.push(b, a, weight);
    }

    /// Iterates over `(src, dst, weight)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, VertexId, f32)> + '_ {
        self.sources
            .iter()
            .zip(self.targets.iter())
            .zip(self.weights.iter())
            .map(|((&s, &t), &w)| (s, t, w))
    }

    /// Removes duplicate `(src, dst)` pairs, keeping the first weight seen,
    /// and removes self-loops. Returns the number of edges removed.
    pub fn dedup(&mut self) -> usize {
        let before = self.len();
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_unstable_by_key(|&i| (self.sources[i], self.targets[i]));
        let mut keep = vec![false; self.len()];
        let mut prev: Option<(VertexId, VertexId)> = None;
        for &i in &order {
            let key = (self.sources[i], self.targets[i]);
            if key.0 == key.1 {
                continue; // self-loop
            }
            if prev != Some(key) {
                keep[i] = true;
                prev = Some(key);
            }
        }
        let mut j = 0;
        for (i, &k) in keep.iter().enumerate() {
            if k {
                self.sources[j] = self.sources[i];
                self.targets[j] = self.targets[i];
                self.weights[j] = self.weights[i];
                j += 1;
            }
        }
        self.sources.truncate(j);
        self.targets.truncate(j);
        self.weights.truncate(j);
        before - j
    }

    /// Freezes the edge list into a [`crate::CsrGraph`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfBounds`] if any endpoint is outside
    /// `0..vertex_count`.
    pub fn into_csr(self) -> Result<crate::CsrGraph, GraphError> {
        crate::CsrGraph::from_edge_list(self)
    }

    /// Consumes the edge list, returning `(vertex_count, sources, targets, weights)`.
    pub fn into_parts(self) -> (usize, Vec<VertexId>, Vec<VertexId>, Vec<f32>) {
        (self.vertex_count, self.sources, self.targets, self.weights)
    }
}

impl Extend<(VertexId, VertexId, f32)> for EdgeList {
    fn extend<T: IntoIterator<Item = (VertexId, VertexId, f32)>>(&mut self, iter: T) {
        for (s, t, w) in iter {
            self.push(s, t, w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate() {
        let mut el = EdgeList::new(4);
        el.push(0, 1, 1.0);
        el.push(2, 3, 4.0);
        let edges: Vec<_> = el.iter().collect();
        assert_eq!(edges, vec![(0, 1, 1.0), (2, 3, 4.0)]);
    }

    #[test]
    fn undirected_pushes_both_directions() {
        let mut el = EdgeList::new(2);
        el.push_undirected(0, 1, 2.0);
        assert_eq!(el.len(), 2);
        let edges: Vec<_> = el.iter().collect();
        assert!(edges.contains(&(0, 1, 2.0)));
        assert!(edges.contains(&(1, 0, 2.0)));
    }

    #[test]
    fn dedup_removes_duplicates_and_self_loops() {
        let mut el = EdgeList::new(3);
        el.push(0, 1, 1.0);
        el.push(0, 1, 9.0); // duplicate
        el.push(1, 1, 1.0); // self-loop
        el.push(2, 0, 1.0);
        let removed = el.dedup();
        assert_eq!(removed, 2);
        assert_eq!(el.len(), 2);
        let pairs: Vec<_> = el.iter().map(|(s, t, _)| (s, t)).collect();
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(2, 0)));
    }

    #[test]
    fn dedup_on_empty_is_noop() {
        let mut el = EdgeList::new(0);
        assert_eq!(el.dedup(), 0);
        assert!(el.is_empty());
    }

    #[test]
    fn extend_collects_triples() {
        let mut el = EdgeList::new(5);
        el.extend(vec![(0, 1, 1.0), (1, 2, 1.0)]);
        assert_eq!(el.len(), 2);
    }

    #[test]
    fn with_capacity_starts_empty() {
        let el = EdgeList::with_capacity(10, 100);
        assert!(el.is_empty());
        assert_eq!(el.vertex_count(), 10);
    }
}
