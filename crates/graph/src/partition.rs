//! Vertex-range partitioning used by the chunk streamer.

use crate::{CsrGraph, VertexId};

/// A contiguous vertex range `[start, end)` with its edge count, produced by
/// [`partition_by_edges`] so every chunk carries roughly equal work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VertexRange {
    /// First vertex in the range.
    pub start: VertexId,
    /// One past the last vertex in the range.
    pub end: VertexId,
    /// Number of edges whose source lies in the range.
    pub edges: usize,
}

impl VertexRange {
    /// Number of vertices in the range.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Returns `true` for an empty range.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Splits `graph` into contiguous vertex ranges, each holding at most
/// `max_edges` out-edges (except that a single vertex with more than
/// `max_edges` edges still gets its own chunk — chunks are never empty).
///
/// # Panics
///
/// Panics if `max_edges == 0`.
pub fn partition_by_edges(graph: &CsrGraph, max_edges: usize) -> Vec<VertexRange> {
    assert!(max_edges > 0, "max_edges must be positive");
    let n = graph.vertex_count();
    let mut ranges = Vec::new();
    let mut start = 0usize;
    let mut acc = 0usize;
    for v in 0..n {
        let d = graph.out_degree(v as VertexId);
        if acc + d > max_edges && v > start {
            ranges.push(VertexRange {
                start: start as VertexId,
                end: v as VertexId,
                edges: acc,
            });
            start = v;
            acc = 0;
        }
        acc += d;
    }
    if start < n {
        ranges.push(VertexRange {
            start: start as VertexId,
            end: n as VertexId,
            edges: acc,
        });
    }
    ranges
}

/// Splits `graph` into exactly `count` near-equal vertex ranges (the last may
/// be smaller). Useful for fixed-chunk-count experiments.
///
/// # Panics
///
/// Panics if `count == 0`.
pub fn partition_into(graph: &CsrGraph, count: usize) -> Vec<VertexRange> {
    assert!(count > 0, "count must be positive");
    let n = graph.vertex_count();
    let step = n.div_ceil(count).max(1);
    let mut ranges = Vec::new();
    let mut start = 0usize;
    while start < n {
        let end = (start + step).min(n);
        let edges = (start..end).map(|v| graph.out_degree(v as VertexId)).sum();
        ranges.push(VertexRange {
            start: start as VertexId,
            end: end as VertexId,
            edges,
        });
        start = end;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GraphGenerator, UniformRandom};

    #[test]
    fn ranges_cover_all_vertices_exactly_once() {
        let g = UniformRandom::new(100, 600).generate(1);
        let ranges = partition_by_edges(&g, 50);
        let mut next = 0;
        for r in &ranges {
            assert_eq!(r.start, next);
            assert!(r.end > r.start);
            next = r.end;
        }
        assert_eq!(next as usize, g.vertex_count());
    }

    #[test]
    fn edge_budget_is_respected_except_single_heavy_vertex() {
        let g = UniformRandom::new(100, 600).generate(2);
        let budget = 40;
        for r in partition_by_edges(&g, budget) {
            assert!(r.edges <= budget || r.len() == 1);
        }
    }

    #[test]
    fn edge_counts_sum_to_total() {
        let g = UniformRandom::new(80, 500).generate(3);
        let total: usize = partition_by_edges(&g, 64).iter().map(|r| r.edges).sum();
        assert_eq!(total, g.edge_count());
    }

    #[test]
    fn partition_into_produces_requested_count() {
        let g = UniformRandom::new(97, 300).generate(4);
        let ranges = partition_into(&g, 10);
        assert!(ranges.len() <= 10);
        let covered: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(covered, 97);
    }

    #[test]
    fn single_partition_covers_everything() {
        let g = UniformRandom::new(50, 200).generate(5);
        let ranges = partition_into(&g, 1);
        assert_eq!(ranges.len(), 1);
        assert_eq!(ranges[0].edges, g.edge_count());
    }

    #[test]
    #[should_panic]
    fn zero_edge_budget_panics() {
        let g = UniformRandom::new(10, 20).generate(0);
        let _ = partition_by_edges(&g, 0);
    }
}
