//! Incrementally maintained graph statistics.
//!
//! The paper derives its `I` input variables from four structural
//! quantities (`GraphStats`): vertex count, edge count, maximum
//! out-degree, and diameter. A static pipeline measures them once with
//! [`GraphStats::measure`]; a *dynamic* graph mutating under batched edge
//! deltas cannot afford an `O(V + E)` rescan per batch. This module keeps
//! the counting-based quantities — edge count, per-vertex degrees, the
//! full out-degree histogram, and the maximum degree — exact under
//! single-edge inserts and deletes in `O(1)` amortized per delta.
//!
//! Bit-identity contract: every quantity here is an integer counter, so
//! "incremental" and "recomputed" can only ever disagree through a logic
//! bug, never through floating-point drift. The one traversal-based
//! statistic (diameter) is *not* maintained incrementally; instead
//! [`IncrementalStats::finalize`] reruns the exact same double-sweep BFS
//! ([`approximate_diameter`]) the static path uses, over the same
//! [`AdjacencySource`] neighbor ordering. The property tests in
//! `heteromap-dyngraph` drive random delta sequences and assert the
//! composite [`GraphStats`] equals a from-scratch recompute bit for bit.

use crate::stats::{approximate_diameter, AdjacencySource, GraphStats};
use crate::VertexId;

/// Exact, incrementally maintained degree/edge statistics.
///
/// The owner (e.g. `DynGraph`) is responsible for calling
/// [`on_insert`](IncrementalStats::on_insert) /
/// [`on_delete`](IncrementalStats::on_delete) exactly once per directed
/// edge actually added or removed — *not* for weight updates of an edge
/// that already exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Out-degree per vertex.
    degrees: Vec<u32>,
    /// `histogram[d]` = number of vertices with out-degree `d`. The vector
    /// only grows; trailing zero buckets are harmless.
    histogram: Vec<u64>,
    /// Directed edge count.
    edges: u64,
    /// Maximum out-degree over all vertices.
    max_degree: u32,
}

impl IncrementalStats {
    /// Statistics of an edgeless graph with `vertices` vertices.
    pub fn new(vertices: usize) -> Self {
        IncrementalStats {
            degrees: vec![0; vertices],
            histogram: vec![vertices as u64],
            edges: 0,
            max_degree: 0,
        }
    }

    /// Seeds the counters from known per-vertex out-degrees (the
    /// `DynGraph::from_csr` path).
    pub fn from_degrees(degrees: Vec<u32>) -> Self {
        let max_degree = degrees.iter().copied().max().unwrap_or(0);
        let mut histogram = vec![0u64; max_degree as usize + 1];
        let mut edges = 0u64;
        for &d in &degrees {
            histogram[d as usize] += 1;
            edges += u64::from(d);
        }
        IncrementalStats {
            degrees,
            histogram,
            edges,
            max_degree,
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.degrees.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> u64 {
        self.edges
    }

    /// Maximum out-degree.
    pub fn max_degree(&self) -> u32 {
        self.max_degree
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: VertexId) -> u32 {
        self.degrees[v as usize]
    }

    /// The full out-degree histogram: `histogram()[d]` vertices have
    /// out-degree `d`. May carry trailing zero buckets after deletions.
    pub fn histogram(&self) -> &[u64] {
        &self.histogram
    }

    /// Average out-degree `E / V` (0.0 on an empty graph) — the density
    /// proxy behind `I2`.
    pub fn average_degree(&self) -> f64 {
        if self.degrees.is_empty() {
            0.0
        } else {
            self.edges as f64 / self.degrees.len() as f64
        }
    }

    /// Accounts one new directed edge leaving `src`: moves `src` one
    /// histogram bucket up and bumps the edge count and max degree.
    pub fn on_insert(&mut self, src: VertexId) {
        let d = self.degrees[src as usize] as usize;
        self.histogram[d] -= 1;
        if d + 1 >= self.histogram.len() {
            self.histogram.resize(d + 2, 0);
        }
        self.histogram[d + 1] += 1;
        self.degrees[src as usize] = (d + 1) as u32;
        self.edges += 1;
        self.max_degree = self.max_degree.max((d + 1) as u32);
    }

    /// Accounts one removed directed edge leaving `src`: moves `src` one
    /// histogram bucket down and, when the top bucket empties, walks the
    /// max degree down to the next occupied bucket.
    pub fn on_delete(&mut self, src: VertexId) {
        let d = self.degrees[src as usize] as usize;
        assert!(d > 0, "delete from vertex {src} with no out-edges");
        self.histogram[d] -= 1;
        self.histogram[d - 1] += 1;
        self.degrees[src as usize] = (d - 1) as u32;
        self.edges -= 1;
        while self.max_degree > 0 && self.histogram[self.max_degree as usize] == 0 {
            self.max_degree -= 1;
        }
    }

    /// Composes the counters with a diameter sweep over `adjacency` into
    /// the same [`GraphStats`] that [`GraphStats::measure`] would produce
    /// on a materialized snapshot — bit for bit, because the diameter runs
    /// the identical [`approximate_diameter`] BFS.
    pub fn finalize<G: AdjacencySource + ?Sized>(&self, adjacency: &G) -> GraphStats {
        debug_assert_eq!(adjacency.vertex_count(), self.vertex_count());
        let diameter = if self.degrees.is_empty() {
            0
        } else {
            approximate_diameter(adjacency)
        };
        GraphStats {
            vertices: self.degrees.len() as u64,
            edges: self.edges,
            max_degree: u64::from(self.max_degree),
            diameter,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;
    use crate::edgelist::EdgeList;

    fn stats_of(graph: &CsrGraph) -> IncrementalStats {
        let degrees = (0..graph.vertex_count())
            .map(|v| graph.out_degree(v as VertexId) as u32)
            .collect();
        IncrementalStats::from_degrees(degrees)
    }

    #[test]
    fn seeded_counters_match_the_csr() {
        let mut el = EdgeList::new(5);
        el.push_undirected(0, 1, 1.0);
        el.push_undirected(0, 2, 1.0);
        el.push(3, 4, 1.0);
        let g = el.into_csr().unwrap();
        let inc = stats_of(&g);
        assert_eq!(inc.edge_count(), g.edge_count() as u64);
        assert_eq!(inc.max_degree(), g.max_degree() as u32);
        assert_eq!(inc.finalize(&g), g.stats());
    }

    #[test]
    fn insert_delete_round_trip_restores_the_histogram() {
        let mut inc = IncrementalStats::new(4);
        let baseline = inc.clone();
        inc.on_insert(1);
        inc.on_insert(1);
        inc.on_insert(2);
        assert_eq!(inc.max_degree(), 2);
        assert_eq!(inc.edge_count(), 3);
        assert_eq!(inc.histogram()[2], 1);
        inc.on_delete(1);
        inc.on_delete(1);
        inc.on_delete(2);
        assert_eq!(inc.edge_count(), baseline.edge_count());
        assert_eq!(inc.max_degree(), 0);
        assert_eq!(inc.degree(1), 0);
        // Histogram may keep trailing zero buckets; occupied buckets agree.
        assert_eq!(inc.histogram()[0], 4);
    }

    #[test]
    fn max_degree_walks_down_over_empty_buckets() {
        let mut inc = IncrementalStats::new(3);
        for _ in 0..5 {
            inc.on_insert(0);
        }
        inc.on_insert(1);
        assert_eq!(inc.max_degree(), 5);
        for _ in 0..5 {
            inc.on_delete(0);
        }
        // Bucket 5..=2 are empty now: the max must land on vertex 1's 1.
        assert_eq!(inc.max_degree(), 1);
    }

    #[test]
    fn empty_graph_finalizes_to_zeroes() {
        let inc = IncrementalStats::new(0);
        let g = EdgeList::new(0).into_csr().unwrap();
        let s = inc.finalize(&g);
        assert_eq!(s, GraphStats::from_known(0, 0, 0, 0));
    }
}
