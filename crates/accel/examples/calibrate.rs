//! Calibration harness for [`heteromap_accel::cost::Constants`].
//!
//! Default mode prints the per-combination winner matrix (best configuration
//! on GPU vs best on multicore) against the paper's Fig. 11 expectations plus
//! the headline geomeans. `--search` runs coordinate descent over the model
//! constants to maximize agreement with the paper, printing the best constant
//! set found (which is then frozen into `Constants::paper()`).

use heteromap_accel::cost::{Constants, CostModel, WorkloadContext};
use heteromap_accel::system::MultiAcceleratorSystem;
use heteromap_graph::datasets::Dataset;
use heteromap_model::mspace::MSpace;
use heteromap_model::{Accelerator, MConfig, Workload};

/// Expected winner per the paper's §VII-B prose. `G` = GPU, `M` = multicore,
/// `.` = not specified / don't care.
fn expected(w: Workload, d: Dataset) -> char {
    use Dataset::*;
    use Workload::*;
    match (w, d) {
        // Highly concurrent traversals fare well with the GPU (§VII-B),
        // except DFS on the dense connectome (inner-loop parallelism on the
        // multicore).
        (SsspBf | Bfs | Dfs, UsaCal) => '.', // road GPUs vs cached Phi: unresolved in prose
        (SsspBf | Bfs, _) => 'G',
        (Dfs, MouseRetina) => 'M',
        (Dfs, _) => 'G',
        // Fig. 1: Δ-stepping on the road network is much faster on the
        // multicore; on dense CAGE-14 the GPU wins ~3x. Frnd/Kron are the
        // named large-graph exceptions.
        (SsspDelta, UsaCal | Facebook | LiveJournal | RggN24) => 'M',
        (SsspDelta, Cage14 | Friendster | KronLarge) => 'G',
        (SsspDelta, Twitter | MouseRetina) => '.',
        // FP benchmarks prefer the Phi; PR-CA is the named exception
        // (no density for SIMD), Frnd/Kron the large-graph exceptions.
        (PageRank, UsaCal) => 'G',
        (PageRank, Friendster | KronLarge) => 'G',
        (PageRank, Twitter) => '.',
        (PageRank, _) => 'M',
        (PageRankDp, Friendster | KronLarge) => 'G',
        (PageRankDp, UsaCal | Twitter) => '.',
        (PageRankDp, _) => 'M',
        (TriangleCount | ConnComp, Facebook | LiveJournal | MouseRetina) => 'M',
        (TriangleCount | ConnComp, Friendster | KronLarge) => 'G',
        (Community, Friendster | KronLarge) => 'G',
        (Community, Facebook | LiveJournal | MouseRetina | Cage14) => 'M',
        _ => '.',
    }
}

/// Extra weight for cells that embody explicitly-named paper claims
/// (Fig. 1, Fig. 7, and the §VII-B exception sentences).
fn cell_weight(w: Workload, d: Dataset) -> f64 {
    use Dataset::*;
    use Workload::*;
    match (w, d) {
        (SsspDelta, UsaCal) | (SsspDelta, Cage14) => 3.0, // Fig. 1
        (SsspBf, Cage14) => 3.0,
        (Dfs, MouseRetina) => 3.0, // named exception
        (PageRank, UsaCal) => 3.0, // named exception
        _ => 1.0,
    }
}

struct Evaluation {
    hits: f64,
    total: f64,
    gpu_speedup_pct: f64,
    mc_speedup_pct: f64,
    matrix: Vec<(Workload, Dataset, f64, f64)>, // best_gpu, best_mc
}

fn evaluate(constants: Constants, gpu_cfgs: &[MConfig], mc_cfgs: &[MConfig]) -> Evaluation {
    let sys = MultiAcceleratorSystem::primary().with_model(CostModel::with_constants(constants));
    let mut hits = 0.0;
    let mut total = 0.0;
    let mut matrix = Vec::new();
    let (mut geo_best, mut geo_gpu, mut geo_mc, mut n) = (0.0, 0.0, 0.0, 0usize);
    for w in Workload::all() {
        for d in Dataset::all() {
            let ctx = WorkloadContext::for_workload(w, d.stats());
            let best_gpu = gpu_cfgs
                .iter()
                .map(|c| sys.deploy(&ctx, c).time_ms)
                .fold(f64::INFINITY, f64::min);
            let best_mc = mc_cfgs
                .iter()
                .map(|c| sys.deploy(&ctx, c).time_ms)
                .fold(f64::INFINITY, f64::min);
            let winner = if best_gpu <= best_mc { 'G' } else { 'M' };
            let exp = expected(w, d);
            if exp != '.' {
                let wt = cell_weight(w, d);
                total += wt;
                if exp == winner {
                    hits += wt;
                }
            }
            geo_best += best_gpu.min(best_mc).ln();
            geo_gpu += best_gpu.ln();
            geo_mc += best_mc.ln();
            n += 1;
            matrix.push((w, d, best_gpu, best_mc));
        }
    }
    let geo_best = (geo_best / n as f64).exp();
    let geo_gpu = (geo_gpu / n as f64).exp();
    let geo_mc = (geo_mc / n as f64).exp();
    Evaluation {
        hits,
        total,
        gpu_speedup_pct: (geo_gpu / geo_best - 1.0) * 100.0,
        mc_speedup_pct: (geo_mc / geo_best - 1.0) * 100.0,
        matrix,
    }
}

fn score(e: &Evaluation) -> f64 {
    // Winner agreement dominates; margin targets and headline geomeans
    // (31% / 75%) pull magnitudes into the paper's regime: Fig. 11 shows the
    // Phi losing GPU-biased combinations by large factors (it "performs
    // poorly compared to a GPU" on SSSP/BFS/DFS) while multicore-biased wins
    // are more moderate, and Fig. 1 shows SSSP-Delta on the road network
    // losing by orders of magnitude on the GPU.
    let winners = e.hits / e.total;
    let mut margin = 0.0;
    let mut margin_n = 0;
    for &(w, d, g, m) in &e.matrix {
        let exp = expected(w, d);
        let target_ln = match (exp, w, d) {
            ('M', Workload::SsspDelta, Dataset::UsaCal) => (8.0f64).ln(), // Fig. 1
            ('G', Workload::SsspDelta, Dataset::Cage14) => (3.0f64).ln(), // Fig. 1
            ('G', _, _) => (3.0f64).ln(),
            ('M', _, _) => (2.0f64).ln(),
            _ => continue,
        };
        // Positive when the expected machine wins by the target factor.
        let actual_ln = if exp == 'G' {
            (m / g).ln()
        } else {
            (g / m).ln()
        };
        margin += (1.0 - (actual_ln - target_ln).abs() / (10.0f64).ln()).clamp(0.0, 1.0);
        margin_n += 1;
    }
    let margin = margin / margin_n.max(1) as f64;
    let headline = 1.0
        - ((e.gpu_speedup_pct - 31.0).abs() / 62.0 + (e.mc_speedup_pct - 75.0).abs() / 150.0)
            .min(1.0);
    winners * 3.0 + margin * 2.0 + headline * 1.5
}

type Field = (&'static str, fn(&mut Constants) -> &mut f64, f64, f64);

fn fields() -> Vec<Field> {
    vec![
        (
            "edge_revisit_per_iter",
            |c| &mut c.edge_revisit_per_iter,
            0.01,
            0.5,
        ),
        ("vertex_op_cost", |c| &mut c.vertex_op_cost, 0.1, 2.0),
        ("gpu_launch_us", |c| &mut c.gpu_launch_us, 0.5, 40.0),
        ("mc_barrier_us", |c| &mut c.mc_barrier_us, 0.2, 40.0),
        (
            "gpu_divergence_pushpop",
            |c| &mut c.gpu_divergence_pushpop,
            0.0,
            0.8,
        ),
        (
            "gpu_divergence_reduction",
            |c| &mut c.gpu_divergence_reduction,
            0.0,
            6.0,
        ),
        ("gpu_indirect", |c| &mut c.gpu_indirect, 0.2, 6.0),
        ("gpu_rw_shared", |c| &mut c.gpu_rw_shared, 0.1, 4.0),
        ("mc_indirect", |c| &mut c.mc_indirect, 0.05, 2.0),
        ("mc_atomic_cycles", |c| &mut c.mc_atomic_cycles, 1.0, 12.0),
        ("gpu_atomic_cycles", |c| &mut c.gpu_atomic_cycles, 6.0, 80.0),
        ("atomic_fraction", |c| &mut c.atomic_fraction, 0.05, 0.6),
        ("dp_share", |c| &mut c.dp_share, 0.05, 0.45),
        (
            "gpu_atomic_contention_threads",
            |c| &mut c.gpu_atomic_contention_threads,
            32.0,
            4096.0,
        ),
        ("random_miss_base", |c| &mut c.random_miss_base, 0.02, 0.9),
        ("gpu_stress", |c| &mut c.gpu_stress, 0.0, 2.0),
        (
            "gpu_uncoalesce_divergent",
            |c| &mut c.gpu_uncoalesce_divergent,
            0.0,
            3.0,
        ),
        (
            "gpu_uncoalesce_indirect",
            |c| &mut c.gpu_uncoalesce_indirect,
            0.0,
            4.0,
        ),
        (
            "gpu_uncoalesce_skew",
            |c| &mut c.gpu_uncoalesce_skew,
            0.3,
            3.0,
        ),
        ("chunk_overhead_ms", |c| &mut c.chunk_overhead_ms, 0.01, 5.0),
        ("chunk_cut_penalty", |c| &mut c.chunk_cut_penalty, 0.0, 0.5),
        ("line_share", |c| &mut c.line_share, 2.0, 16.0),
        ("smt_yield", |c| &mut c.smt_yield, 0.05, 1.0),
        (
            "thread_scaling_gamma",
            |c| &mut c.thread_scaling_gamma,
            0.3,
            1.0,
        ),
        (
            "gpu_occupancy_threads",
            |c| &mut c.gpu_occupancy_threads,
            1.0,
            16.0,
        ),
        (
            "locality_need_indirect",
            |c| &mut c.locality_need_indirect,
            0.5,
            6.0,
        ),
        ("mc_ipc_scale", |c| &mut c.mc_ipc_scale, 0.4, 2.5),
        ("mc_mlp_scale", |c| &mut c.mc_mlp_scale, 0.25, 4.0),
        ("simd_boost_weight", |c| &mut c.simd_boost_weight, 0.0, 20.0),
        ("mc_large_graph", |c| &mut c.mc_large_graph, 0.0, 6.0),
    ]
}

fn descend(
    mut best: Constants,
    gpu_cfgs: &[MConfig],
    mc_cfgs: &[MConfig],
    verbose: bool,
) -> (Constants, f64) {
    let mut best_score = score(&evaluate(best, gpu_cfgs, mc_cfgs));
    for round in 0..6 {
        let mut improved = false;
        for (name, get, lo, hi) in fields() {
            for mult in [0.5, 0.8, 1.3, 2.2] {
                let mut cand = best;
                {
                    let f = get(&mut cand);
                    *f = (*f * mult).clamp(lo, hi);
                }
                let e = evaluate(cand, gpu_cfgs, mc_cfgs);
                let s = score(&e);
                if s > best_score + 1e-6 {
                    best = cand;
                    best_score = s;
                    improved = true;
                    if verbose {
                        println!(
                            "round {round}: {name} x{mult} -> hits {:.0}/{:.0} gpu {:.1}% mc {:.1}% score {:.4}",
                            e.hits, e.total, e.gpu_speedup_pct, e.mc_speedup_pct, s
                        );
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
    (best, best_score)
}

fn search(gpu_cfgs: &[MConfig], mc_cfgs: &[MConfig]) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let (mut best, mut best_score) = descend(Constants::paper(), gpu_cfgs, mc_cfgs, true);
    println!("descent from paper(): score {best_score:.4}");
    let mut rng = StdRng::seed_from_u64(7);
    for restart in 0..3 {
        let mut seed = best;
        for (_, get, lo, hi) in fields() {
            let f = get(&mut seed);
            let mult = rng.gen_range(0.4..2.5);
            *f = (*f * mult).clamp(lo, hi);
        }
        let (cand, s) = descend(seed, gpu_cfgs, mc_cfgs, false);
        println!("restart {restart}: score {s:.4}");
        if s > best_score {
            best = cand;
            best_score = s;
            println!("  -> new best");
        }
    }
    let e = evaluate(best, gpu_cfgs, mc_cfgs);
    print_matrix(&e);
    println!("\nbest constants (score {best_score:.4}):\n{best:#?}");
}

fn print_matrix(e: &Evaluation) {
    println!(
        "{:<12} {}",
        "",
        Dataset::all()
            .iter()
            .map(|d| format!("{:>7}", d.abbrev()))
            .collect::<String>()
    );
    let mut idx = 0;
    for w in Workload::all() {
        print!("{:<12}", w.abbrev());
        for d in Dataset::all() {
            let (_, _, g, m) = e.matrix[idx];
            idx += 1;
            let winner = if g <= m { 'G' } else { 'M' };
            let exp = expected(w, d);
            let ok = exp == '.' || exp == winner;
            print!(
                "{:>5}{}{}",
                format!("{:.2}", g.min(m) / g.max(m)),
                winner,
                if ok { ' ' } else { '!' }
            );
        }
        println!();
    }
    println!(
        "\nwinner accuracy vs paper (weighted): {:.0}/{:.0}",
        e.hits, e.total
    );
    println!(
        "oracle speedup over GPU-only: {:.1}% (paper ~31%), over MC-only: {:.1}% (paper ~75%)",
        e.gpu_speedup_pct, e.mc_speedup_pct
    );
}

fn main() {
    let space = MSpace::new();
    let gpu_cfgs = space.enumerate_for(Accelerator::Gpu);
    let mc_cfgs = space.enumerate_for(Accelerator::Multicore);
    if std::env::args().any(|a| a == "--search") {
        // Subsample the multicore space for search speed (every 9th config
        // still covers all first-order dimension combinations coarsely).
        let mc_sub: Vec<MConfig> = mc_cfgs.iter().copied().step_by(9).collect();
        search(&gpu_cfgs, &mc_sub);
    } else {
        let e = evaluate(Constants::paper(), &gpu_cfgs, &mc_cfgs);
        print_matrix(&e);
    }
}
