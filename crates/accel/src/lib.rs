//! Accelerator simulator substrate for the HeteroMap reproduction.
//!
//! The paper evaluates on physical accelerators (GTX-750Ti / GTX-970 GPUs,
//! Xeon Phi 7120P, a 40-core Xeon). This crate replaces that hardware with a
//! parameterized analytical simulator (the substitution is documented in
//! DESIGN.md §2):
//!
//! * [`spec::AcceleratorSpec`] — published hardware parameters (Table II),
//! * [`cost::CostModel`] — the `(B, I, M, spec) → (time, energy,
//!   utilization)` model,
//! * [`system::MultiAcceleratorSystem`] — the Fig. 2 GPU + multicore pair
//!   with pinned discrete memories.
//!
//! # Example
//!
//! ```
//! use heteromap_accel::cost::WorkloadContext;
//! use heteromap_accel::system::MultiAcceleratorSystem;
//! use heteromap_graph::datasets::Dataset;
//! use heteromap_model::{MConfig, Workload};
//!
//! let sys = MultiAcceleratorSystem::primary();
//! let ctx = WorkloadContext::for_workload(Workload::SsspBf, Dataset::Cage14.stats());
//! let gpu = sys.deploy(&ctx, &MConfig::gpu_default());
//! let phi = sys.deploy(&ctx, &MConfig::multicore_default());
//! // Dense CAGE-14 maps optimally onto the GPU (paper Fig. 1).
//! assert!(gpu.time_ms < phi.time_ms);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cost;
pub mod device;
pub mod fault;
pub mod spec;
pub mod system;

pub use cost::{CostModel, SimBreakdown, SimReport, WorkloadContext};
pub use device::{DeviceInstance, Occupancy};
pub use fault::{DeployError, FaultPlan, FaultState};
pub use spec::{AcceleratorKind, AcceleratorSpec};
pub use system::MultiAcceleratorSystem;
