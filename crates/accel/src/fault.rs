//! Deterministic accelerator fault injection.
//!
//! The paper's runtime assumes both accelerators of Fig. 2 are always
//! healthy; production deployments cannot. This module models the failure
//! modes a scheduler must survive, per accelerator:
//!
//! * [`FaultState::Healthy`] — behaves exactly like the seed simulator;
//! * [`FaultState::Degraded`] — a fraction of cores survived (partial board
//!   failure, thermal throttling to a core subset); deploys succeed on the
//!   surviving silicon;
//! * [`FaultState::Transient`] — each deploy attempt fails independently
//!   with a fixed probability (ECC storms, driver resets, preemption);
//! * [`FaultState::Down`] — every deploy fails (device lost).
//!
//! In addition, disabling streaming in the [`FaultPlan`] turns
//! working-set-exceeds-memory situations into hard
//! [`DeployError::OutOfMemory`] failures instead of the cost model's
//! Stinger-style chunking — the "OOM mid-stream" case.
//!
//! Everything is **deterministic**: whether attempt `k` of a given
//! combination fails is a pure function of the plan seed, the accelerator,
//! the workload context, the configuration, and `k`. Retrying the same
//! attempt reproduces the same outcome; retrying with the next attempt index
//! redraws. This keeps experiments bit-reproducible while still modelling
//! independent per-attempt failures.

use crate::cost::WorkloadContext;
use heteromap_model::{Accelerator, MConfig};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::hash::{Hash, Hasher};

/// Health of one accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum FaultState {
    /// Fully operational — deploys behave exactly like the seed simulator.
    #[default]
    Healthy,
    /// Only a fraction of the cores survived; deploys succeed but run on the
    /// surviving silicon (compute throughput scales with the fraction).
    Degraded {
        /// Fraction of cores still usable, clamped to `(0, 1]` on use.
        surviving_core_fraction: f64,
    },
    /// Each deploy attempt fails independently with this probability.
    Transient {
        /// Per-attempt failure probability in `[0, 1]`.
        failure_rate: f64,
    },
    /// The accelerator is lost; every deploy fails.
    Down,
}

impl FaultState {
    /// Whether deploys behave exactly like the fault-free simulator.
    pub fn is_healthy(&self) -> bool {
        matches!(self, FaultState::Healthy)
    }

    /// The usable core fraction under this state (1.0 unless `Degraded`).
    pub fn surviving_fraction(&self) -> f64 {
        match *self {
            FaultState::Degraded {
                surviving_core_fraction,
            } => surviving_core_fraction.clamp(1e-3, 1.0),
            _ => 1.0,
        }
    }
}

/// Fault-injection plan for a GPU + multicore pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// GPU health.
    pub gpu: FaultState,
    /// Multicore health.
    pub multicore: FaultState,
    /// When `false`, a working set larger than the accelerator's memory is a
    /// hard [`DeployError::OutOfMemory`] instead of being streamed in
    /// chunks by the cost model.
    pub streaming_enabled: bool,
    /// Seed for the deterministic per-attempt failure draws.
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::healthy()
    }
}

impl FaultPlan {
    /// Both accelerators healthy, streaming enabled — the seed behaviour.
    pub fn healthy() -> Self {
        FaultPlan {
            gpu: FaultState::Healthy,
            multicore: FaultState::Healthy,
            streaming_enabled: true,
            seed: 0,
        }
    }

    /// GPU lost, multicore healthy — the canonical failover scenario.
    pub fn gpu_down() -> Self {
        FaultPlan {
            gpu: FaultState::Down,
            ..FaultPlan::healthy()
        }
    }

    /// Multicore lost, GPU healthy.
    pub fn multicore_down() -> Self {
        FaultPlan {
            multicore: FaultState::Down,
            ..FaultPlan::healthy()
        }
    }

    /// Both accelerators flaking with the same per-attempt failure rate.
    pub fn transient(failure_rate: f64, seed: u64) -> Self {
        FaultPlan {
            gpu: FaultState::Transient { failure_rate },
            multicore: FaultState::Transient { failure_rate },
            streaming_enabled: true,
            seed,
        }
    }

    /// Replaces the state of one accelerator.
    pub fn with_state(mut self, accelerator: Accelerator, state: FaultState) -> Self {
        match accelerator {
            Accelerator::Gpu => self.gpu = state,
            Accelerator::Multicore => self.multicore = state,
        }
        self
    }

    /// Disables streaming so oversize working sets OOM.
    pub fn without_streaming(mut self) -> Self {
        self.streaming_enabled = false;
        self
    }

    /// The state of `accelerator`.
    pub fn state_for(&self, accelerator: Accelerator) -> FaultState {
        match accelerator {
            Accelerator::Gpu => self.gpu,
            Accelerator::Multicore => self.multicore,
        }
    }

    /// Whether the plan is indistinguishable from a fault-free system.
    pub fn is_all_healthy(&self) -> bool {
        self.gpu.is_healthy() && self.multicore.is_healthy() && self.streaming_enabled
    }

    /// Deterministic failure draw for one deploy attempt: `Some(fraction)`
    /// when the attempt fails, where `fraction ∈ (0, 1)` is how far through
    /// the (fault-free) run the failure strikes. `None` when it succeeds.
    pub fn transient_failure_at(
        &self,
        accelerator: Accelerator,
        ctx: &WorkloadContext,
        cfg: &MConfig,
        attempt: u32,
    ) -> Option<f64> {
        let failure_rate = match self.state_for(accelerator) {
            FaultState::Transient { failure_rate } => failure_rate.clamp(0.0, 1.0),
            _ => return None,
        };
        let draw = hash_unit(self.seed, accelerator, ctx, cfg, attempt, 0x51);
        if draw < failure_rate {
            // Second, independent draw for the failure point; keep it off the
            // exact endpoints so a charged partial run is always positive.
            let frac = hash_unit(self.seed, accelerator, ctx, cfg, attempt, 0xA7);
            Some(frac.clamp(0.05, 0.95))
        } else {
            None
        }
    }
}

/// Deterministic draw in `[0, 1)` from the fault scenario fingerprint.
fn hash_unit(
    seed: u64,
    accelerator: Accelerator,
    ctx: &WorkloadContext,
    cfg: &MConfig,
    attempt: u32,
    salt: u8,
) -> f64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    seed.hash(&mut h);
    salt.hash(&mut h);
    (accelerator == Accelerator::Gpu).hash(&mut h);
    attempt.hash(&mut h);
    ctx.stats.vertices.hash(&mut h);
    ctx.stats.edges.hash(&mut h);
    ctx.stats.diameter.hash(&mut h);
    for x in ctx.b.as_array() {
        x.to_bits().hash(&mut h);
    }
    for x in cfg.as_array() {
        x.to_bits().hash(&mut h);
    }
    h.finish() as f64 / (u64::MAX as f64 + 1.0)
}

/// Why a deploy attempt failed.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum DeployError {
    /// The selected accelerator is [`FaultState::Down`].
    AcceleratorDown {
        /// The dead accelerator.
        accelerator: Accelerator,
    },
    /// A transient fault killed this attempt partway through.
    TransientFailure {
        /// The faulting accelerator.
        accelerator: Accelerator,
        /// Zero-based attempt index that failed.
        attempt: u32,
        /// Simulated milliseconds spent before the fault struck (this is
        /// the cost a retry policy must charge for the wasted attempt).
        failed_after_ms: f64,
    },
    /// The working set exceeds the accelerator's memory and streaming is
    /// disabled in the [`FaultPlan`].
    OutOfMemory {
        /// The accelerator that could not hold the working set.
        accelerator: Accelerator,
        /// Working-set footprint in bytes.
        footprint_bytes: u64,
        /// Accelerator memory capacity in bytes.
        capacity_bytes: u64,
    },
}

impl DeployError {
    /// The accelerator the failed deploy targeted.
    pub fn accelerator(&self) -> Accelerator {
        match *self {
            DeployError::AcceleratorDown { accelerator }
            | DeployError::TransientFailure { accelerator, .. }
            | DeployError::OutOfMemory { accelerator, .. } => accelerator,
        }
    }

    /// Whether retrying the same accelerator can possibly succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(self, DeployError::TransientFailure { .. })
    }
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::AcceleratorDown { accelerator } => {
                write!(f, "{accelerator} is down")
            }
            DeployError::TransientFailure {
                accelerator,
                attempt,
                failed_after_ms,
            } => write!(
                f,
                "transient fault on {accelerator} (attempt {attempt}, after {failed_after_ms:.3} ms)"
            ),
            DeployError::OutOfMemory {
                accelerator,
                footprint_bytes,
                capacity_bytes,
            } => write!(
                f,
                "{accelerator} out of memory: working set {footprint_bytes} B exceeds {capacity_bytes} B with streaming disabled"
            ),
        }
    }
}

impl std::error::Error for DeployError {}

#[cfg(test)]
mod tests {
    use super::*;
    use heteromap_graph::datasets::Dataset;
    use heteromap_model::Workload;

    fn ctx() -> WorkloadContext {
        WorkloadContext::for_workload(Workload::Bfs, Dataset::Facebook.stats())
    }

    #[test]
    fn healthy_plan_is_all_healthy() {
        assert!(FaultPlan::healthy().is_all_healthy());
        assert!(!FaultPlan::gpu_down().is_all_healthy());
        assert!(!FaultPlan::healthy().without_streaming().is_all_healthy());
    }

    #[test]
    fn transient_draws_are_deterministic_per_attempt() {
        let plan = FaultPlan::transient(0.5, 42);
        let cfg = MConfig::gpu_default();
        let a = plan.transient_failure_at(Accelerator::Gpu, &ctx(), &cfg, 0);
        let b = plan.transient_failure_at(Accelerator::Gpu, &ctx(), &cfg, 0);
        assert_eq!(a, b, "same attempt must reproduce");
        // Across many attempts roughly half must fail — loose bounds.
        let failures = (0..200)
            .filter(|&k| {
                plan.transient_failure_at(Accelerator::Gpu, &ctx(), &cfg, k)
                    .is_some()
            })
            .count();
        assert!(
            (60..140).contains(&failures),
            "{failures} failures at p=0.5"
        );
    }

    #[test]
    fn transient_rate_extremes() {
        let cfg = MConfig::gpu_default();
        let never = FaultPlan::transient(0.0, 1);
        let always = FaultPlan::transient(1.0, 1);
        for k in 0..50 {
            assert!(never
                .transient_failure_at(Accelerator::Gpu, &ctx(), &cfg, k)
                .is_none());
            let frac = always
                .transient_failure_at(Accelerator::Gpu, &ctx(), &cfg, k)
                .expect("p=1 always fails");
            assert!((0.0..1.0).contains(&frac));
        }
    }

    #[test]
    fn healthy_and_down_states_never_draw_transients() {
        let plan = FaultPlan::gpu_down();
        let cfg = MConfig::gpu_default();
        assert!(plan
            .transient_failure_at(Accelerator::Gpu, &ctx(), &cfg, 0)
            .is_none());
        assert!(plan
            .transient_failure_at(Accelerator::Multicore, &ctx(), &cfg, 0)
            .is_none());
    }

    #[test]
    fn degraded_fraction_is_clamped() {
        let s = FaultState::Degraded {
            surviving_core_fraction: 7.0,
        };
        assert_eq!(s.surviving_fraction(), 1.0);
        let z = FaultState::Degraded {
            surviving_core_fraction: 0.0,
        };
        assert!(z.surviving_fraction() > 0.0);
        assert_eq!(FaultState::Down.surviving_fraction(), 1.0);
    }

    #[test]
    fn error_display_names_the_accelerator() {
        let e = DeployError::AcceleratorDown {
            accelerator: Accelerator::Gpu,
        };
        assert!(e.to_string().contains("GPU"));
        assert!(!e.is_retryable());
        let t = DeployError::TransientFailure {
            accelerator: Accelerator::Multicore,
            attempt: 2,
            failed_after_ms: 1.5,
        };
        assert!(t.is_retryable());
        assert_eq!(t.accelerator(), Accelerator::Multicore);
    }
}
