//! Accelerator specifications (paper Table II and §VI-A/§VI-D).

use heteromap_model::mconfig::DeployLimits;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Broad architecture family of an accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AcceleratorKind {
    /// Throughput-oriented GPU: many small cores, tiny incoherent caches,
    /// latency hiding through massive threading.
    Gpu,
    /// Manycore with in-order cores, wide SIMD and coherent caches
    /// (Xeon Phi).
    Manycore,
    /// Conventional out-of-order multicore CPU.
    Cpu,
}

/// Static description of one accelerator.
///
/// The fields mirror the paper's Table II plus the §VI-A/§VI-D prose for the
/// GTX-970 and the 40-core Xeon. These are passive data, so fields are
/// public.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorSpec {
    /// Marketing name, e.g. `"GTX-750Ti"`.
    pub name: &'static str,
    /// Architecture family.
    pub kind: AcceleratorKind,
    /// Hardware cores (GPU: CUDA cores; multicore: physical cores).
    pub cores: u32,
    /// Hardware thread contexts per core (Phi: 4; CPU: 2 with HT; GPU: the
    /// number of resident thread contexts each core can juggle).
    pub threads_per_core: u32,
    /// Core frequency in GHz.
    pub freq_ghz: f64,
    /// Last-level cache size in MiB.
    pub cache_mb: f64,
    /// Whether the cache hierarchy is hardware-coherent.
    pub coherent: bool,
    /// Default main-memory capacity in GiB (sweepable, Fig. 16).
    pub mem_gb: f64,
    /// Memory bandwidth in GB/s.
    pub mem_bw_gbs: f64,
    /// Single-precision throughput in TFLOP/s.
    pub sp_tflops: f64,
    /// Double-precision throughput in TFLOP/s.
    pub dp_tflops: f64,
    /// Board/package power in watts (for the energy model).
    pub tdp_w: f64,
    /// SIMD lanes per core (multicores; GPUs express this through warps).
    pub simd_width: u32,
    /// Fraction of peak bandwidth achievable on graph workloads (GPUs
    /// coalesce streaming CSR scans well; the Phi's ring interconnect and
    /// in-order cores leave much of the 352 GB/s unrealized).
    pub eff_bw_frac: f64,
    /// Average DRAM miss latency in nanoseconds.
    pub mem_latency_ns: f64,
    /// Outstanding misses per core (memory-level parallelism, incl.
    /// prefetching). GPUs hide latency through warp switching instead, so
    /// this only throttles the multicore stall path.
    pub mlp_per_core: f64,
    /// Bytes of DRAM traffic per missed operation (GPUs fetch 32 B coalesced
    /// segments shared across a warp; CPUs pull 64 B lines).
    pub bytes_per_miss_op: f64,
    /// Sustained instructions per cycle per lane on irregular graph code
    /// (in-order Phi cores stall often; OoO CPU cores extract ILP).
    pub ipc: f64,
}

impl AcceleratorSpec {
    /// NVidia GTX-750Ti — the paper's weaker GPU (Table II).
    pub fn gtx_750ti() -> Self {
        AcceleratorSpec {
            name: "GTX-750Ti",
            kind: AcceleratorKind::Gpu,
            cores: 640,
            threads_per_core: 16,
            freq_ghz: 1.3,
            cache_mb: 2.0,
            coherent: false,
            mem_gb: 2.0,
            mem_bw_gbs: 86.0,
            sp_tflops: 1.3,
            dp_tflops: 0.04,
            tdp_w: 60.0,
            simd_width: 1,
            eff_bw_frac: 0.85,
            mem_latency_ns: 350.0,
            mlp_per_core: 16.0,
            bytes_per_miss_op: 4.0,
            ipc: 0.9,
        }
    }

    /// NVidia GTX-970 — the stronger GPU (§VI-A: 1664 cores, 3.5 SP TFLOPs,
    /// 0.1 DP TFLOPs, 4 GB, 1.7 GHz per §VII-D).
    pub fn gtx_970() -> Self {
        AcceleratorSpec {
            name: "GTX-970",
            kind: AcceleratorKind::Gpu,
            cores: 1664,
            threads_per_core: 16,
            freq_ghz: 1.7,
            cache_mb: 3.5,
            coherent: false,
            mem_gb: 4.0,
            mem_bw_gbs: 224.0,
            sp_tflops: 3.5,
            dp_tflops: 0.1,
            tdp_w: 145.0,
            simd_width: 1,
            eff_bw_frac: 0.85,
            mem_latency_ns: 330.0,
            mlp_per_core: 16.0,
            bytes_per_miss_op: 4.0,
            ipc: 0.9,
        }
    }

    /// Intel Xeon Phi 7120P — the paper's manycore (Table II). The paper pins
    /// its memory to the smallest in the pair (2 GB) for the primary setup;
    /// the spec carries the full 16 GB and experiments clamp it.
    pub fn xeon_phi_7120p() -> Self {
        AcceleratorSpec {
            name: "XeonPhi-7120P",
            kind: AcceleratorKind::Manycore,
            cores: 61,
            threads_per_core: 4,
            freq_ghz: 1.238,
            cache_mb: 32.0,
            coherent: true,
            mem_gb: 16.0,
            mem_bw_gbs: 352.0,
            sp_tflops: 2.4,
            dp_tflops: 1.2,
            tdp_w: 300.0,
            simd_width: 16,
            eff_bw_frac: 0.45,
            mem_latency_ns: 250.0,
            mlp_per_core: 8.0,
            bytes_per_miss_op: 8.0,
            ipc: 0.5,
        }
    }

    /// 40-core Intel Xeon E5-2650 v3 setup (§VI-A: 10 hyper-threaded cores ×
    /// 4 sockets at 2.3 GHz, 1 TB DDR4; §VII-D compares it at 1–16 GB).
    pub fn cpu_40core() -> Self {
        AcceleratorSpec {
            name: "CPU-40-Core",
            kind: AcceleratorKind::Cpu,
            cores: 40,
            threads_per_core: 2,
            freq_ghz: 2.3,
            cache_mb: 100.0,
            coherent: true,
            mem_gb: 1024.0,
            mem_bw_gbs: 272.0,
            sp_tflops: 1.5,
            dp_tflops: 0.75,
            tdp_w: 420.0,
            simd_width: 8,
            eff_bw_frac: 0.65,
            mem_latency_ns: 90.0,
            mlp_per_core: 10.0,
            bytes_per_miss_op: 8.0,
            ipc: 1.6,
        }
    }

    /// Total hardware thread contexts.
    pub fn hw_threads(&self) -> u32 {
        self.cores * self.threads_per_core
    }

    /// Whether this accelerator plays the "GPU" role in a pair.
    pub fn is_gpu(&self) -> bool {
        self.kind == AcceleratorKind::Gpu
    }

    /// Deployment maxima for translating normalized `M` values into concrete
    /// thread counts etc. (see [`DeployLimits`]).
    pub fn deploy_limits(&self) -> DeployLimits {
        DeployLimits {
            max_cores: self.cores,
            max_threads_per_core: self.threads_per_core,
            max_simd_width: self.simd_width.max(1),
            max_global_threads: self.hw_threads(),
            max_local_threads: match self.kind {
                AcceleratorKind::Gpu => 256,
                _ => self.threads_per_core.max(1),
            },
            max_blocktime_ms: 1000,
        }
    }

    /// Idle power draw (watts), estimated as 30% of TDP.
    pub fn idle_w(&self) -> f64 {
        self.tdp_w * 0.3
    }

    /// The spec of this accelerator running on a surviving fraction of its
    /// cores ([`FaultState::Degraded`](crate::fault::FaultState)): compute
    /// resources scale down, the memory system stays intact.
    pub fn degraded(&self, surviving_fraction: f64) -> AcceleratorSpec {
        let f = surviving_fraction.clamp(1e-3, 1.0);
        let mut spec = self.clone();
        spec.cores = ((self.cores as f64 * f).round() as u32).max(1);
        spec.sp_tflops = self.sp_tflops * f;
        spec.dp_tflops = (self.dp_tflops * f).max(1e-3);
        spec
    }
}

impl fmt::Display for AcceleratorSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({:?}, {} cores)", self.name, self.kind, self.cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values_for_primary_pair() {
        let gpu = AcceleratorSpec::gtx_750ti();
        assert_eq!(gpu.cores, 640);
        assert_eq!(gpu.cache_mb, 2.0);
        assert!(!gpu.coherent);
        assert_eq!(gpu.mem_bw_gbs, 86.0);
        assert_eq!(gpu.sp_tflops, 1.3);
        assert_eq!(gpu.dp_tflops, 0.04);

        let phi = AcceleratorSpec::xeon_phi_7120p();
        assert_eq!(phi.cores, 61);
        assert_eq!(phi.hw_threads(), 244); // "61, 244" in Table II
        assert_eq!(phi.cache_mb, 32.0);
        assert!(phi.coherent);
        assert_eq!(phi.mem_bw_gbs, 352.0);
        assert_eq!(phi.dp_tflops, 1.2);
    }

    #[test]
    fn gtx970_is_stronger_than_750ti() {
        let weak = AcceleratorSpec::gtx_750ti();
        let strong = AcceleratorSpec::gtx_970();
        assert!(strong.cores > weak.cores);
        assert!(strong.sp_tflops > weak.sp_tflops);
        assert!(strong.cache_mb > weak.cache_mb);
        assert_eq!(strong.cores, 1664);
    }

    #[test]
    fn cpu_runs_at_higher_frequency_than_gpus() {
        // §VII-D: "the CPU runs at a higher frequency (2.3 GHz vs GTX750's
        // 1.3 GHz and GTX-970's 1.7 GHz)".
        let cpu = AcceleratorSpec::cpu_40core();
        assert!(cpu.freq_ghz > AcceleratorSpec::gtx_750ti().freq_ghz);
        assert!(cpu.freq_ghz > AcceleratorSpec::gtx_970().freq_ghz);
    }

    #[test]
    fn deploy_limits_reflect_hardware() {
        let phi = AcceleratorSpec::xeon_phi_7120p();
        let lim = phi.deploy_limits();
        assert_eq!(lim.max_cores, 61);
        assert_eq!(lim.max_threads_per_core, 4);
        assert_eq!(lim.max_simd_width, 16);
        let gpu = AcceleratorSpec::gtx_750ti().deploy_limits();
        assert_eq!(gpu.max_local_threads, 256);
        assert_eq!(gpu.max_global_threads, 640 * 16);
    }

    #[test]
    fn idle_power_is_fraction_of_tdp() {
        let s = AcceleratorSpec::gtx_750ti();
        assert!(s.idle_w() < s.tdp_w);
        assert!(s.idle_w() > 0.0);
    }

    #[test]
    fn display_mentions_name() {
        assert!(AcceleratorSpec::gtx_970().to_string().contains("GTX-970"));
    }
}
