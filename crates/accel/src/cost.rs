//! Analytical accelerator cost model.
//!
//! This is the hardware substitution at the centre of the reproduction
//! (DESIGN.md §2): instead of executing OpenCL/OpenMP kernels on physical
//! GTX/Xeon-Phi silicon, a first-order analytical model maps
//! `(B, I, M, spec) -> (time, energy, utilization)`. Every term is one the
//! paper names as a performance mechanism:
//!
//! * **compute** — effective parallel lanes from the deployed thread
//!   configuration, degraded by divergence (B4/B5 phases, degree skew) on
//!   GPUs and boosted by SIMD on multicores when data is FP and dense;
//! * **memory** — CSR traffic scaled by cache fit (Phi's 32 MB vs the GPU's
//!   2 MB), indirect addressing (B8) and shared-data movement (B9/B10), with
//!   a coherence penalty for read-write sharing on incoherent GPUs;
//! * **synchronization** — atomics (B12) and barriers (B13 × iterations),
//!   with kernel-launch overhead per GPU round;
//! * **configuration fit** — schedule/chunk vs degree skew, thread placement
//!   vs `Avg.Deg.Dia`, affinity vs B10, blocktime vs contention;
//! * **streaming** — chunk refills when the graph exceeds device memory
//!   (Fig. 16).
//!
//! Constants live in [`Constants`] and were calibrated so the winner matrix
//! of Fig. 11 and the crossovers of Figs. 14–16 hold (see EXPERIMENTS.md).

use crate::spec::AcceleratorSpec;
use heteromap_graph::GraphStats;
use heteromap_model::workload::IterationModel;
use heteromap_model::{BVector, MConfig, OmpSchedule, Workload};
use serde::{Deserialize, Serialize};

/// Everything the cost model needs to know about one benchmark-input
/// combination.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadContext {
    /// Benchmark variables.
    pub b: BVector,
    /// Raw input statistics (unnormalized — the model works in real units).
    pub stats: GraphStats,
    /// Outer-iteration scaling.
    pub iteration_model: IterationModel,
    /// Relative per-edge work.
    pub work_per_edge: f64,
}

impl WorkloadContext {
    /// Context for a named paper workload on `stats`.
    pub fn for_workload(workload: Workload, stats: GraphStats) -> Self {
        WorkloadContext {
            b: workload.b_vector(),
            stats,
            iteration_model: workload.iteration_model(),
            work_per_edge: workload.work_per_edge(),
        }
    }

    /// Context for a synthetic benchmark (training-data generation).
    pub fn synthetic(
        b: BVector,
        stats: GraphStats,
        iteration_model: IterationModel,
        work_per_edge: f64,
    ) -> Self {
        WorkloadContext {
            b,
            stats,
            iteration_model,
            work_per_edge,
        }
    }

    /// Resolved outer-iteration count (≥ 1).
    pub fn iterations(&self) -> f64 {
        match self.iteration_model {
            IterationModel::DiameterBound { factor } => {
                (factor * self.stats.diameter as f64).max(1.0)
            }
            IterationModel::Fixed(n) => n.max(1) as f64,
            IterationModel::Single => 1.0,
        }
    }
}

/// Decomposition of a simulated completion time into the model's terms
/// (diagnostics; milliseconds, pre-noise).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimBreakdown {
    /// Compute-path time (lanes x frequency x penalties).
    pub compute_ms: f64,
    /// Memory-path time (bandwidth or stall bound).
    pub memory_ms: f64,
    /// Atomic/synchronization serialization time.
    pub sync_ms: f64,
    /// Per-round overhead (GPU kernel launches / multicore barriers).
    pub rounds_ms: f64,
    /// Out-of-memory chunking overhead.
    pub chunking_ms: f64,
    /// Effective parallel lanes the configuration achieved.
    pub lanes: f64,
    /// Cache hit rate the working set achieved.
    pub cache_hit: f64,
}

/// Simulated outcome of one deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Completion time in milliseconds (on-chip processing only, like the
    /// paper: "only the time spent in processing the graph on-chip").
    pub time_ms: f64,
    /// Energy in joules over the completion time.
    pub energy_j: f64,
    /// Average core utilization in `[0, 1]` (Fig. 13's metric).
    pub utilization: f64,
}

/// Tunable constants of the analytical model. Grouped here so the
/// calibration bench can perturb them (`ablation` targets) and so every
/// magic number is named.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Constants {
    /// Fraction of edges re-touched per extra outer iteration.
    pub edge_revisit_per_iter: f64,
    /// Vertex-loop bookkeeping ops per vertex per iteration.
    pub vertex_op_cost: f64,
    /// GPU kernel launch + device sync cost per barrier event (µs).
    pub gpu_launch_us: f64,
    /// Multicore barrier cost at 1 thread (µs); grows with √threads.
    pub mc_barrier_us: f64,
    /// GPU divergence penalty weight on push-pop phases (B4).
    pub gpu_divergence_pushpop: f64,
    /// GPU divergence penalty weight on reduction phases (B5).
    pub gpu_divergence_reduction: f64,
    /// GPU penalty weight for indirect addressing (B8).
    pub gpu_indirect: f64,
    /// GPU memory-path penalty for read-write shared data (no coherence).
    pub gpu_rw_shared: f64,
    /// Multicore memory-path penalty weights for B8/B10 (caches absorb most).
    pub mc_indirect: f64,
    /// Cycles per atomic op on a coherent cache hierarchy.
    pub mc_atomic_cycles: f64,
    /// Cycles per atomic op on a GPU (remote/serialized).
    pub gpu_atomic_cycles: f64,
    /// Fraction of edge work that triggers atomics (share of B12 data).
    pub atomic_fraction: f64,
    /// Fraction of a workload's FP data (B6) that needs double precision.
    pub dp_share: f64,
    /// Thread count at which GPU atomic contention halves throughput.
    pub gpu_atomic_contention_threads: f64,
    /// Baseline fraction of misses that are random (unprefetchable) even
    /// without indirect addressing; B8 raises it towards 1.
    pub random_miss_base: f64,
    /// Weight of the GPU over-threading memory-stress term.
    pub gpu_stress: f64,
    /// GPU memory-path inflation per unit of divergent phases (B4+B5) —
    /// divergent warps uncoalesce.
    pub gpu_uncoalesce_divergent: f64,
    /// GPU memory-path inflation per unit of indirect addressing (B8).
    pub gpu_uncoalesce_indirect: f64,
    /// GPU memory-path inflation from degree skew squared — one monster
    /// vertex (Twitter's 3M-degree hubs) serializes its warp's accesses.
    pub gpu_uncoalesce_skew: f64,
    /// Per-chunk overhead (ms) when streaming an out-of-memory graph.
    pub chunk_overhead_ms: f64,
    /// Busy-time inflation per doubling of chunk count (cut-edge revisits).
    pub chunk_cut_penalty: f64,
    /// Cache-line sharing factor for prefetchable streaming misses.
    pub line_share: f64,
    /// SMT yield: marginal throughput of each extra hardware thread/core.
    pub smt_yield: f64,
    /// Sub-linear thread-count scaling exponent: deploying a fraction `f`
    /// of a machine's cores/threads yields `f^gamma` of its peak (memory
    /// systems saturate well before full concurrency — the reason the
    /// paper's Fig. 7 finds 7 of 61 Phi cores within ~15% of optimal).
    pub thread_scaling_gamma: f64,
    /// GPU threads per core needed for full latency hiding.
    pub gpu_occupancy_threads: f64,
    /// Weight of the locality-need multiplier from B8/B10 on working set.
    pub locality_need_indirect: f64,
    /// Scale on the multicore's sustained IPC (calibration lever for how
    /// badly the in-order Phi cores fare on irregular traversals).
    pub mc_ipc_scale: f64,
    /// Scale on the multicore's memory-level parallelism.
    pub mc_mlp_scale: f64,
    /// Strength of the multicore SIMD boost on dense FP inner loops.
    pub simd_boost_weight: f64,
    /// Multicore memory-latency inflation per doubling of the
    /// footprint-to-cache ratio (TLB pressure, page-table walks, NUMA/ring
    /// hops on very large graphs) — the mechanism behind the paper's
    /// "Frnd/Kron perform better on the GPU because they are large".
    pub mc_large_graph: f64,
    /// Penalty weight for schedule/skew mismatch.
    pub schedule_mismatch: f64,
    /// Penalty weight for placement mismatch.
    pub placement_mismatch: f64,
    /// Penalty weight for affinity mismatch.
    pub affinity_mismatch: f64,
    /// Penalty weight for blocktime mismatch.
    pub blocktime_mismatch: f64,
    /// Multiplicative noise amplitude (deterministic, hash-seeded).
    pub noise_amp: f64,
}

impl Constants {
    /// Constants calibrated against the paper's Figs. 11–16 (EXPERIMENTS.md).
    pub fn paper() -> Self {
        Constants {
            edge_revisit_per_iter: 0.111,
            vertex_op_cost: 2.0,
            gpu_launch_us: 0.93,
            mc_barrier_us: 2.58,
            gpu_divergence_pushpop: 0.8,
            gpu_divergence_reduction: 6.0,
            gpu_indirect: 1.72,
            gpu_rw_shared: 0.22,
            mc_indirect: 0.085,
            mc_atomic_cycles: 1.0,
            gpu_atomic_cycles: 80.0,
            atomic_fraction: 0.143,
            dp_share: 1.0,
            gpu_atomic_contention_threads: 307.0,
            random_miss_base: 0.9,
            gpu_stress: 8.0e-6,
            gpu_uncoalesce_divergent: 0.195,
            gpu_uncoalesce_indirect: 0.43,
            gpu_uncoalesce_skew: 0.3,
            chunk_overhead_ms: 0.01,
            chunk_cut_penalty: 0.5,
            line_share: 2.0,
            smt_yield: 1.0,
            thread_scaling_gamma: 0.25,
            gpu_occupancy_threads: 4.52,
            locality_need_indirect: 1.5,
            mc_ipc_scale: 2.0,
            mc_mlp_scale: 2.0,
            simd_boost_weight: 5.2,
            mc_large_graph: 6.0,
            schedule_mismatch: 0.30,
            placement_mismatch: 0.25,
            affinity_mismatch: 0.15,
            blocktime_mismatch: 0.10,
            noise_amp: 0.02,
        }
    }
}

impl Default for Constants {
    fn default() -> Self {
        Constants::paper()
    }
}

/// The analytical cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct CostModel {
    constants: Constants,
}

impl CostModel {
    /// Model with the paper-calibrated constants.
    pub fn paper() -> Self {
        CostModel {
            constants: Constants::paper(),
        }
    }

    /// Model with custom constants (ablation studies).
    pub fn with_constants(constants: Constants) -> Self {
        CostModel { constants }
    }

    /// The active constants.
    pub fn constants(&self) -> &Constants {
        &self.constants
    }

    /// Simulates deploying `ctx` on `spec` with machine configuration `cfg`,
    /// using the spec's default memory capacity.
    ///
    /// Note: `cfg.accelerator` selects which machine in a *pair* runs the
    /// workload; this method evaluates `spec` regardless, so callers decide
    /// the mapping (see `MultiAcceleratorSystem`).
    pub fn evaluate(
        &self,
        spec: &AcceleratorSpec,
        ctx: &WorkloadContext,
        cfg: &MConfig,
    ) -> SimReport {
        self.evaluate_with_memory(spec, ctx, cfg, spec.mem_gb)
    }

    /// Simulates with an explicit memory capacity (Fig. 16 sweeps).
    pub fn evaluate_with_memory(
        &self,
        spec: &AcceleratorSpec,
        ctx: &WorkloadContext,
        cfg: &MConfig,
        mem_gb: f64,
    ) -> SimReport {
        self.evaluate_detailed(spec, ctx, cfg, mem_gb).0
    }

    /// Like [`CostModel::evaluate_with_memory`], but also returns the time
    /// decomposition — which architectural term bound the deployment.
    pub fn evaluate_detailed(
        &self,
        spec: &AcceleratorSpec,
        ctx: &WorkloadContext,
        cfg: &MConfig,
        mem_gb: f64,
    ) -> (SimReport, SimBreakdown) {
        let k = &self.constants;
        let b = ctx.b.as_array();
        let (b1, b2, b3, b4, b5) = (b[0], b[1], b[2], b[3], b[4]);
        let (b6, b7, b8, b9, b10) = (b[5], b[6], b[7], b[8], b[9]);
        let (_b11, b12, b13) = (b[10], b[11], b[12]);

        let v = (ctx.stats.vertices as f64).max(1.0);
        let e = (ctx.stats.edges as f64).max(1.0);
        let avg_deg = e / v;
        let iterations = ctx.iterations();
        // Degree skew in [0, 1]: how far the max degree sits above the mean.
        let skew =
            (((ctx.stats.max_degree as f64 + 1.0) / (avg_deg + 1.0)).log2() / 14.0).clamp(0.0, 1.0);

        // ----- total work ---------------------------------------------------
        let edge_revisit = 1.0 + k.edge_revisit_per_iter * (iterations - 1.0);
        let edge_ops = e * ctx.work_per_edge * edge_revisit;
        let vertex_ops = v * k.vertex_op_cost * iterations;
        let compute_ops = edge_ops + vertex_ops;

        // ----- effective lanes ----------------------------------------------
        let limits = spec.deploy_limits();
        let is_gpu = spec.is_gpu();
        // Available algorithmic parallelism: a traversal's per-round frontier
        // (V / iterations) fans out over its edges.
        let frontier = (v / iterations).max(1.0);
        let par_limit = frontier * (1.0 + avg_deg / 4.0);

        let (lanes, deployed_threads, occupancy) = if is_gpu {
            let t = limits.global_threads(cfg) as f64;
            let local = limits.local_threads(cfg) as f64;
            // Latency hiding needs several resident threads per core;
            // occupancy saturates sub-linearly (memory-bound kernels reach
            // near-peak well below full residency).
            let occ = (t / (spec.cores as f64 * k.gpu_occupancy_threads))
                .clamp(0.0, 1.0)
                .powf(k.thread_scaling_gamma)
                .clamp(0.05, 1.0);
            // Local threading should match edge density: too many local
            // threads on a sparse graph waste issue slots (Fig. 1's interior
            // optimum on CAGE-14), too few leave edge parallelism unused.
            let local_norm = local / limits.max_local_threads as f64;
            let density_target = (avg_deg / 32.0).clamp(0.05, 1.0);
            let local_eff = 1.0 - (local_norm - density_target).abs() * 0.45;
            let raw = spec.cores as f64 * occ * local_eff;
            (raw.min(par_limit), t, occ)
        } else {
            // Sub-linear core scaling: a fraction f of the cores delivers
            // f^gamma of peak throughput and memory-level parallelism.
            let c_raw = limits.cores(cfg) as f64;
            let c = spec.cores as f64 * (c_raw / spec.cores as f64).powf(k.thread_scaling_gamma);
            let tpc = limits.threads_per_core(cfg) as f64;
            let t = c_raw * tpc;
            // SMT threads yield diminishing returns.
            let smt = 1.0 + (tpc - 1.0) * k.smt_yield;
            // SIMD helps only FP-dense, non-indirect inner loops (§III-C).
            let simd_w = limits.simd_width(cfg) as f64;
            let simd_usable = b6 * (1.0 - b8) * (avg_deg / 16.0).clamp(0.0, 1.0);
            let simd_boost = 1.0
                + (simd_w - 1.0) / spec.simd_width.max(1) as f64
                    * simd_usable
                    * cfg.simd
                    * k.simd_boost_weight;
            let raw = c * smt * simd_boost;
            (
                raw.min(par_limit),
                t,
                (t / spec.hw_threads() as f64).min(1.0),
            )
        };
        let lanes = lanes.max(1.0);

        // ----- compute time -------------------------------------------------
        // FP penalty from the SP/DP imbalance: a `dp_share` fraction of the
        // FP work (B6) runs at the double-precision rate, which on the GTX
        // GPUs is ~1/32 of single precision (Table II).
        let dp_slowdown = (spec.sp_tflops / spec.dp_tflops.max(1e-3) - 1.0).clamp(0.0, 40.0);
        let fp_penalty = 1.0 + b6 * k.dp_share * dp_slowdown;
        // Divergence: serial-leaning phases and skewed degrees break warps.
        let divergence = if is_gpu {
            1.0 + k.gpu_divergence_pushpop * b4
                + k.gpu_divergence_reduction * b5
                + 1.2 * skew * (1.0 - cfg_dynamic(cfg))
        } else {
            1.0 + 0.25 * b4
        };
        // Indirect addressing is costly without big caches (§III-C B7/B8).
        let addressing = if is_gpu {
            1.0 + k.gpu_indirect * b8 + 0.15 * (1.0 - b7)
        } else {
            1.0 + k.mc_indirect * b8
        };
        // Configuration-fit multipliers (multicore knobs).
        let fit = self.config_fit(spec, ctx, cfg, skew);

        let ipc = if is_gpu {
            spec.ipc
        } else {
            spec.ipc * k.mc_ipc_scale
        };
        let ops_per_sec = lanes * spec.freq_ghz * ipc * 1e9;
        let compute_s = compute_ops * fp_penalty * divergence * addressing * fit / ops_per_sec;

        // ----- memory time ----------------------------------------------------
        let footprint = ctx.stats.footprint_bytes() as f64;
        let cache_bytes = spec.cache_mb * 1024.0 * 1024.0;
        // On the GPU, sharing and indirect access inflate the hot working set
        // (no coherence to keep shared lines resident); coherent multicores
        // keep read-write shared structures cached — their caches only
        // struggle with truly indirect metadata (§III-C).
        let locality_need = if is_gpu {
            1.0 + k.locality_need_indirect * b8 + 1.0 * b10 + 0.5 * b9
        } else {
            (1.0 + 0.5 * b8 - 0.4 * b9).max(0.6)
        };
        let hit = (cache_bytes / (footprint * locality_need)).clamp(0.02, 0.98);
        let miss_ops = compute_ops * (1.0 - hit);
        let rw_penalty = if is_gpu {
            // No coherence: read-write sharing bounces through DRAM.
            1.0 + k.gpu_rw_shared * b10
        } else {
            1.0 + 0.1 * b10
        };
        let memory_s = if is_gpu {
            // Bandwidth-bound: warp switching hides latency, but divergent
            // phases and indirect gathers break coalescing, and
            // over-threading stresses the small cache/memory system.
            let uncoalesce = 1.0
                + k.gpu_uncoalesce_divergent * (0.25 * b4 + b5)
                + k.gpu_uncoalesce_indirect * b8
                + k.gpu_uncoalesce_skew * skew * skew;
            let stress = 1.0
                + (deployed_threads / spec.hw_threads() as f64).powi(2)
                    * (footprint / (cache_bytes * 8.0)).clamp(0.0, 1.0)
                    * k.gpu_stress;
            let traffic = miss_ops * spec.bytes_per_miss_op * rw_penalty * uncoalesce;
            let low_occ_leak = 1.0 + (1.0 - occupancy) * 0.5;
            traffic * stress * low_occ_leak / (spec.mem_bw_gbs * spec.eff_bw_frac * 1e9)
        } else {
            // Two paths: streamed misses ride the prefetchers (bandwidth),
            // random misses stall the in-order/OoO cores (latency × MLP).
            let random_frac =
                (k.random_miss_base + (1.0 - k.random_miss_base) * b8).clamp(0.0, 1.0);
            let traffic = miss_ops * spec.bytes_per_miss_op * rw_penalty;
            let bw_s = traffic / (spec.mem_bw_gbs * spec.eff_bw_frac * 1e9);
            let active_cores = spec.cores as f64
                * (limits.cores(cfg) as f64 / spec.cores as f64).powf(k.thread_scaling_gamma);
            let mlp = spec.mlp_per_core
                * k.mc_mlp_scale
                * (1.0 + (limits.threads_per_core(cfg) as f64 - 1.0) * 0.5);
            let random_lines = miss_ops * random_frac;
            let streamed_lines = miss_ops * (1.0 - random_frac) / k.line_share;
            let tlb =
                1.0 + k.mc_large_graph * (footprint / (cache_bytes * 32.0)).log2().max(0.0) / 8.0;
            let stall_s = (random_lines + streamed_lines) * spec.mem_latency_ns * tlb * 1e-9
                / (active_cores * mlp).max(1.0);
            bw_s.max(stall_s)
        };

        // ----- synchronization time ------------------------------------------
        let barriers_per_iter = b13 * 10.0;
        let atomic_ops = edge_ops * b12 * k.atomic_fraction;
        let atomic_cycles = if is_gpu {
            k.gpu_atomic_cycles
        } else {
            k.mc_atomic_cycles
        };
        // Atomics serialize under contention: effective atomic parallelism
        // shrinks as contention (B12) and thread count grow.
        let contention_scale = if is_gpu {
            k.gpu_atomic_contention_threads
        } else {
            1024.0
        };
        let atomic_lanes = (lanes / (1.0 + b12 * deployed_threads / contention_scale)).max(1.0);
        let sync_s = atomic_ops * atomic_cycles / (atomic_lanes * spec.freq_ghz * 1e9);
        let round_overhead_s = if is_gpu {
            iterations * (barriers_per_iter + 1.0) * k.gpu_launch_us * 1e-6
        } else {
            let bt_relief = 1.0 - 0.3 * (1.0 - (cfg.blocktime - ctx.b.contention()).abs());
            iterations
                * (barriers_per_iter + 0.5)
                * k.mc_barrier_us
                * deployed_threads.powf(0.25)
                * bt_relief.max(0.4)
                * 1e-6
        };

        // ----- streaming (graph larger than device memory) --------------------
        // The paper excludes host-to-device transfer time from completion
        // time (§VI-C) but still processes oversized graphs in Stinger-style
        // chunks; chunking costs per-chunk setup rounds and cut-edge
        // revisits, so small memories hurt (Fig. 16) without modelling PCIe.
        let mem_bytes = mem_gb * 1e9;
        let (chunk_mult, chunk_s) = if footprint > mem_bytes {
            let chunks = (footprint / mem_bytes).ceil();
            let passes = match ctx.iteration_model {
                IterationModel::Single => 1.0,
                _ => (iterations * 0.25).max(1.0),
            };
            (
                1.0 + k.chunk_cut_penalty * chunks.log2().max(0.0),
                chunks * passes * k.chunk_overhead_ms * 1e-3,
            )
        } else {
            (1.0, 0.0)
        };

        // ----- assemble --------------------------------------------------------
        // Compute and memory overlap; sync and launch rounds do not.
        let busy_s = compute_s.max(memory_s) * chunk_mult;
        let total_s = busy_s + sync_s + round_overhead_s + chunk_s;
        let noise = 1.0 + k.noise_amp * hash_pm1(spec, ctx, cfg);
        let time_ms = total_s * 1e3 * noise;

        // Utilization: share of time cores do useful work, scaled by how
        // much of the machine is occupied. GPUs hide memory latency through
        // thread switching (paper §VII-C), multicores stall.
        let latency_hiding = if is_gpu { 0.6 * occupancy } else { 0.0 };
        let busy_frac = (compute_s + latency_hiding * memory_s).min(busy_s) / total_s;
        let machine_frac = if is_gpu {
            occupancy
        } else {
            deployed_threads / spec.hw_threads() as f64
        };
        let utilization = (busy_frac * machine_frac.clamp(0.05, 1.0)).clamp(0.01, 1.0);

        // Energy: idle + dynamic power over the run.
        let power_w = spec.idle_w() + (spec.tdp_w - spec.idle_w()) * utilization;
        let energy_j = power_w * total_s * noise;

        // Silence unused-variable warnings for phase vars folded into other
        // terms already (b1..b3 raise parallelism implicitly through the
        // absence of b4/b5 penalties).
        let _ = (b1, b2, b3);

        (
            SimReport {
                time_ms,
                energy_j,
                utilization,
            },
            SimBreakdown {
                compute_ms: compute_s * 1e3,
                memory_ms: memory_s * 1e3,
                sync_ms: sync_s * 1e3,
                rounds_ms: round_overhead_s * 1e3,
                chunking_ms: chunk_s * 1e3,
                lanes,
                cache_hit: hit,
            },
        )
    }

    /// Multiplier (≥ 1) capturing how well the second-order knobs fit the
    /// workload: OpenMP schedule vs skew, placement vs `Avg.Deg.Dia`,
    /// affinity vs read-write sharing, nested parallelism for dense inner
    /// loops.
    fn config_fit(
        &self,
        spec: &AcceleratorSpec,
        ctx: &WorkloadContext,
        cfg: &MConfig,
        skew: f64,
    ) -> f64 {
        let k = &self.constants;
        let b = ctx.b.as_array();
        let (b9, b10) = (b[8], b[9]);
        let avg_deg = ctx.stats.average_degree();
        let mut fit = 1.0;

        // Dynamic scheduling mitigates skewed work (paper §III-A: "dynamic
        // scheduling on read-write shared data"), at a small fixed cost.
        let want_dynamic = (skew * 1.5 + b10 * 0.4).clamp(0.0, 1.0);
        let have_dynamic = cfg_dynamic(cfg);
        fit += k.schedule_mismatch * (want_dynamic - have_dynamic).abs();
        // Chunk size should shrink as skew grows.
        let ideal_chunk = (1.0 - skew).clamp(0.1, 0.9);
        fit += 0.08 * (cfg.chunk_size - ideal_chunk).abs();

        if !spec.is_gpu() {
            // Loose placement for high-diameter graphs (paper's Avg.Deg.Dia
            // reasoning behind M5-7).
            let dia_norm = (ctx.stats.diameter as f64 / 2_622.0).sqrt().clamp(0.0, 1.0);
            let ideal_place = (0.2 + 0.6 * dia_norm + 0.2 * skew).clamp(0.0, 1.0);
            fit += k.placement_mismatch * (cfg.placement() - ideal_place).abs() * (b9 + b10);
            // Pin threads when read-write shared data is high (M8 equation).
            fit += k.affinity_mismatch * (cfg.affinity - b10).abs();
            // Blocktime should track contention (M4 equation).
            fit += k.blocktime_mismatch * (cfg.blocktime - ctx.b.contention()).abs();
            // Nested parallelism pays off on dense inner loops (the DFS-CO
            // exception in §VII-B) and costs a little otherwise.
            if cfg.nested {
                let dense = (avg_deg / 64.0).clamp(0.0, 1.0);
                fit -= 0.25 * dense * cfg.max_active_levels;
                fit += 0.04;
            }
            // Wait policy: active spinning helps at low contention.
            let contention = ctx.b.contention();
            if cfg.wait_policy_active {
                fit += 0.05 * contention;
            } else {
                fit += 0.05 * (1.0 - contention);
            }
            // proc_bind echoes affinity weakly; dynamic team adjustment
            // helps slightly under skew.
            fit += 0.03 * (cfg.proc_bind - b10).abs();
            if cfg.dynamic_adjust {
                fit -= 0.03 * skew;
                fit += 0.015;
            }
            // Spin count: longer active waits pay under high contention.
            fit += 0.04 * (cfg.spin_count - contention).abs();
        }
        fit.max(0.5)
    }
}

/// 1 for dynamic-ish schedules, 0 for static, graded in between.
fn cfg_dynamic(cfg: &MConfig) -> f64 {
    match cfg.schedule {
        OmpSchedule::Static => 0.0,
        OmpSchedule::Dynamic => 1.0,
        OmpSchedule::Guided => 0.8,
        OmpSchedule::Auto => 0.5,
    }
}

/// Deterministic noise in `[-1, 1]` from a hash of the scenario, so repeated
/// evaluations are stable but distinct scenarios de-tie.
fn hash_pm1(spec: &AcceleratorSpec, ctx: &WorkloadContext, cfg: &MConfig) -> f64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    spec.name.hash(&mut h);
    ctx.stats.vertices.hash(&mut h);
    ctx.stats.edges.hash(&mut h);
    ctx.stats.diameter.hash(&mut h);
    for x in ctx.b.as_array() {
        x.to_bits().hash(&mut h);
    }
    for x in cfg.as_array() {
        x.to_bits().hash(&mut h);
    }
    let v = h.finish();
    (v as f64 / u64::MAX as f64) * 2.0 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteromap_graph::datasets::Dataset;

    fn sim(spec: &AcceleratorSpec, w: Workload, d: Dataset, cfg: &MConfig) -> SimReport {
        CostModel::paper().evaluate(spec, &WorkloadContext::for_workload(w, d.stats()), cfg)
    }

    #[test]
    fn reports_are_finite_and_positive() {
        let gpu = AcceleratorSpec::gtx_750ti();
        let phi = AcceleratorSpec::xeon_phi_7120p();
        for w in Workload::all() {
            for d in Dataset::all() {
                for (spec, cfg) in [
                    (&gpu, MConfig::gpu_default()),
                    (&phi, MConfig::multicore_default()),
                ] {
                    let r = sim(spec, w, d, &cfg);
                    assert!(r.time_ms.is_finite() && r.time_ms > 0.0, "{w} {d}");
                    assert!(r.energy_j.is_finite() && r.energy_j > 0.0, "{w} {d}");
                    assert!((0.0..=1.0).contains(&r.utilization), "{w} {d}");
                }
            }
        }
    }

    #[test]
    fn more_edges_cost_more_time() {
        let gpu = AcceleratorSpec::gtx_750ti();
        let cfg = MConfig::gpu_default();
        let small = WorkloadContext::for_workload(
            Workload::PageRank,
            heteromap_graph::GraphStats::from_known(1_000_000, 8_000_000, 100, 10),
        );
        let large = WorkloadContext::for_workload(
            Workload::PageRank,
            heteromap_graph::GraphStats::from_known(1_000_000, 64_000_000, 100, 10),
        );
        let m = CostModel::paper();
        assert!(m.evaluate(&gpu, &large, &cfg).time_ms > m.evaluate(&gpu, &small, &cfg).time_ms);
    }

    #[test]
    fn diameter_hurts_gpu_more_than_multicore() {
        // The paper's Fig. 1 motivation: high-diameter road networks favour
        // the multicore for SSSP-Delta.
        let gpu = AcceleratorSpec::gtx_750ti();
        let phi = AcceleratorSpec::xeon_phi_7120p();
        let g = sim(
            &gpu,
            Workload::SsspDelta,
            Dataset::UsaCal,
            &MConfig::gpu_default(),
        );
        let m = sim(
            &phi,
            Workload::SsspDelta,
            Dataset::UsaCal,
            &MConfig::multicore_default(),
        );
        assert!(
            m.time_ms < g.time_ms,
            "Phi {:.2}ms should beat GPU {:.2}ms on SSSP-Delta/CA",
            m.time_ms,
            g.time_ms
        );
    }

    #[test]
    fn dense_graph_favours_gpu_for_sssp() {
        // Fig. 1's other half: CAGE-14 maps optimally onto the GPU.
        let gpu = AcceleratorSpec::gtx_750ti();
        let phi = AcceleratorSpec::xeon_phi_7120p();
        let g = sim(
            &gpu,
            Workload::SsspBf,
            Dataset::Cage14,
            &MConfig::gpu_default(),
        );
        let m = sim(
            &phi,
            Workload::SsspBf,
            Dataset::Cage14,
            &MConfig::multicore_default(),
        );
        assert!(
            g.time_ms < m.time_ms,
            "GPU {:.2}ms should beat Phi {:.2}ms on SSSP-BF/CAGE",
            g.time_ms,
            m.time_ms
        );
    }

    #[test]
    fn streaming_kicks_in_beyond_memory() {
        let gpu = AcceleratorSpec::gtx_750ti();
        let ctx = WorkloadContext::for_workload(Workload::PageRank, Dataset::Twitter.stats());
        let cfg = MConfig::gpu_default();
        let m = CostModel::paper();
        let small = m.evaluate_with_memory(&gpu, &ctx, &cfg, 1.0);
        let large = m.evaluate_with_memory(&gpu, &ctx, &cfg, 64.0);
        assert!(small.time_ms > large.time_ms);
    }

    #[test]
    fn fp_heavy_workloads_prefer_the_phi() {
        // PageRank needs FP; the Phi's DP capability dwarfs the GTX-750Ti's.
        let gpu = AcceleratorSpec::gtx_750ti();
        let phi = AcceleratorSpec::xeon_phi_7120p();
        let g = sim(
            &gpu,
            Workload::PageRank,
            Dataset::LiveJournal,
            &MConfig::gpu_default(),
        );
        let m = sim(
            &phi,
            Workload::PageRank,
            Dataset::LiveJournal,
            &MConfig::multicore_default(),
        );
        assert!(m.time_ms < g.time_ms);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let gpu = AcceleratorSpec::gtx_750ti();
        let a = sim(
            &gpu,
            Workload::Bfs,
            Dataset::Facebook,
            &MConfig::gpu_default(),
        );
        let b = sim(
            &gpu,
            Workload::Bfs,
            Dataset::Facebook,
            &MConfig::gpu_default(),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn thread_sweep_has_interior_or_monotone_shape() {
        // Sweeping GPU global threads must produce a well-formed curve:
        // strictly positive, finite, and not constant.
        let gpu = AcceleratorSpec::gtx_750ti();
        let ctx = WorkloadContext::for_workload(Workload::SsspBf, Dataset::Cage14.stats());
        let m = CostModel::paper();
        let times: Vec<f64> = (0..=10)
            .map(|i| {
                let mut cfg = MConfig::gpu_default();
                cfg.global_threads = i as f64 / 10.0;
                m.evaluate(&gpu, &ctx, &cfg).time_ms
            })
            .collect();
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0, f64::max);
        assert!(max > min * 1.05, "sweep should vary: {times:?}");
    }

    #[test]
    fn breakdown_terms_compose_the_total() {
        let gpu = AcceleratorSpec::gtx_750ti();
        let ctx = WorkloadContext::for_workload(Workload::SsspDelta, Dataset::UsaCal.stats());
        let cfg = MConfig::gpu_default();
        let m = CostModel::paper();
        let (report, b) = m.evaluate_detailed(&gpu, &ctx, &cfg, 2.0);
        let assembled = b.compute_ms.max(b.memory_ms)
            * (1.0 + 0.0) // chunk multiplier is 1 when the graph fits
            + b.sync_ms
            + b.rounds_ms
            + b.chunking_ms;
        // Noise is +/-2%, so the assembled total matches within 3%.
        assert!(
            (assembled / report.time_ms - 1.0).abs() < 0.03,
            "assembled {assembled} vs {}",
            report.time_ms
        );
        assert!((0.0..=1.0).contains(&b.cache_hit));
        assert!(b.lanes >= 1.0);
    }

    #[test]
    fn phi_dissipates_more_energy_than_gpu_at_equal_time() {
        // "The Xeon Phi has a larger power rating ... hence it dissipates
        // more energy" — with comparable times, Phi energy must be higher.
        let gpu = AcceleratorSpec::gtx_750ti();
        let phi = AcceleratorSpec::xeon_phi_7120p();
        let g = sim(
            &gpu,
            Workload::Bfs,
            Dataset::Facebook,
            &MConfig::gpu_default(),
        );
        let m = sim(
            &phi,
            Workload::Bfs,
            Dataset::Facebook,
            &MConfig::multicore_default(),
        );
        let g_power = g.energy_j / g.time_ms;
        let m_power = m.energy_j / m.time_ms;
        assert!(m_power > g_power);
    }
}
