//! The multi-accelerator system of Fig. 2: one GPU and one multicore with
//! discrete memories, driven by a shared cost model.

use crate::cost::{CostModel, SimReport, WorkloadContext};
use crate::spec::AcceleratorSpec;
use heteromap_model::{Accelerator, MConfig};

/// A GPU + multicore pair with pinned per-accelerator memory sizes.
///
/// The paper pins "the main memory used by both accelerators ... to the
/// smallest one available" for the primary setup, and sweeps sizes in the
/// Fig. 16 sensitivity study — [`MultiAcceleratorSystem::with_memory`]
/// reproduces that.
///
/// # Example
///
/// ```
/// use heteromap_accel::system::MultiAcceleratorSystem;
/// use heteromap_accel::cost::WorkloadContext;
/// use heteromap_graph::datasets::Dataset;
/// use heteromap_model::{MConfig, Workload};
///
/// let sys = MultiAcceleratorSystem::primary();
/// let ctx = WorkloadContext::for_workload(Workload::Bfs, Dataset::Facebook.stats());
/// let report = sys.deploy(&ctx, &MConfig::gpu_default());
/// assert!(report.time_ms > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MultiAcceleratorSystem {
    gpu: AcceleratorSpec,
    multicore: AcceleratorSpec,
    gpu_mem_gb: f64,
    multicore_mem_gb: f64,
    model: CostModel,
}

impl MultiAcceleratorSystem {
    /// The paper's primary setup: GTX-750Ti + Xeon Phi 7120P, both pinned to
    /// the smaller memory (2 GB).
    pub fn primary() -> Self {
        MultiAcceleratorSystem::new(
            AcceleratorSpec::gtx_750ti(),
            AcceleratorSpec::xeon_phi_7120p(),
        )
    }

    /// Builds a system from any GPU/multicore pair; memory is pinned to the
    /// smaller of the two capacities, as in the paper.
    ///
    /// # Panics
    ///
    /// Panics if `gpu` is not a GPU or `multicore` is one.
    pub fn new(gpu: AcceleratorSpec, multicore: AcceleratorSpec) -> Self {
        assert!(gpu.is_gpu(), "first spec must be a GPU");
        assert!(!multicore.is_gpu(), "second spec must be a multicore");
        let pinned = gpu.mem_gb.min(multicore.mem_gb);
        MultiAcceleratorSystem {
            gpu,
            multicore,
            gpu_mem_gb: pinned,
            multicore_mem_gb: pinned,
            model: CostModel::paper(),
        }
    }

    /// All four accelerator combinations evaluated in the paper (§VI-A).
    pub fn paper_pairs() -> [MultiAcceleratorSystem; 4] {
        [
            MultiAcceleratorSystem::new(
                AcceleratorSpec::gtx_750ti(),
                AcceleratorSpec::xeon_phi_7120p(),
            ),
            MultiAcceleratorSystem::new(
                AcceleratorSpec::gtx_970(),
                AcceleratorSpec::xeon_phi_7120p(),
            ),
            MultiAcceleratorSystem::new(
                AcceleratorSpec::gtx_750ti(),
                AcceleratorSpec::cpu_40core(),
            ),
            MultiAcceleratorSystem::new(AcceleratorSpec::gtx_970(), AcceleratorSpec::cpu_40core()),
        ]
    }

    /// Overrides the per-accelerator memory sizes (Fig. 16 sweeps).
    pub fn with_memory(mut self, gpu_mem_gb: f64, multicore_mem_gb: f64) -> Self {
        self.gpu_mem_gb = gpu_mem_gb;
        self.multicore_mem_gb = multicore_mem_gb;
        self
    }

    /// Replaces the cost model (ablations).
    pub fn with_model(mut self, model: CostModel) -> Self {
        self.model = model;
        self
    }

    /// The GPU spec.
    pub fn gpu(&self) -> &AcceleratorSpec {
        &self.gpu
    }

    /// The multicore spec.
    pub fn multicore(&self) -> &AcceleratorSpec {
        &self.multicore
    }

    /// The cost model in use.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// The spec a configuration's `M1` choice selects.
    pub fn spec_for(&self, accelerator: Accelerator) -> &AcceleratorSpec {
        match accelerator {
            Accelerator::Gpu => &self.gpu,
            Accelerator::Multicore => &self.multicore,
        }
    }

    /// Pinned memory capacity for `accelerator` in GiB.
    pub fn memory_gb(&self, accelerator: Accelerator) -> f64 {
        match accelerator {
            Accelerator::Gpu => self.gpu_mem_gb,
            Accelerator::Multicore => self.multicore_mem_gb,
        }
    }

    /// Deploys a benchmark-input combination with machine choices `cfg`: the
    /// `M1` choice routes it to the GPU or the multicore, `M2..M20` configure
    /// concurrency within it.
    pub fn deploy(&self, ctx: &WorkloadContext, cfg: &MConfig) -> SimReport {
        let spec = self.spec_for(cfg.accelerator);
        self.model
            .evaluate_with_memory(spec, ctx, cfg, self.memory_gb(cfg.accelerator))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteromap_graph::datasets::Dataset;
    use heteromap_model::Workload;

    #[test]
    fn primary_pins_memory_to_two_gb() {
        let sys = MultiAcceleratorSystem::primary();
        assert_eq!(sys.memory_gb(Accelerator::Gpu), 2.0);
        assert_eq!(sys.memory_gb(Accelerator::Multicore), 2.0);
    }

    #[test]
    fn deploy_routes_by_m1() {
        let sys = MultiAcceleratorSystem::primary();
        let ctx = WorkloadContext::for_workload(Workload::Bfs, Dataset::Facebook.stats());
        let on_gpu = sys.deploy(&ctx, &MConfig::gpu_default());
        let on_mc = sys.deploy(&ctx, &MConfig::multicore_default());
        assert_ne!(on_gpu.time_ms, on_mc.time_ms);
    }

    #[test]
    fn four_paper_pairs() {
        let pairs = MultiAcceleratorSystem::paper_pairs();
        assert_eq!(pairs.len(), 4);
        assert_eq!(pairs[1].gpu().name, "GTX-970");
        assert_eq!(pairs[2].multicore().name, "CPU-40-Core");
    }

    #[test]
    #[should_panic(expected = "first spec must be a GPU")]
    fn swapped_pair_panics() {
        let _ = MultiAcceleratorSystem::new(
            AcceleratorSpec::xeon_phi_7120p(),
            AcceleratorSpec::gtx_750ti(),
        );
    }

    #[test]
    fn memory_override_changes_results_for_large_graphs() {
        let ctx = WorkloadContext::for_workload(Workload::PageRank, Dataset::Friendster.stats());
        let small = MultiAcceleratorSystem::primary().with_memory(1.0, 1.0);
        let large = MultiAcceleratorSystem::primary().with_memory(16.0, 16.0);
        let cfg = MConfig::multicore_default();
        assert!(small.deploy(&ctx, &cfg).time_ms > large.deploy(&ctx, &cfg).time_ms);
    }
}
