//! The multi-accelerator system of Fig. 2: one GPU and one multicore with
//! discrete memories, driven by a shared cost model.

use crate::cost::{CostModel, SimReport, WorkloadContext};
use crate::fault::{DeployError, FaultPlan, FaultState};
use crate::spec::AcceleratorSpec;
use heteromap_model::{Accelerator, MConfig};

/// A GPU + multicore pair with pinned per-accelerator memory sizes.
///
/// The paper pins "the main memory used by both accelerators ... to the
/// smallest one available" for the primary setup, and sweeps sizes in the
/// Fig. 16 sensitivity study — [`MultiAcceleratorSystem::with_memory`]
/// reproduces that.
///
/// # Example
///
/// ```
/// use heteromap_accel::system::MultiAcceleratorSystem;
/// use heteromap_accel::cost::WorkloadContext;
/// use heteromap_graph::datasets::Dataset;
/// use heteromap_model::{MConfig, Workload};
///
/// let sys = MultiAcceleratorSystem::primary();
/// let ctx = WorkloadContext::for_workload(Workload::Bfs, Dataset::Facebook.stats());
/// let report = sys.deploy(&ctx, &MConfig::gpu_default());
/// assert!(report.time_ms > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MultiAcceleratorSystem {
    gpu: AcceleratorSpec,
    multicore: AcceleratorSpec,
    gpu_mem_gb: f64,
    multicore_mem_gb: f64,
    model: CostModel,
    faults: FaultPlan,
}

impl MultiAcceleratorSystem {
    /// The paper's primary setup: GTX-750Ti + Xeon Phi 7120P, both pinned to
    /// the smaller memory (2 GB).
    pub fn primary() -> Self {
        MultiAcceleratorSystem::new(
            AcceleratorSpec::gtx_750ti(),
            AcceleratorSpec::xeon_phi_7120p(),
        )
    }

    /// Builds a system from any GPU/multicore pair; memory is pinned to the
    /// smaller of the two capacities, as in the paper.
    ///
    /// # Panics
    ///
    /// Panics if `gpu` is not a GPU or `multicore` is one.
    pub fn new(gpu: AcceleratorSpec, multicore: AcceleratorSpec) -> Self {
        assert!(gpu.is_gpu(), "first spec must be a GPU");
        assert!(!multicore.is_gpu(), "second spec must be a multicore");
        let pinned = gpu.mem_gb.min(multicore.mem_gb);
        MultiAcceleratorSystem {
            gpu,
            multicore,
            gpu_mem_gb: pinned,
            multicore_mem_gb: pinned,
            model: CostModel::paper(),
            faults: FaultPlan::healthy(),
        }
    }

    /// All four accelerator combinations evaluated in the paper (§VI-A).
    pub fn paper_pairs() -> [MultiAcceleratorSystem; 4] {
        [
            MultiAcceleratorSystem::new(
                AcceleratorSpec::gtx_750ti(),
                AcceleratorSpec::xeon_phi_7120p(),
            ),
            MultiAcceleratorSystem::new(
                AcceleratorSpec::gtx_970(),
                AcceleratorSpec::xeon_phi_7120p(),
            ),
            MultiAcceleratorSystem::new(
                AcceleratorSpec::gtx_750ti(),
                AcceleratorSpec::cpu_40core(),
            ),
            MultiAcceleratorSystem::new(AcceleratorSpec::gtx_970(), AcceleratorSpec::cpu_40core()),
        ]
    }

    /// Overrides the per-accelerator memory sizes (Fig. 16 sweeps).
    pub fn with_memory(mut self, gpu_mem_gb: f64, multicore_mem_gb: f64) -> Self {
        self.gpu_mem_gb = gpu_mem_gb;
        self.multicore_mem_gb = multicore_mem_gb;
        self
    }

    /// Replaces the cost model (ablations).
    pub fn with_model(mut self, model: CostModel) -> Self {
        self.model = model;
        self
    }

    /// Installs a fault-injection plan (see [`crate::fault`]). The default is
    /// [`FaultPlan::healthy`], under which [`MultiAcceleratorSystem::try_deploy`]
    /// never fails and matches [`MultiAcceleratorSystem::deploy`] bit for bit.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The active fault-injection plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// The GPU spec.
    pub fn gpu(&self) -> &AcceleratorSpec {
        &self.gpu
    }

    /// The multicore spec.
    pub fn multicore(&self) -> &AcceleratorSpec {
        &self.multicore
    }

    /// The cost model in use.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// The spec a configuration's `M1` choice selects.
    pub fn spec_for(&self, accelerator: Accelerator) -> &AcceleratorSpec {
        match accelerator {
            Accelerator::Gpu => &self.gpu,
            Accelerator::Multicore => &self.multicore,
        }
    }

    /// Pinned memory capacity for `accelerator` in GiB.
    pub fn memory_gb(&self, accelerator: Accelerator) -> f64 {
        match accelerator {
            Accelerator::Gpu => self.gpu_mem_gb,
            Accelerator::Multicore => self.multicore_mem_gb,
        }
    }

    /// Deploys a benchmark-input combination with machine choices `cfg`: the
    /// `M1` choice routes it to the GPU or the multicore, `M2..M20` configure
    /// concurrency within it.
    pub fn deploy(&self, ctx: &WorkloadContext, cfg: &MConfig) -> SimReport {
        let spec = self.spec_for(cfg.accelerator);
        self.model
            .evaluate_with_memory(spec, ctx, cfg, self.memory_gb(cfg.accelerator))
    }

    /// Fallible deployment under the installed [`FaultPlan`] — attempt 0.
    ///
    /// With the default healthy plan this is infallible and returns exactly
    /// what [`MultiAcceleratorSystem::deploy`] returns. See
    /// [`MultiAcceleratorSystem::try_deploy_attempt`] for the fault
    /// semantics.
    pub fn try_deploy(
        &self,
        ctx: &WorkloadContext,
        cfg: &MConfig,
    ) -> Result<SimReport, DeployError> {
        self.try_deploy_attempt(ctx, cfg, 0)
    }

    /// Fallible deployment of attempt number `attempt` (zero-based) under
    /// the installed [`FaultPlan`].
    ///
    /// * [`FaultState::Down`] — always [`DeployError::AcceleratorDown`];
    /// * working set over capacity with streaming disabled —
    ///   [`DeployError::OutOfMemory`];
    /// * [`FaultState::Transient`] — the attempt fails with the plan's
    ///   probability, drawn deterministically from `(seed, accelerator,
    ///   context, config, attempt)`; the error carries the simulated time
    ///   wasted before the fault struck, so retry policies can charge it.
    ///   Distinct `attempt` values redraw, so retries can succeed;
    /// * [`FaultState::Degraded`] — the deploy succeeds but runs on the
    ///   surviving core fraction (compute throughput scales down).
    pub fn try_deploy_attempt(
        &self,
        ctx: &WorkloadContext,
        cfg: &MConfig,
        attempt: u32,
    ) -> Result<SimReport, DeployError> {
        let accelerator = cfg.accelerator;
        let state = self.faults.state_for(accelerator);
        if state == FaultState::Down {
            heteromap_obs::event("fault.down", || {
                format!("accelerator={accelerator:?} attempt={attempt} cause=planned_outage")
            });
            if heteromap_obs::metrics_enabled() {
                record_fault_metric("down");
            }
            return Err(DeployError::AcceleratorDown { accelerator });
        }
        let mem_gb = self.memory_gb(accelerator);
        if !self.faults.streaming_enabled {
            let footprint_bytes = ctx.stats.footprint_bytes();
            let capacity_bytes = (mem_gb * 1e9) as u64;
            if footprint_bytes > capacity_bytes {
                heteromap_obs::event("fault.oom", || {
                    format!(
                        "accelerator={accelerator:?} attempt={attempt} \
                         footprint={footprint_bytes} capacity={capacity_bytes} \
                         cause=streaming_disabled"
                    )
                });
                if heteromap_obs::metrics_enabled() {
                    record_fault_metric("oom");
                }
                return Err(DeployError::OutOfMemory {
                    accelerator,
                    footprint_bytes,
                    capacity_bytes,
                });
            }
        }
        let report = match state {
            FaultState::Degraded { .. } => {
                let spec = self
                    .spec_for(accelerator)
                    .degraded(state.surviving_fraction());
                self.model.evaluate_with_memory(&spec, ctx, cfg, mem_gb)
            }
            _ => self
                .model
                .evaluate_with_memory(self.spec_for(accelerator), ctx, cfg, mem_gb),
        };
        if let Some(frac) = self
            .faults
            .transient_failure_at(accelerator, ctx, cfg, attempt)
        {
            heteromap_obs::event("fault.transient", || {
                format!(
                    "accelerator={accelerator:?} attempt={attempt} seed={} \
                     failed_after_ms={:.3} cause=injected",
                    self.faults.seed,
                    frac * report.time_ms
                )
            });
            if heteromap_obs::metrics_enabled() {
                record_fault_metric("transient");
            }
            return Err(DeployError::TransientFailure {
                accelerator,
                attempt,
                failed_after_ms: frac * report.time_ms,
            });
        }
        Ok(report)
    }
}

/// Counts one injected fault episode on the global metrics hub
/// (`accel_faults_total{kind=down|oom|transient}`). Callers gate on
/// [`heteromap_obs::metrics_enabled`] so the fault-free deploy path never
/// reaches this; the handle is resolved once per kind.
#[cold]
fn record_fault_metric(kind: &'static str) {
    use std::sync::{Arc, OnceLock};
    static DOWN: OnceLock<Arc<heteromap_obs::metrics::Counter>> = OnceLock::new();
    static OOM: OnceLock<Arc<heteromap_obs::metrics::Counter>> = OnceLock::new();
    static TRANSIENT: OnceLock<Arc<heteromap_obs::metrics::Counter>> = OnceLock::new();
    let cell = match kind {
        "down" => &DOWN,
        "oom" => &OOM,
        _ => &TRANSIENT,
    };
    cell.get_or_init(|| {
        heteromap_obs::metrics::global().counter(
            "accel_faults_total",
            &[("kind", kind)],
            "Injected fault-plan episodes surfaced to the deploy loop",
        )
    })
    .inc();
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteromap_graph::datasets::Dataset;
    use heteromap_model::Workload;

    #[test]
    fn primary_pins_memory_to_two_gb() {
        let sys = MultiAcceleratorSystem::primary();
        assert_eq!(sys.memory_gb(Accelerator::Gpu), 2.0);
        assert_eq!(sys.memory_gb(Accelerator::Multicore), 2.0);
    }

    #[test]
    fn deploy_routes_by_m1() {
        let sys = MultiAcceleratorSystem::primary();
        let ctx = WorkloadContext::for_workload(Workload::Bfs, Dataset::Facebook.stats());
        let on_gpu = sys.deploy(&ctx, &MConfig::gpu_default());
        let on_mc = sys.deploy(&ctx, &MConfig::multicore_default());
        assert_ne!(on_gpu.time_ms, on_mc.time_ms);
    }

    #[test]
    fn four_paper_pairs() {
        let pairs = MultiAcceleratorSystem::paper_pairs();
        assert_eq!(pairs.len(), 4);
        assert_eq!(pairs[1].gpu().name, "GTX-970");
        assert_eq!(pairs[2].multicore().name, "CPU-40-Core");
    }

    #[test]
    #[should_panic(expected = "first spec must be a GPU")]
    fn swapped_pair_panics() {
        let _ = MultiAcceleratorSystem::new(
            AcceleratorSpec::xeon_phi_7120p(),
            AcceleratorSpec::gtx_750ti(),
        );
    }

    #[test]
    fn try_deploy_healthy_matches_deploy_bit_for_bit() {
        let sys = MultiAcceleratorSystem::primary();
        for w in Workload::all() {
            let ctx = WorkloadContext::for_workload(w, Dataset::LiveJournal.stats());
            for cfg in [MConfig::gpu_default(), MConfig::multicore_default()] {
                let infallible = sys.deploy(&ctx, &cfg);
                let fallible = sys.try_deploy(&ctx, &cfg).expect("healthy never fails");
                assert_eq!(infallible, fallible, "{w}");
            }
        }
    }

    #[test]
    fn try_deploy_down_accelerator_fails() {
        let sys = MultiAcceleratorSystem::primary().with_faults(FaultPlan::gpu_down());
        let ctx = WorkloadContext::for_workload(Workload::Bfs, Dataset::Facebook.stats());
        let err = sys
            .try_deploy(&ctx, &MConfig::gpu_default())
            .expect_err("GPU is down");
        assert_eq!(err.accelerator(), Accelerator::Gpu);
        assert!(!err.is_retryable());
        // The multicore still deploys.
        assert!(sys.try_deploy(&ctx, &MConfig::multicore_default()).is_ok());
    }

    #[test]
    fn try_deploy_oom_without_streaming() {
        let sys =
            MultiAcceleratorSystem::primary().with_faults(FaultPlan::healthy().without_streaming());
        // Friendster far exceeds the pinned 2 GB.
        let ctx = WorkloadContext::for_workload(Workload::PageRank, Dataset::Friendster.stats());
        let err = sys
            .try_deploy(&ctx, &MConfig::gpu_default())
            .expect_err("oversize working set must OOM");
        match err {
            DeployError::OutOfMemory {
                footprint_bytes,
                capacity_bytes,
                ..
            } => assert!(footprint_bytes > capacity_bytes),
            other => panic!("expected OOM, got {other}"),
        }
        // Facebook fits fine.
        let small = WorkloadContext::for_workload(Workload::PageRank, Dataset::Facebook.stats());
        assert!(sys.try_deploy(&small, &MConfig::gpu_default()).is_ok());
    }

    #[test]
    fn transient_failure_charges_partial_time_and_retries_can_succeed() {
        let sys = MultiAcceleratorSystem::primary().with_faults(FaultPlan::transient(0.5, 7));
        let ctx = WorkloadContext::for_workload(Workload::Bfs, Dataset::LiveJournal.stats());
        let cfg = MConfig::gpu_default();
        let clean_ms = MultiAcceleratorSystem::primary().deploy(&ctx, &cfg).time_ms;
        let mut succeeded = false;
        for attempt in 0..32 {
            match sys.try_deploy_attempt(&ctx, &cfg, attempt) {
                Ok(report) => {
                    assert_eq!(report.time_ms, clean_ms, "success matches clean run");
                    succeeded = true;
                    break;
                }
                Err(DeployError::TransientFailure {
                    failed_after_ms, ..
                }) => {
                    assert!(failed_after_ms > 0.0 && failed_after_ms < clean_ms);
                }
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert!(succeeded, "p=0.5 must succeed within 32 attempts");
    }

    #[test]
    fn degraded_accelerator_is_slower_than_healthy() {
        let ctx = WorkloadContext::for_workload(Workload::PageRank, Dataset::LiveJournal.stats());
        let cfg = MConfig::multicore_default();
        let healthy = MultiAcceleratorSystem::primary().deploy(&ctx, &cfg);
        let degraded = MultiAcceleratorSystem::primary()
            .with_faults(FaultPlan::healthy().with_state(
                Accelerator::Multicore,
                FaultState::Degraded {
                    surviving_core_fraction: 0.25,
                },
            ))
            .try_deploy(&ctx, &cfg)
            .expect("degraded deploys succeed");
        assert!(
            degraded.time_ms > healthy.time_ms,
            "quarter of the cores must be slower: {} vs {}",
            degraded.time_ms,
            healthy.time_ms
        );
    }

    #[test]
    fn memory_override_changes_results_for_large_graphs() {
        let ctx = WorkloadContext::for_workload(Workload::PageRank, Dataset::Friendster.stats());
        let small = MultiAcceleratorSystem::primary().with_memory(1.0, 1.0);
        let large = MultiAcceleratorSystem::primary().with_memory(16.0, 16.0);
        let cfg = MConfig::multicore_default();
        assert!(small.deploy(&ctx, &cfg).time_ms > large.deploy(&ctx, &cfg).time_ms);
    }
}
