//! Device instances for fleet-scale clusters.
//!
//! [`crate::system::MultiAcceleratorSystem`] models the paper's Fig. 2 pair:
//! exactly one GPU and one multicore. A fleet scheduler needs *N devices*,
//! each an independent instance of some spec with its own memory, its own
//! health and its own queue. This module supplies that substrate:
//!
//! * [`DeviceInstance`] — one physical device: a spec, a stable id, a memory
//!   capacity, and fallible evaluation under a per-device [`FaultState`]
//!   (reusing PR 1's fault semantics: `Down` rejects, `Degraded` runs on the
//!   surviving silicon via [`AcceleratorSpec::degraded`], `Transient` fails
//!   per attempt with a deterministic draw);
//! * [`Occupancy`] — the device's simulated queue: when it next falls idle,
//!   cumulative busy time, jobs absorbed. Schedulers read the backlog to
//!   estimate completion times and commit work through [`Occupancy::admit`].
//!
//! Everything is deterministic: a transient draw is a pure function of
//! `(seed, device id, job uid, attempt)`, so a simulation replaying the same
//! trace reproduces every outcome bit for bit regardless of thread count.

use crate::cost::{CostModel, SimReport, WorkloadContext};
use crate::fault::{DeployError, FaultState};
use crate::spec::AcceleratorSpec;
use heteromap_model::{Accelerator, MConfig};
use std::hash::{Hash, Hasher};

/// One accelerator instance in a cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceInstance {
    /// Stable cluster-wide identifier (index into the device list).
    pub id: usize,
    /// The hardware this instance is a copy of.
    pub spec: AcceleratorSpec,
    /// Device-local memory capacity in GiB. Defaults to the spec's own
    /// capacity — fleet devices own their memory, unlike the paper pair's
    /// pinned-to-smallest setup.
    pub mem_gb: f64,
}

impl DeviceInstance {
    /// A device instance of `spec` with its native memory capacity.
    pub fn new(id: usize, spec: AcceleratorSpec) -> Self {
        let mem_gb = spec.mem_gb;
        DeviceInstance { id, spec, mem_gb }
    }

    /// The scheduling role this device plays (`M1` routing): GPUs take GPU
    /// configurations, everything else takes multicore configurations.
    pub fn role(&self) -> Accelerator {
        if self.spec.is_gpu() {
            Accelerator::Gpu
        } else {
            Accelerator::Multicore
        }
    }

    /// The spec the device presents under `state`: full silicon when
    /// healthy, the surviving fraction when degraded.
    pub fn effective_spec(&self, state: FaultState) -> AcceleratorSpec {
        match state {
            FaultState::Degraded { .. } => self.spec.degraded(state.surviving_fraction()),
            _ => self.spec.clone(),
        }
    }

    /// Infallible cost-model evaluation under `state` — `None` when the
    /// device is [`FaultState::Down`]. Transient states evaluate like
    /// healthy ones (the flakiness is per *attempt*, not per quote); use
    /// [`DeviceInstance::try_run_attempt`] to resolve an actual run.
    pub fn evaluate(
        &self,
        model: &CostModel,
        ctx: &WorkloadContext,
        cfg: &MConfig,
        state: FaultState,
    ) -> Option<SimReport> {
        if state == FaultState::Down {
            return None;
        }
        Some(model.evaluate_with_memory(&self.effective_spec(state), ctx, cfg, self.mem_gb))
    }

    /// Fallible execution of attempt `attempt` of job `job` under `state`,
    /// mirroring [`crate::system::MultiAcceleratorSystem::try_deploy_attempt`]
    /// for a single device:
    ///
    /// * `Down` — always [`DeployError::AcceleratorDown`];
    /// * `Transient` — fails with the state's probability, drawn
    ///   deterministically from `(seed, device id, job, attempt)`; the error
    ///   carries the simulated time wasted before the fault struck;
    /// * `Degraded` — succeeds on the surviving core fraction;
    /// * `Healthy` — always succeeds.
    #[allow(clippy::too_many_arguments)] // the (seed, job, attempt) draw fingerprint
    pub fn try_run_attempt(
        &self,
        model: &CostModel,
        ctx: &WorkloadContext,
        cfg: &MConfig,
        state: FaultState,
        seed: u64,
        job: u64,
        attempt: u32,
    ) -> Result<SimReport, DeployError> {
        let accelerator = self.role();
        let Some(report) = self.evaluate(model, ctx, cfg, state) else {
            return Err(DeployError::AcceleratorDown { accelerator });
        };
        if let FaultState::Transient { failure_rate } = state {
            let rate = failure_rate.clamp(0.0, 1.0);
            if self.hash_unit(seed, job, attempt, 0x51) < rate {
                let frac = self.hash_unit(seed, job, attempt, 0xA7).clamp(0.05, 0.95);
                return Err(DeployError::TransientFailure {
                    accelerator,
                    attempt,
                    failed_after_ms: frac * report.time_ms,
                });
            }
        }
        Ok(report)
    }

    /// Deterministic draw in `[0, 1)` from the device/job/attempt
    /// fingerprint.
    fn hash_unit(&self, seed: u64, job: u64, attempt: u32, salt: u8) -> f64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        seed.hash(&mut h);
        (self.id as u64).hash(&mut h);
        job.hash(&mut h);
        attempt.hash(&mut h);
        salt.hash(&mut h);
        h.finish() as f64 / (u64::MAX as f64 + 1.0)
    }
}

/// Simulated queue state of one device: everything a scheduler needs to
/// reason about *when* new work would complete.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Occupancy {
    free_at_ms: f64,
    busy_ms: f64,
    jobs: u64,
}

impl Occupancy {
    /// An idle device at simulated time zero.
    pub fn new() -> Self {
        Occupancy::default()
    }

    /// Absolute simulated time at which the device next falls idle.
    pub fn free_at_ms(&self) -> f64 {
        self.free_at_ms
    }

    /// Cumulative simulated milliseconds of admitted work.
    pub fn busy_ms(&self) -> f64 {
        self.busy_ms
    }

    /// Jobs admitted so far.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Queue backlog as seen at `now_ms`: how long new work would wait
    /// before starting (zero when the device is idle).
    pub fn backlog_ms(&self, now_ms: f64) -> f64 {
        (self.free_at_ms - now_ms).max(0.0)
    }

    /// Admits `work_ms` of simulated work at `now_ms` and returns its
    /// `(start, finish)` times. Work runs serially after the existing
    /// backlog.
    pub fn admit(&mut self, now_ms: f64, work_ms: f64) -> (f64, f64) {
        let start = self.free_at_ms.max(now_ms);
        let finish = start + work_ms.max(0.0);
        self.free_at_ms = finish;
        self.busy_ms += work_ms.max(0.0);
        self.jobs += 1;
        (start, finish)
    }

    /// Fraction of `horizon_ms` the device spent busy (clamped to `[0, 1]`).
    pub fn utilization(&self, horizon_ms: f64) -> f64 {
        if horizon_ms <= 0.0 {
            return 0.0;
        }
        (self.busy_ms / horizon_ms).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteromap_graph::datasets::Dataset;
    use heteromap_model::Workload;

    fn ctx() -> WorkloadContext {
        WorkloadContext::for_workload(Workload::Bfs, Dataset::Facebook.stats())
    }

    #[test]
    fn role_follows_spec_kind() {
        assert_eq!(
            DeviceInstance::new(0, AcceleratorSpec::gtx_970()).role(),
            Accelerator::Gpu
        );
        assert_eq!(
            DeviceInstance::new(1, AcceleratorSpec::cpu_40core()).role(),
            Accelerator::Multicore
        );
    }

    #[test]
    fn degraded_devices_run_slower_and_down_devices_reject() {
        let model = CostModel::paper();
        let dev = DeviceInstance::new(0, AcceleratorSpec::xeon_phi_7120p());
        let cfg = heteromap_model::MConfig::multicore_default();
        let healthy = dev
            .evaluate(&model, &ctx(), &cfg, FaultState::Healthy)
            .expect("healthy evaluates");
        let degraded = dev
            .evaluate(
                &model,
                &ctx(),
                &cfg,
                FaultState::Degraded {
                    surviving_core_fraction: 0.25,
                },
            )
            .expect("degraded evaluates");
        assert!(degraded.time_ms > healthy.time_ms);
        assert!(dev
            .evaluate(&model, &ctx(), &cfg, FaultState::Down)
            .is_none());
        let err = dev
            .try_run_attempt(&model, &ctx(), &cfg, FaultState::Down, 1, 1, 0)
            .expect_err("down devices reject");
        assert!(!err.is_retryable());
    }

    #[test]
    fn transient_draws_reproduce_and_redraw_per_attempt() {
        let model = CostModel::paper();
        let dev = DeviceInstance::new(3, AcceleratorSpec::gtx_750ti());
        let cfg = heteromap_model::MConfig::gpu_default();
        let state = FaultState::Transient { failure_rate: 0.5 };
        let once = dev.try_run_attempt(&model, &ctx(), &cfg, state, 9, 7, 0);
        let again = dev.try_run_attempt(&model, &ctx(), &cfg, state, 9, 7, 0);
        assert_eq!(once.is_ok(), again.is_ok(), "same attempt reproduces");
        let failures = (0..200)
            .filter(|&a| {
                dev.try_run_attempt(&model, &ctx(), &cfg, state, 9, 7, a)
                    .is_err()
            })
            .count();
        assert!((60..140).contains(&failures), "{failures} of 200 at p=0.5");
    }

    #[test]
    fn occupancy_queues_work_serially() {
        let mut occ = Occupancy::new();
        assert_eq!(occ.backlog_ms(0.0), 0.0);
        let (s1, f1) = occ.admit(10.0, 5.0);
        assert_eq!((s1, f1), (10.0, 15.0));
        // Admitted while busy: starts when the device frees up.
        let (s2, f2) = occ.admit(11.0, 2.0);
        assert_eq!((s2, f2), (15.0, 17.0));
        assert_eq!(occ.backlog_ms(11.0), 6.0);
        assert_eq!(occ.jobs(), 2);
        assert_eq!(occ.busy_ms(), 7.0);
        assert!(occ.utilization(100.0) > 0.0);
    }
}
