//! Seeded chaos plans: which fault hits which accelerator, when, how hard.
//!
//! A [`ChaosPlan`] is a pure function from `(seed, intensity)` to a fault
//! schedule — no RNG state, no wall clock. Time is divided into **episodes**
//! of [`ChaosPlan::episode_len`] rounds; each episode draws one
//! [`ChaosEvent`] from the seed, so faults persist long enough for circuit
//! breakers to trip, route around them, cool down and probe — the dynamics
//! the harness exists to exercise. Requests are drawn from the same seed,
//! independently of the fault schedule, so resilient and baseline runs see
//! bit-identical workloads.

use heteromap_accel::{FaultPlan, FaultState};
use heteromap_graph::datasets::Dataset;
use heteromap_model::{Accelerator, Workload};
use std::hash::{Hash, Hasher};

/// The workload pool requests are drawn from.
pub const WORKLOADS: [Workload; 5] = [
    Workload::Bfs,
    Workload::PageRank,
    Workload::SsspBf,
    Workload::SsspDelta,
    Workload::ConnComp,
];

/// The dataset pool requests are drawn from. Friendster's working set
/// exceeds the pinned 2 GB, so it is the victim of
/// [`ChaosEvent::OomBurst`] episodes (and streams harmlessly otherwise).
pub const DATASETS: [Dataset; 4] = [
    Dataset::UsaCal,
    Dataset::Facebook,
    Dataset::LiveJournal,
    Dataset::Friendster,
];

/// One episode's fault scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChaosEvent {
    /// Both accelerators healthy.
    Calm,
    /// One accelerator flakes per attempt.
    Transient {
        /// The flaking accelerator.
        accelerator: Accelerator,
        /// Per-attempt failure probability.
        failure_rate: f64,
    },
    /// One accelerator throttles to a sliver of its cores, inflating
    /// latency past typical deadlines without failing outright.
    LatencySpike {
        /// The throttled accelerator.
        accelerator: Accelerator,
        /// Surviving core fraction.
        surviving: f64,
    },
    /// One accelerator is lost entirely.
    Outage {
        /// The dead accelerator.
        accelerator: Accelerator,
    },
    /// Streaming is disabled system-wide: oversized working sets become
    /// hard out-of-memory failures.
    OomBurst,
    /// Both accelerators are lost — nothing can complete.
    CorrelatedOutage,
}

/// A deterministic chaos schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPlan {
    /// Seed for every draw (faults, severities, request mix).
    pub seed: u64,
    /// Fraction of episodes that are faulty, in `[0, 1]`.
    pub intensity: f64,
    /// Rounds to drive.
    pub rounds: u32,
    /// Requests evaluated per round.
    pub requests_per_round: u32,
    /// Rounds per fault episode.
    pub episode_len: u32,
    /// Per-request deadline as a multiple of the *worst-leg* fault-free
    /// completion time of the same (workload, dataset) combination, so a
    /// healthy system meets every deadline on either accelerator.
    pub deadline_factor: f64,
}

impl ChaosPlan {
    /// The standard plan: 96 rounds × 32 requests in 8-round episodes.
    pub fn seeded(seed: u64, intensity: f64) -> Self {
        ChaosPlan {
            seed,
            intensity: intensity.clamp(0.0, 1.0),
            rounds: 96,
            requests_per_round: 32,
            episode_len: 8,
            deadline_factor: 3.0,
        }
    }

    /// A small plan for CI smoke runs and unit tests.
    pub fn smoke(seed: u64, intensity: f64) -> Self {
        ChaosPlan {
            rounds: 24,
            requests_per_round: 8,
            episode_len: 4,
            ..ChaosPlan::seeded(seed, intensity)
        }
    }

    /// The episode a round belongs to.
    pub fn episode_of(&self, round: u32) -> u32 {
        round / self.episode_len.max(1)
    }

    /// The fault scenario of one episode — a pure function of
    /// `(seed, intensity, episode)`.
    pub fn event_for_episode(&self, episode: u32) -> ChaosEvent {
        if self.hash_unit(episode, 0x01) >= self.intensity {
            return ChaosEvent::Calm;
        }
        let severity = self.hash_unit(episode, 0x03);
        let accelerator = if self.hash_unit(episode, 0x04) < 0.5 {
            Accelerator::Gpu
        } else {
            Accelerator::Multicore
        };
        // 8 kind slots: transients and latency spikes dominate, correlated
        // outages stay rare (they are unrecoverable by construction).
        match (self.hash_unit(episode, 0x02) * 8.0) as u32 {
            0..=2 => ChaosEvent::Transient {
                accelerator,
                failure_rate: 0.55 + 0.4 * severity,
            },
            3..=4 => ChaosEvent::LatencySpike {
                accelerator,
                surviving: 0.08 + 0.12 * severity,
            },
            5 => ChaosEvent::Outage { accelerator },
            6 => ChaosEvent::OomBurst,
            _ => ChaosEvent::CorrelatedOutage,
        }
    }

    /// The [`FaultPlan`] to install for one round.
    pub fn fault_plan_for_round(&self, round: u32) -> FaultPlan {
        let episode = self.episode_of(round);
        let plan_seed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(episode));
        let base = FaultPlan {
            seed: plan_seed,
            ..FaultPlan::healthy()
        };
        match self.event_for_episode(episode) {
            ChaosEvent::Calm => base,
            ChaosEvent::Transient {
                accelerator,
                failure_rate,
            } => base.with_state(accelerator, FaultState::Transient { failure_rate }),
            ChaosEvent::LatencySpike {
                accelerator,
                surviving,
            } => base.with_state(
                accelerator,
                FaultState::Degraded {
                    surviving_core_fraction: surviving,
                },
            ),
            ChaosEvent::Outage { accelerator } => base.with_state(accelerator, FaultState::Down),
            ChaosEvent::OomBurst => base.without_streaming(),
            ChaosEvent::CorrelatedOutage => base
                .with_state(Accelerator::Gpu, FaultState::Down)
                .with_state(Accelerator::Multicore, FaultState::Down),
        }
    }

    /// The `(workload index, dataset index)` of one request slot — indices
    /// into [`WORKLOADS`] / [`DATASETS`], drawn independently of the fault
    /// schedule.
    pub fn request_for(&self, round: u32, slot: u32) -> (usize, usize) {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.seed.hash(&mut h);
        0x00C0_FFEE_u32.hash(&mut h);
        round.hash(&mut h);
        slot.hash(&mut h);
        let draw = h.finish();
        (
            (draw % WORKLOADS.len() as u64) as usize,
            ((draw / WORKLOADS.len() as u64) % DATASETS.len() as u64) as usize,
        )
    }

    /// Deterministic draw in `[0, 1)` for one `(episode, salt)` pair.
    fn hash_unit(&self, episode: u32, salt: u8) -> f64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.seed.hash(&mut h);
        episode.hash(&mut h);
        salt.hash(&mut h);
        h.finish() as f64 / (u64::MAX as f64 + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_intensity_is_always_calm() {
        let plan = ChaosPlan::seeded(7, 0.0);
        for episode in 0..64 {
            assert_eq!(plan.event_for_episode(episode), ChaosEvent::Calm);
            assert!(plan
                .fault_plan_for_round(episode * plan.episode_len)
                .is_all_healthy());
        }
    }

    #[test]
    fn full_intensity_is_never_calm() {
        let plan = ChaosPlan::seeded(7, 1.0);
        let faulty = (0..64)
            .filter(|&e| plan.event_for_episode(e) != ChaosEvent::Calm)
            .count();
        assert_eq!(faulty, 64);
    }

    #[test]
    fn events_are_deterministic_and_seed_sensitive() {
        let a = ChaosPlan::seeded(1, 0.5);
        let b = ChaosPlan::seeded(1, 0.5);
        let c = ChaosPlan::seeded(2, 0.5);
        let events_a: Vec<_> = (0..32).map(|e| a.event_for_episode(e)).collect();
        let events_b: Vec<_> = (0..32).map(|e| b.event_for_episode(e)).collect();
        let events_c: Vec<_> = (0..32).map(|e| c.event_for_episode(e)).collect();
        assert_eq!(events_a, events_b);
        assert_ne!(events_a, events_c, "different seed, different schedule");
    }

    #[test]
    fn rounds_within_an_episode_share_one_fault_plan() {
        let plan = ChaosPlan::seeded(11, 1.0);
        let first = plan.fault_plan_for_round(0);
        for round in 1..plan.episode_len {
            assert_eq!(plan.fault_plan_for_round(round), first);
        }
    }

    #[test]
    fn requests_stay_inside_the_pools() {
        let plan = ChaosPlan::smoke(3, 0.5);
        let mut seen_w = [false; WORKLOADS.len()];
        let mut seen_d = [false; DATASETS.len()];
        for round in 0..plan.rounds {
            for slot in 0..plan.requests_per_round {
                let (wi, di) = plan.request_for(round, slot);
                seen_w[wi] = true;
                seen_d[di] = true;
            }
        }
        assert!(seen_w.iter().all(|&s| s), "every workload drawn");
        assert!(seen_d.iter().all(|&s| s), "every dataset drawn");
    }

    #[test]
    fn moderate_intensity_mixes_calm_and_faulty_episodes() {
        let plan = ChaosPlan::seeded(42, 0.3);
        let faulty = (0..200)
            .filter(|&e| plan.event_for_episode(e) != ChaosEvent::Calm)
            .count();
        assert!((30..90).contains(&faulty), "{faulty} faulty of 200");
    }
}
