//! The chaos round driver: deterministic execution of a [`ChaosPlan`]
//! through the serving stack at any thread count.
//!
//! Determinism strategy, in order of importance:
//!
//! 1. **Simulated time only.** Placements charge simulated milliseconds, and
//!    the chaos engine zeroes every real-time-adjacent overhead knob
//!    (`flop_ns`, `hit_overhead_ms`), so a request's outcome is identical
//!    whether it hit or missed the cache — races on the cache cannot leak
//!    into results.
//! 2. **Round-granular routing.** The breaker board is snapshotted at round
//!    start; every request in the round routes from that snapshot, and the
//!    board is updated by a *serial fold in slot order* after the parallel
//!    evaluation. Mid-round interleavings therefore cannot influence breaker
//!    evolution.
//! 3. **Pure per-slot outcomes.** Given the snapshot and the installed
//!    fault plan, each slot's placement is a pure function of the plan seed
//!    — worker threads only decide *who* computes a slot, never *what* it
//!    resolves to.
//!
//! The digest chains every `(round, slot, outcome, accelerator, time,
//! config)` through one hasher, so two runs agree on the digest iff they
//! agreed on every single request.

use crate::plan::{ChaosPlan, DATASETS, WORKLOADS};
use heteromap::{AttemptOutcome, BreakerBoard, BreakerConfig, DeployOptions, HeteroMap};
use heteromap_accel::cost::WorkloadContext;
use heteromap_model::Accelerator;
use heteromap_serve::{ServeConfig, ServeEngine, ServeMode, Served};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};

/// How one chaos request resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Resolution {
    /// Completed within its deadline.
    Good,
    /// Resolved, but outside the deadline (typed deadline error territory).
    Late,
    /// Every leg failed (outage, OOM on both accelerators).
    Failed,
    /// Refused at round start because both breakers were open.
    Shed,
}

impl Resolution {
    fn tag(self) -> u64 {
        match self {
            Resolution::Good => 1,
            Resolution::Late => 2,
            Resolution::Failed => 3,
            Resolution::Shed => 4,
        }
    }
}

/// Aggregated outcome of one chaos run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosReport {
    /// Requests driven (`rounds × requests_per_round`).
    pub requests: usize,
    /// Requests that completed within their deadline.
    pub good: usize,
    /// Requests that resolved outside their deadline.
    pub late: usize,
    /// Requests whose every leg failed.
    pub failed: usize,
    /// Requests shed with both breakers open.
    pub shed: usize,
    /// 99th-percentile simulated completion time of resolved requests (ms;
    /// `NaN` when nothing resolved).
    pub p99_ms: f64,
    /// Breaker trips over the run (0 in baseline mode).
    pub breaker_opens: u64,
    /// Breaker recoveries over the run (0 in baseline mode).
    pub breaker_closes: u64,
    /// Order-independent-of-threads digest over every request's resolution.
    pub digest: u64,
}

impl ChaosReport {
    /// Fraction of driven requests that completed within deadline.
    pub fn goodput_fraction(&self) -> f64 {
        if self.requests == 0 {
            return f64::NAN;
        }
        self.good as f64 / self.requests as f64
    }

    /// Whether every driven request resolved to exactly one bucket.
    pub fn fully_accounted(&self) -> bool {
        self.good + self.late + self.failed + self.shed == self.requests
    }
}

/// Drives one [`ChaosPlan`] through a private serving engine.
///
/// `resilient` selects the machinery under test: `true` threads deadlines
/// into the deploy loop and routes around open breakers; `false` is the
/// no-resilience baseline — same faults, same requests, same deadlines for
/// *classification*, but deploys run unconstrained and nothing is ever
/// routed around. The gap between the two is the harness's measure of what
/// the resilience layer buys.
#[derive(Debug)]
pub struct ChaosRunner {
    plan: ChaosPlan,
    resilient: bool,
    breaker: BreakerConfig,
    engine: ServeEngine,
    /// Worst-leg fault-free completion time per `(workload, dataset)` pool
    /// entry — the slower of "forced onto the GPU" and "forced onto the
    /// multicore". Deadlines are `deadline_factor ×` these, so re-routing
    /// around an open breaker always fits the budget on a healthy survivor.
    reference_ms: [[f64; DATASETS.len()]; WORKLOADS.len()],
}

impl ChaosRunner {
    /// A runner over a fresh decision-tree engine.
    pub fn new(plan: ChaosPlan, resilient: bool) -> Self {
        ChaosRunner::with_breaker(plan, resilient, BreakerConfig::default())
    }

    /// A runner with explicit breaker tuning.
    pub fn with_breaker(plan: ChaosPlan, resilient: bool, breaker: BreakerConfig) -> Self {
        // Zero overhead knobs: cache hit/miss races must not shift times.
        let config = ServeConfig {
            mode: ServeMode::Cached,
            flop_ns: 0.0,
            hit_overhead_ms: 0.0,
            ..ServeConfig::default()
        };
        let engine = ServeEngine::new(HeteroMap::with_decision_tree(), config);
        let mut reference_ms = [[0.0; DATASETS.len()]; WORKLOADS.len()];
        for (wi, workload) in WORKLOADS.iter().enumerate() {
            for (di, dataset) in DATASETS.iter().enumerate() {
                let ctx = WorkloadContext::for_workload(*workload, dataset.stats());
                let forced = |avoid| {
                    engine
                        .schedule_context_opts(&ctx, DeployOptions::default().avoiding(Some(avoid)))
                        .placement
                        .report
                        .time_ms
                };
                reference_ms[wi][di] = forced(Accelerator::Multicore).max(forced(Accelerator::Gpu));
            }
        }
        ChaosRunner {
            plan,
            resilient,
            breaker,
            engine,
            reference_ms,
        }
    }

    /// The plan under execution.
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    /// The runner's engine (for metrics/event inspection after a run).
    pub fn engine(&self) -> &ServeEngine {
        &self.engine
    }

    /// The deadline of one request slot.
    fn deadline_ms(&self, wi: usize, di: usize) -> f64 {
        self.plan.deadline_factor * self.reference_ms[wi][di]
    }

    /// Executes the plan across `threads` workers and returns the tally.
    ///
    /// The digest (and every count) is a pure function of the plan — rerun
    /// with any thread count and it must match bit for bit.
    pub fn run(&self, threads: usize) -> ChaosReport {
        let threads = threads.max(1);
        let mut board = BreakerBoard::new(self.breaker);
        let mut digest: u64 = self.plan.seed ^ 0x5EED_C4A0_5B01_7E55;
        let mut times: Vec<f64> = Vec::new();
        let mut report = ChaosReport {
            requests: 0,
            good: 0,
            late: 0,
            failed: 0,
            shed: 0,
            p99_ms: f64::NAN,
            breaker_opens: 0,
            breaker_closes: 0,
            digest: 0,
        };

        for round in 0..self.plan.rounds {
            let fault_plan = self.plan.fault_plan_for_round(round);
            if round % self.plan.episode_len.max(1) == 0 {
                let episode = self.plan.episode_of(round);
                let event = self.plan.event_for_episode(episode);
                heteromap_obs::event("chaos.episode", || {
                    format!("episode={episode} round={round} event={event:?}")
                });
            }
            self.engine.set_fault_plan(fault_plan);

            let n = self.plan.requests_per_round as usize;
            report.requests += n;
            // Snapshot routing for the whole round.
            let (all_open, avoid) = if self.resilient {
                (board.all_open(), board.route_avoid())
            } else {
                (false, None)
            };
            if all_open {
                for slot in 0..n {
                    board.on_shed_open();
                    report.shed += 1;
                    digest = fold(
                        digest,
                        &[u64::from(round), slot as u64, Resolution::Shed.tag()],
                    );
                }
                continue;
            }

            let outcomes = self.evaluate_round(round, n, avoid, threads);
            // Serial fold in slot order: breaker evolution and the digest
            // are independent of which worker computed which slot.
            for (slot, deadline, served) in &outcomes {
                let time_ms = served.placement.report.time_ms;
                let within = time_ms <= *deadline;
                let completed = served.placement.completed();
                if self.resilient {
                    if let Some(accelerator) = avoid {
                        board.on_routed_around(accelerator);
                    }
                    board.on_placement(&served.placement, *deadline);
                }
                let resolution = if completed && within {
                    Resolution::Good
                } else if !within
                    || served
                        .placement
                        .attempts
                        .records
                        .iter()
                        .any(|r| matches!(r.outcome, AttemptOutcome::DeadlineExceeded { .. }))
                {
                    Resolution::Late
                } else {
                    Resolution::Failed
                };
                match resolution {
                    Resolution::Good => report.good += 1,
                    Resolution::Late => report.late += 1,
                    Resolution::Failed => report.failed += 1,
                    Resolution::Shed => unreachable!("sheds never reach evaluation"),
                }
                if time_ms.is_finite() {
                    times.push(time_ms);
                }
                let mut parts = vec![
                    u64::from(round),
                    *slot as u64,
                    resolution.tag(),
                    u64::from(served.placement.accelerator() == Accelerator::Gpu),
                    time_ms.to_bits(),
                ];
                parts.extend(
                    served
                        .placement
                        .config
                        .as_array()
                        .iter()
                        .map(|x| x.to_bits()),
                );
                digest = fold(digest, &parts);
            }
        }

        times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        report.p99_ms = if times.is_empty() {
            f64::NAN
        } else {
            let rank = ((0.99 * times.len() as f64).ceil() as usize).clamp(1, times.len());
            times[rank - 1]
        };
        report.breaker_opens = board.total_opens();
        report.breaker_closes = board.total_closes();
        report.digest = digest;
        report
    }

    /// Evaluates one round's slots across workers; slots are pure given the
    /// routing snapshot, so only the claim order is racy — results are
    /// re-sorted by slot.
    fn evaluate_round(
        &self,
        round: u32,
        n: usize,
        avoid: Option<Accelerator>,
        threads: usize,
    ) -> Vec<(usize, f64, Served)> {
        let cursor = AtomicUsize::new(0);
        let workers = threads.min(n.max(1));
        let mut outcomes: Vec<(usize, f64, Served)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let slot = cursor.fetch_add(1, Ordering::Relaxed);
                            if slot >= n {
                                break;
                            }
                            let (wi, di) = self.plan.request_for(round, slot as u32);
                            let deadline = self.deadline_ms(wi, di);
                            let ctx =
                                WorkloadContext::for_workload(WORKLOADS[wi], DATASETS[di].stats());
                            let opts = if self.resilient {
                                DeployOptions::with_deadline_ms(deadline).avoiding(avoid)
                            } else {
                                DeployOptions::default()
                            };
                            out.push((
                                slot,
                                deadline,
                                self.engine.schedule_context_opts(&ctx, opts),
                            ));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("chaos worker panicked"))
                .collect()
        });
        outcomes.sort_by_key(|(slot, _, _)| *slot);
        outcomes
    }
}

/// Chains `parts` into `digest` through one [`DefaultHasher`] step.
fn fold(digest: u64, parts: &[u64]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    digest.hash(&mut h);
    for p in parts {
        p.hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ChaosPlan;

    #[test]
    fn fault_free_run_is_all_good() {
        let runner = ChaosRunner::new(ChaosPlan::smoke(5, 0.0), true);
        let report = runner.run(2);
        assert!(report.fully_accounted());
        assert_eq!(report.good, report.requests);
        assert_eq!(report.breaker_opens, 0);
        assert!(report.p99_ms.is_finite());
    }

    #[test]
    fn digests_are_identical_across_thread_counts_and_reruns() {
        for resilient in [true, false] {
            let runner = ChaosRunner::new(ChaosPlan::smoke(42, 0.5), resilient);
            let single = runner.run(1);
            let quad = runner.run(4);
            let rerun = runner.run(4);
            assert_eq!(single.digest, quad.digest, "resilient={resilient}");
            assert_eq!(quad.digest, rerun.digest, "resilient={resilient}");
            assert_eq!(
                (single.good, single.late, single.failed, single.shed),
                (quad.good, quad.late, quad.failed, quad.shed),
            );
            assert!(single.fully_accounted());
        }
    }

    #[test]
    fn different_seeds_give_different_digests() {
        let a = ChaosRunner::new(ChaosPlan::smoke(1, 0.5), true).run(2);
        let b = ChaosRunner::new(ChaosPlan::smoke(2, 0.5), true).run(2);
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn resilient_mode_beats_the_baseline_under_heavy_chaos() {
        let plan = ChaosPlan::seeded(42, 0.5);
        let resilient = ChaosRunner::new(plan, true).run(4);
        let baseline = ChaosRunner::new(plan, false).run(4);
        assert!(resilient.fully_accounted() && baseline.fully_accounted());
        assert!(
            resilient.good > baseline.good,
            "resilient {} vs baseline {} of {}",
            resilient.good,
            baseline.good,
            resilient.requests
        );
        assert!(resilient.breaker_opens > 0, "breakers exercised");
        assert_eq!(baseline.breaker_opens, 0);
        assert_eq!(baseline.shed, 0, "baseline never sheds");
    }
}
