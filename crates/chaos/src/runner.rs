//! The chaos round driver: deterministic execution of a [`ChaosPlan`]
//! through the serving stack at any thread count.
//!
//! Determinism strategy, in order of importance:
//!
//! 1. **Simulated time only.** Placements charge simulated milliseconds, and
//!    the chaos engine zeroes every real-time-adjacent overhead knob
//!    (`flop_ns`, `hit_overhead_ms`), so a request's outcome is identical
//!    whether it hit or missed the cache — races on the cache cannot leak
//!    into results.
//! 2. **Round-granular routing.** The breaker board is snapshotted at round
//!    start; every request in the round routes from that snapshot, and the
//!    board is updated by a *serial fold in slot order* after the parallel
//!    evaluation. Mid-round interleavings therefore cannot influence breaker
//!    evolution.
//! 3. **Pure per-slot outcomes.** Given the snapshot and the installed
//!    fault plan, each slot's placement is a pure function of the plan seed
//!    — worker threads only decide *who* computes a slot, never *what* it
//!    resolves to.
//!
//! The digest chains every `(round, slot, outcome, accelerator, time,
//! config)` through one hasher, so two runs agree on the digest iff they
//! agreed on every single request.

use crate::plan::{ChaosEvent, ChaosPlan, DATASETS, WORKLOADS};
use heteromap::{AttemptOutcome, BreakerBoard, BreakerConfig, DeployOptions, HeteroMap};
use heteromap_accel::cost::WorkloadContext;
use heteromap_model::Accelerator;
use heteromap_obs::metrics::{
    DriftConfig, HealthBoard, HealthSignal, MetricsHub, SeriesDetector, SignalKind,
    LATENCY_BOUNDS_MS,
};
use heteromap_serve::{ServeConfig, ServeEngine, ServeMode, Served};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};

/// How one chaos request resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Resolution {
    /// Completed within its deadline.
    Good,
    /// Resolved, but outside the deadline (typed deadline error territory).
    Late,
    /// Every leg failed (outage, OOM on both accelerators).
    Failed,
    /// Refused at round start because both breakers were open.
    Shed,
}

impl Resolution {
    fn tag(self) -> u64 {
        match self {
            Resolution::Good => 1,
            Resolution::Late => 2,
            Resolution::Failed => 3,
            Resolution::Shed => 4,
        }
    }
}

/// Aggregated outcome of one chaos run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosReport {
    /// Requests driven (`rounds × requests_per_round`).
    pub requests: usize,
    /// Requests that completed within their deadline.
    pub good: usize,
    /// Requests that resolved outside their deadline.
    pub late: usize,
    /// Requests whose every leg failed.
    pub failed: usize,
    /// Requests shed with both breakers open.
    pub shed: usize,
    /// 99th-percentile simulated completion time of resolved requests (ms;
    /// `NaN` when nothing resolved).
    pub p99_ms: f64,
    /// Breaker trips over the run (0 in baseline mode).
    pub breaker_opens: u64,
    /// Breaker recoveries over the run (0 in baseline mode).
    pub breaker_closes: u64,
    /// Order-independent-of-threads digest over every request's resolution.
    pub digest: u64,
}

impl ChaosReport {
    /// Fraction of driven requests that completed within deadline.
    pub fn goodput_fraction(&self) -> f64 {
        if self.requests == 0 {
            return f64::NAN;
        }
        self.good as f64 / self.requests as f64
    }

    /// Whether every driven request resolved to exactly one bucket.
    pub fn fully_accounted(&self) -> bool {
        self.good + self.late + self.failed + self.shed == self.requests
    }
}

/// Per-round tally handed to the telemetry observer by
/// [`ChaosRunner::run_observed`]. Built inside the serial fold, so its
/// contents are independent of worker count.
struct RoundStats<'a> {
    /// Requests driven this round.
    n: usize,
    good: usize,
    late: usize,
    failed: usize,
    shed: usize,
    /// Requests that needed more than one deploy attempt.
    multi_attempt: usize,
    /// Attempts beyond the first, summed over the round's requests.
    extra_attempts: usize,
    /// Σ max(0, time/reference − 1) over resolved finite-time requests —
    /// exactly 0.0 on a fault-free round (every natural placement is no
    /// slower than its worst-leg reference).
    overdraft_sum: f64,
    /// Finite completion times of this round's resolved requests.
    times: &'a [f64],
    /// Cumulative breaker trips/recoveries through this round.
    breaker_opens: u64,
    breaker_closes: u64,
}

/// Telemetry captured by [`ChaosRunner::run_telemetry`]: the ordinary
/// [`ChaosReport`] (digest included, bit-identical to [`ChaosRunner::run`])
/// plus a private metrics hub with one aggregation window per round and the
/// drift detectors' verdicts.
#[derive(Debug)]
pub struct ChaosTelemetry {
    /// The run's report — same digest as an unobserved run of the plan.
    pub report: ChaosReport,
    /// Episodes flagged by either drift detector, ascending.
    pub flagged_episodes: Vec<u32>,
    /// Episodes whose planned event is not [`ChaosEvent::Calm`], ascending
    /// (ground truth for coverage checks).
    pub faulty_episodes: Vec<u32>,
    /// Raised/recovered health signals in raise order.
    pub signals: Vec<HealthSignal>,
    hub: MetricsHub,
}

impl ChaosTelemetry {
    /// Fraction of planned faulty episodes the detectors flagged
    /// (`NaN` when the plan had none).
    pub fn coverage(&self) -> f64 {
        if self.faulty_episodes.is_empty() {
            return f64::NAN;
        }
        let hits = self
            .flagged_episodes
            .iter()
            .filter(|e| self.faulty_episodes.binary_search(e).is_ok())
            .count();
        hits as f64 / self.faulty_episodes.len() as f64
    }

    /// Flagged episodes whose planned event was calm. Under a faulty plan
    /// these are not necessarily detector errors — breaker recovery from a
    /// preceding incident legitimately degrades trailing calm episodes —
    /// so the zero-false-positive gate is evaluated on a calm-regime run
    /// (intensity 0), where this must be empty.
    pub fn calm_episodes_flagged(&self) -> Vec<u32> {
        self.flagged_episodes
            .iter()
            .copied()
            .filter(|e| self.faulty_episodes.binary_search(e).is_err())
            .collect()
    }

    /// The run's metrics hub (one rolled window per round).
    pub fn hub(&self) -> &MetricsHub {
        &self.hub
    }

    /// Prometheus text exposition of the run's metrics.
    pub fn prometheus_text(&self) -> String {
        self.hub.prometheus_text()
    }
}

/// Drives one [`ChaosPlan`] through a private serving engine.
///
/// `resilient` selects the machinery under test: `true` threads deadlines
/// into the deploy loop and routes around open breakers; `false` is the
/// no-resilience baseline — same faults, same requests, same deadlines for
/// *classification*, but deploys run unconstrained and nothing is ever
/// routed around. The gap between the two is the harness's measure of what
/// the resilience layer buys.
#[derive(Debug)]
pub struct ChaosRunner {
    plan: ChaosPlan,
    resilient: bool,
    breaker: BreakerConfig,
    engine: ServeEngine,
    /// Worst-leg fault-free completion time per `(workload, dataset)` pool
    /// entry — the slower of "forced onto the GPU" and "forced onto the
    /// multicore". Deadlines are `deadline_factor ×` these, so re-routing
    /// around an open breaker always fits the budget on a healthy survivor.
    reference_ms: [[f64; DATASETS.len()]; WORKLOADS.len()],
}

impl ChaosRunner {
    /// A runner over a fresh decision-tree engine.
    pub fn new(plan: ChaosPlan, resilient: bool) -> Self {
        ChaosRunner::with_breaker(plan, resilient, BreakerConfig::default())
    }

    /// A runner with explicit breaker tuning.
    pub fn with_breaker(plan: ChaosPlan, resilient: bool, breaker: BreakerConfig) -> Self {
        // Zero overhead knobs: cache hit/miss races must not shift times.
        let config = ServeConfig {
            mode: ServeMode::Cached,
            flop_ns: 0.0,
            hit_overhead_ms: 0.0,
            ..ServeConfig::default()
        };
        let engine = ServeEngine::new(HeteroMap::with_decision_tree(), config);
        let mut reference_ms = [[0.0; DATASETS.len()]; WORKLOADS.len()];
        for (wi, workload) in WORKLOADS.iter().enumerate() {
            for (di, dataset) in DATASETS.iter().enumerate() {
                let ctx = WorkloadContext::for_workload(*workload, dataset.stats());
                let forced = |avoid| {
                    engine
                        .schedule_context_opts(&ctx, DeployOptions::default().avoiding(Some(avoid)))
                        .placement
                        .report
                        .time_ms
                };
                reference_ms[wi][di] = forced(Accelerator::Multicore).max(forced(Accelerator::Gpu));
            }
        }
        ChaosRunner {
            plan,
            resilient,
            breaker,
            engine,
            reference_ms,
        }
    }

    /// The plan under execution.
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    /// The runner's engine (for metrics/event inspection after a run).
    pub fn engine(&self) -> &ServeEngine {
        &self.engine
    }

    /// The deadline of one request slot.
    fn deadline_ms(&self, wi: usize, di: usize) -> f64 {
        self.plan.deadline_factor * self.reference_ms[wi][di]
    }

    /// Executes the plan across `threads` workers and returns the tally.
    ///
    /// The digest (and every count) is a pure function of the plan — rerun
    /// with any thread count and it must match bit for bit.
    pub fn run(&self, threads: usize) -> ChaosReport {
        self.run_observed(threads, |_, _| {})
    }

    /// [`ChaosRunner::run`] with a per-round observer. The observer fires
    /// from the serial fold after each round's breaker/digest bookkeeping,
    /// so anything it records is deterministic at any worker count — and
    /// because it is passive, the returned report (digest included) is
    /// bit-identical to an unobserved run.
    fn run_observed<F: for<'a> FnMut(u32, &RoundStats<'a>)>(
        &self,
        threads: usize,
        mut observe: F,
    ) -> ChaosReport {
        let threads = threads.max(1);
        let mut board = BreakerBoard::new(self.breaker);
        let mut digest: u64 = self.plan.seed ^ 0x5EED_C4A0_5B01_7E55;
        let mut times: Vec<f64> = Vec::new();
        let mut report = ChaosReport {
            requests: 0,
            good: 0,
            late: 0,
            failed: 0,
            shed: 0,
            p99_ms: f64::NAN,
            breaker_opens: 0,
            breaker_closes: 0,
            digest: 0,
        };

        for round in 0..self.plan.rounds {
            let fault_plan = self.plan.fault_plan_for_round(round);
            if round % self.plan.episode_len.max(1) == 0 {
                let episode = self.plan.episode_of(round);
                let event = self.plan.event_for_episode(episode);
                heteromap_obs::event("chaos.episode", || {
                    format!("episode={episode} round={round} event={event:?}")
                });
            }
            self.engine.set_fault_plan(fault_plan);

            let n = self.plan.requests_per_round as usize;
            report.requests += n;
            // Snapshot routing for the whole round.
            let (all_open, avoid) = if self.resilient {
                (board.all_open(), board.route_avoid())
            } else {
                (false, None)
            };
            if all_open {
                for slot in 0..n {
                    board.on_shed_open();
                    report.shed += 1;
                    digest = fold(
                        digest,
                        &[u64::from(round), slot as u64, Resolution::Shed.tag()],
                    );
                }
                observe(
                    round,
                    &RoundStats {
                        n,
                        good: 0,
                        late: 0,
                        failed: 0,
                        shed: n,
                        multi_attempt: 0,
                        extra_attempts: 0,
                        overdraft_sum: 0.0,
                        times: &[],
                        breaker_opens: board.total_opens(),
                        breaker_closes: board.total_closes(),
                    },
                );
                continue;
            }

            let outcomes = self.evaluate_round(round, n, avoid, threads);
            let round_times_start = times.len();
            let (mut good, mut late, mut failed) = (0usize, 0usize, 0usize);
            let mut multi_attempt = 0usize;
            let mut extra_attempts = 0usize;
            let mut overdraft_sum = 0.0f64;
            // Serial fold in slot order: breaker evolution and the digest
            // are independent of which worker computed which slot.
            for (slot, deadline, served) in &outcomes {
                let time_ms = served.placement.report.time_ms;
                let within = time_ms <= *deadline;
                let completed = served.placement.completed();
                if self.resilient {
                    if let Some(accelerator) = avoid {
                        board.on_routed_around(accelerator);
                    }
                    board.on_placement(&served.placement, *deadline);
                }
                let resolution = if completed && within {
                    Resolution::Good
                } else if !within
                    || served
                        .placement
                        .attempts
                        .records
                        .iter()
                        .any(|r| matches!(r.outcome, AttemptOutcome::DeadlineExceeded { .. }))
                {
                    Resolution::Late
                } else {
                    Resolution::Failed
                };
                match resolution {
                    Resolution::Good => good += 1,
                    Resolution::Late => late += 1,
                    Resolution::Failed => failed += 1,
                    Resolution::Shed => unreachable!("sheds never reach evaluation"),
                }
                let attempts = served.placement.attempts.total_attempts();
                if attempts > 1 {
                    multi_attempt += 1;
                    extra_attempts += attempts - 1;
                }
                if time_ms.is_finite() {
                    times.push(time_ms);
                    // Overdraft against the worst-leg fault-free reference
                    // (deadline = factor × reference): exactly 0 when the
                    // run is no slower than a healthy worst-leg deploy.
                    let reference = *deadline / self.plan.deadline_factor;
                    if reference.is_finite() && reference > 0.0 {
                        overdraft_sum += (time_ms / reference - 1.0).max(0.0);
                    }
                }
                let mut parts = vec![
                    u64::from(round),
                    *slot as u64,
                    resolution.tag(),
                    u64::from(served.placement.accelerator() == Accelerator::Gpu),
                    time_ms.to_bits(),
                ];
                parts.extend(
                    served
                        .placement
                        .config
                        .as_array()
                        .iter()
                        .map(|x| x.to_bits()),
                );
                digest = fold(digest, &parts);
            }
            report.good += good;
            report.late += late;
            report.failed += failed;
            observe(
                round,
                &RoundStats {
                    n,
                    good,
                    late,
                    failed,
                    shed: 0,
                    multi_attempt,
                    extra_attempts,
                    overdraft_sum,
                    times: &times[round_times_start..],
                    breaker_opens: board.total_opens(),
                    breaker_closes: board.total_closes(),
                },
            );
        }

        times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        report.p99_ms = if times.is_empty() {
            f64::NAN
        } else {
            let rank = ((0.99 * times.len() as f64).ceil() as usize).clamp(1, times.len());
            times[rank - 1]
        };
        report.breaker_opens = board.total_opens();
        report.breaker_closes = board.total_closes();
        report.digest = digest;
        report
    }

    /// Executes the plan with live telemetry: a private [`MetricsHub`]
    /// aggregates per-round counters/histograms (one rolled window per
    /// round), and two drift detectors watch the rounds — one over the
    /// latency-overdraft series, one over the bad-outcome fraction. Both
    /// series are exactly `0.0` on fault-free rounds, so the calm regime
    /// can never false-positive; detectors re-arm at episode boundaries so
    /// an early incident cannot mask a later one.
    ///
    /// The observer runs in the serial fold, so everything here — the
    /// hub's contents, the flagged set, and the embedded report's digest —
    /// is bit-identical at any `threads`.
    pub fn run_telemetry(&self, threads: usize) -> ChaosTelemetry {
        let hub = MetricsHub::new();
        let outcome = |o: &'static str| {
            hub.counter(
                "chaos_requests_total",
                &[("outcome", o)],
                "Chaos requests by resolution bucket",
            )
        };
        let good_c = outcome("good");
        let late_c = outcome("late");
        let failed_c = outcome("failed");
        let shed_c = outcome("shed");
        let extra_attempts_c = hub.counter(
            "chaos_extra_attempts_total",
            &[],
            "Deploy attempts beyond the first (retries + failovers)",
        );
        let completion_h = hub.histogram(
            "chaos_completion_ms",
            &[],
            "Simulated completion time of resolved chaos requests",
            &LATENCY_BOUNDS_MS,
        );
        let opens_g = hub.gauge(
            "chaos_breaker_opens",
            &[],
            "Cumulative circuit-breaker trips",
        );
        let closes_g = hub.gauge(
            "chaos_breaker_closes",
            &[],
            "Cumulative circuit-breaker recoveries",
        );
        let latency_g = hub.gauge(
            "chaos_latency_overdraft",
            &[],
            "Mean per-request overdraft vs. the fault-free reference",
        );
        let outcome_g = hub.gauge(
            "chaos_outcome_anomaly",
            &[],
            "Fraction of requests late, failed, shed, or retried",
        );

        // Both series sit at exactly 0.0 when healthy, so arm the EWMA
        // baseline at 0 and flag any excursion past the minimum band.
        let detector_cfg = DriftConfig {
            min_band: 0.02,
            baseline: Some(0.0),
            ..DriftConfig::upward()
        };
        let mut latency_det = SeriesDetector::new(detector_cfg);
        let mut outcome_det = SeriesDetector::new(detector_cfg);
        let episode_len = self.plan.episode_len.max(1);
        let mut board = HealthBoard::new(u64::from(episode_len));
        let mut flagged = std::collections::BTreeSet::new();

        let report = self.run_observed(threads, |round, stats| {
            if round % episode_len == 0 {
                latency_det.reset();
                outcome_det.reset();
            }
            good_c.add(stats.good as u64);
            late_c.add(stats.late as u64);
            failed_c.add(stats.failed as u64);
            shed_c.add(stats.shed as u64);
            extra_attempts_c.add(stats.extra_attempts as u64);
            for &t in stats.times {
                completion_h.record(t);
            }
            opens_g.set(stats.breaker_opens as f64);
            closes_g.set(stats.breaker_closes as f64);

            let n = stats.n.max(1) as f64;
            let latency_score = stats.overdraft_sum / n;
            let outcome_score =
                (stats.late + stats.failed + stats.shed + stats.multi_attempt) as f64 / n;
            latency_g.set(latency_score);
            outcome_g.set(outcome_score);
            let window = hub.roll();

            let episode = round / episode_len;
            let lat = latency_det.observe(latency_score);
            if lat.drift {
                board.raise(
                    "chaos/latency",
                    SignalKind::LatencyInflation,
                    window,
                    lat.score,
                );
                flagged.insert(episode);
            }
            let out = outcome_det.observe(outcome_score);
            if out.drift {
                board.raise(
                    "chaos/outcomes",
                    SignalKind::OutcomeAnomaly,
                    window,
                    out.score,
                );
                flagged.insert(episode);
            }
            board.expire(window);
        });

        let episodes = self.plan.rounds.div_ceil(episode_len);
        let faulty_episodes: Vec<u32> = (0..episodes)
            .filter(|&e| self.plan.event_for_episode(e) != ChaosEvent::Calm)
            .collect();
        ChaosTelemetry {
            report,
            flagged_episodes: flagged.into_iter().collect(),
            faulty_episodes,
            signals: board.signals().to_vec(),
            hub,
        }
    }

    /// Evaluates one round's slots across workers; slots are pure given the
    /// routing snapshot, so only the claim order is racy — results are
    /// re-sorted by slot.
    fn evaluate_round(
        &self,
        round: u32,
        n: usize,
        avoid: Option<Accelerator>,
        threads: usize,
    ) -> Vec<(usize, f64, Served)> {
        let cursor = AtomicUsize::new(0);
        let workers = threads.min(n.max(1));
        let mut outcomes: Vec<(usize, f64, Served)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let slot = cursor.fetch_add(1, Ordering::Relaxed);
                            if slot >= n {
                                break;
                            }
                            let (wi, di) = self.plan.request_for(round, slot as u32);
                            let deadline = self.deadline_ms(wi, di);
                            let ctx =
                                WorkloadContext::for_workload(WORKLOADS[wi], DATASETS[di].stats());
                            let opts = if self.resilient {
                                DeployOptions::with_deadline_ms(deadline).avoiding(avoid)
                            } else {
                                DeployOptions::default()
                            };
                            out.push((
                                slot,
                                deadline,
                                self.engine.schedule_context_opts(&ctx, opts),
                            ));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("chaos worker panicked"))
                .collect()
        });
        outcomes.sort_by_key(|(slot, _, _)| *slot);
        outcomes
    }
}

/// Chains `parts` into `digest` through one [`DefaultHasher`] step.
fn fold(digest: u64, parts: &[u64]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    digest.hash(&mut h);
    for p in parts {
        p.hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ChaosPlan;

    #[test]
    fn fault_free_run_is_all_good() {
        let runner = ChaosRunner::new(ChaosPlan::smoke(5, 0.0), true);
        let report = runner.run(2);
        assert!(report.fully_accounted());
        assert_eq!(report.good, report.requests);
        assert_eq!(report.breaker_opens, 0);
        assert!(report.p99_ms.is_finite());
    }

    #[test]
    fn digests_are_identical_across_thread_counts_and_reruns() {
        for resilient in [true, false] {
            let runner = ChaosRunner::new(ChaosPlan::smoke(42, 0.5), resilient);
            let single = runner.run(1);
            let quad = runner.run(4);
            let rerun = runner.run(4);
            assert_eq!(single.digest, quad.digest, "resilient={resilient}");
            assert_eq!(quad.digest, rerun.digest, "resilient={resilient}");
            assert_eq!(
                (single.good, single.late, single.failed, single.shed),
                (quad.good, quad.late, quad.failed, quad.shed),
            );
            assert!(single.fully_accounted());
        }
    }

    #[test]
    fn different_seeds_give_different_digests() {
        let a = ChaosRunner::new(ChaosPlan::smoke(1, 0.5), true).run(2);
        let b = ChaosRunner::new(ChaosPlan::smoke(2, 0.5), true).run(2);
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn telemetry_preserves_the_digest_and_is_thread_count_independent() {
        let runner = ChaosRunner::new(ChaosPlan::smoke(42, 0.5), true);
        let plain = runner.run(2);
        let t1 = runner.run_telemetry(1);
        let t4 = runner.run_telemetry(4);
        assert_eq!(t1.report.digest, plain.digest, "observer must be passive");
        assert_eq!(t1.report.digest, t4.report.digest);
        assert_eq!(t1.flagged_episodes, t4.flagged_episodes);
        assert_eq!(t1.signals, t4.signals);
        assert_eq!(t1.prometheus_text(), t4.prometheus_text());
        assert_eq!(
            t1.hub().window_index(),
            u64::from(runner.plan().rounds),
            "one rolled window per round"
        );
    }

    #[test]
    fn calm_regime_raises_no_signals() {
        let telemetry = ChaosRunner::new(ChaosPlan::smoke(7, 0.0), true).run_telemetry(2);
        assert!(telemetry.flagged_episodes.is_empty());
        assert!(telemetry.faulty_episodes.is_empty());
        assert!(telemetry.signals.is_empty());
        assert_eq!(telemetry.report.good, telemetry.report.requests);
    }

    #[test]
    fn chaotic_run_flags_its_faulty_episodes() {
        let telemetry = ChaosRunner::new(ChaosPlan::smoke(42, 0.7), true).run_telemetry(2);
        assert!(
            !telemetry.faulty_episodes.is_empty(),
            "plan must inject faults"
        );
        let coverage = telemetry.coverage();
        assert!(
            coverage >= 0.99,
            "detectors missed faulty episodes: coverage {coverage:.2}, \
             flagged {:?} of {:?}",
            telemetry.flagged_episodes,
            telemetry.faulty_episodes
        );
        assert!(telemetry
            .signals
            .iter()
            .any(|s| s.kind != SignalKind::Recovered));
    }

    #[test]
    fn telemetry_counters_reconcile_with_the_report() {
        use heteromap_obs::metrics::SeriesValue;
        let telemetry = ChaosRunner::new(ChaosPlan::smoke(11, 0.5), true).run_telemetry(2);
        let count = |outcome: &str| {
            telemetry
                .hub()
                .snapshot()
                .into_iter()
                .find(|s| {
                    s.name == "chaos_requests_total" && s.labels.iter().any(|(_, v)| v == outcome)
                })
                .map(|s| match s.value {
                    SeriesValue::Counter(v) => v as usize,
                    other => panic!("not a counter: {other:?}"),
                })
                .unwrap_or(0)
        };
        assert_eq!(count("good"), telemetry.report.good);
        assert_eq!(count("late"), telemetry.report.late);
        assert_eq!(count("failed"), telemetry.report.failed);
        assert_eq!(count("shed"), telemetry.report.shed);
    }

    #[test]
    fn resilient_mode_beats_the_baseline_under_heavy_chaos() {
        let plan = ChaosPlan::seeded(42, 0.5);
        let resilient = ChaosRunner::new(plan, true).run(4);
        let baseline = ChaosRunner::new(plan, false).run(4);
        assert!(resilient.fully_accounted() && baseline.fully_accounted());
        assert!(
            resilient.good > baseline.good,
            "resilient {} vs baseline {} of {}",
            resilient.good,
            baseline.good,
            resilient.requests
        );
        assert!(resilient.breaker_opens > 0, "breakers exercised");
        assert_eq!(baseline.breaker_opens, 0);
        assert_eq!(baseline.shed, 0, "baseline never sheds");
    }
}
