//! **heteromap-chaos** — a deterministic chaos harness for the HeteroMap
//! serving stack.
//!
//! Chaos testing usually trades reproducibility for realism: random fault
//! injectors find bugs nobody can replay. This harness refuses the trade.
//! A [`ChaosPlan`] maps `(seed, intensity)` to a fault schedule — episodes
//! of accelerator outages, transient fault storms, latency spikes (core
//! throttling), OOM bursts and correlated dual outages — and the
//! [`ChaosRunner`] drives it through a real [`ServeEngine`] at any thread
//! count with a **bit-identical digest**: same seed, same digest, whether
//! the run used 1 worker or 16, today or in CI next month.
//!
//! What the harness asserts (see `exp_chaos_resilience` in
//! `heteromap-bench` for the acceptance bars):
//!
//! * no panic and no deadlock at any thread count,
//! * every driven request resolves to exactly one bucket
//!   ([`ChaosReport::fully_accounted`]) — good, late, failed, or shed;
//!   nothing disappears,
//! * per-seed determinism — [`ChaosReport::digest`] chains every request's
//!   resolution, accelerator, time and configuration,
//! * the resilience layer (deadline propagation + circuit breakers) earns
//!   its keep: goodput under chaos must beat the no-resilience baseline
//!   run on the *same* seeded schedule.
//!
//! [`ServeEngine`]: heteromap_serve::ServeEngine

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod plan;
pub mod runner;

pub use plan::{ChaosEvent, ChaosPlan, DATASETS, WORKLOADS};
pub use runner::{ChaosReport, ChaosRunner, ChaosTelemetry};
