//! Seeded synthetic job traces: which jobs arrive when, and which devices
//! fault when.
//!
//! A [`FleetTrace`] is a pure function from `(seed, knobs)` to a concurrent
//! job stream over the B×I space plus a per-device fault schedule — no RNG
//! state, no wall clock, mirroring the chaos crate's [`ChaosPlan`]
//! discipline (`heteromap-chaos`). Time advances in **rounds** of a fixed
//! simulated tick; arrivals are drawn per round (with seeded bursts), and
//! device health is drawn per **episode** of [`FleetTrace::episode_len`]
//! rounds so faults persist long enough for breakers to trip, reroute, cool
//! down and probe.
//!
//! Two runs over the same trace see bit-identical arrivals and faults, so
//! placer comparisons isolate placement quality.

use heteromap_accel::FaultState;
use heteromap_graph::datasets::Dataset;
use heteromap_model::Workload;
use std::hash::{Hash, Hasher};

/// The workload pool jobs are drawn from.
pub const WORKLOADS: [Workload; 5] = [
    Workload::Bfs,
    Workload::PageRank,
    Workload::SsspBf,
    Workload::SsspDelta,
    Workload::ConnComp,
];

/// The dataset pool jobs are drawn from: a road network, two social graphs
/// and a dense matrix, so the pool spans the paper's GPU-optimal and
/// multicore-optimal regimes (Fig. 1) and placement quality actually
/// matters.
pub const DATASETS: [Dataset; 4] = [
    Dataset::UsaCal,
    Dataset::Facebook,
    Dataset::LiveJournal,
    Dataset::Cage14,
];

/// A deterministic fleet trace: job arrivals plus per-device fault episodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetTrace {
    /// Seed for every draw (arrivals, job mix, faults).
    pub seed: u64,
    /// Fraction of `(device, episode)` cells that are faulty, in `[0, 1]`.
    pub fault_intensity: f64,
    /// Rounds with new arrivals (the simulation drains pending work after).
    pub rounds: u32,
    /// Rounds per fault episode.
    pub episode_len: u32,
    /// Average jobs arriving per round.
    pub mean_arrivals: f64,
    /// Probability that a round is a burst (3× the drawn arrivals).
    pub burst: f64,
    /// Offered load relative to cluster capacity, where capacity is
    /// normalized to every job running on its *best* device; the simulation
    /// derives its tick length so the arrival stream works out to this
    /// utilization. On a heterogeneous cluster that bar is optimistic, so
    /// 1.0 genuinely saturates the fleet.
    pub load: f64,
    /// Per-job deadline as a multiple of its best-device fault-free
    /// completion time.
    pub deadline_factor: f64,
    /// Times a job may be migrated (re-placed after a device failure)
    /// before it is declared failed.
    pub max_migrations: u32,
}

impl FleetTrace {
    /// The heavy trace: sustained oversubscription with bursts — the regime
    /// the bench compares placers under.
    pub fn heavy(seed: u64, fault_intensity: f64) -> Self {
        FleetTrace {
            seed,
            fault_intensity: fault_intensity.clamp(0.0, 1.0),
            rounds: 64,
            episode_len: 8,
            mean_arrivals: 12.0,
            burst: 0.15,
            load: 1.05,
            deadline_factor: 8.0,
            max_migrations: 3,
        }
    }

    /// A moderate steady-state trace: below saturation, fewer bursts — the
    /// second regime for the greedy-vs-evolutionary comparison.
    pub fn steady(seed: u64, fault_intensity: f64) -> Self {
        FleetTrace {
            rounds: 48,
            mean_arrivals: 8.0,
            burst: 0.05,
            load: 0.7,
            ..FleetTrace::heavy(seed, fault_intensity)
        }
    }

    /// A small trace for CI smoke runs and unit tests.
    pub fn smoke(seed: u64, fault_intensity: f64) -> Self {
        FleetTrace {
            rounds: 16,
            episode_len: 4,
            mean_arrivals: 4.0,
            ..FleetTrace::heavy(seed, fault_intensity)
        }
    }

    /// The episode a round belongs to.
    pub fn episode_of(&self, round: u32) -> u32 {
        round / self.episode_len.max(1)
    }

    /// Jobs arriving in one round: a seeded draw around
    /// [`FleetTrace::mean_arrivals`], tripled on burst rounds.
    pub fn arrivals(&self, round: u32) -> u32 {
        if round >= self.rounds {
            return 0;
        }
        let base = self.mean_arrivals * (0.5 + self.hash_unit(u64::from(round), 0x11));
        let spiked = if self.hash_unit(u64::from(round), 0x12) < self.burst {
            base * 3.0
        } else {
            base
        };
        spiked.round() as u32
    }

    /// The `(workload index, dataset index)` of arrival `k` in `round` —
    /// indices into [`WORKLOADS`] / [`DATASETS`], drawn independently of the
    /// fault schedule.
    pub fn job_for(&self, round: u32, k: u32) -> (usize, usize) {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.seed.hash(&mut h);
        0x00F1_EE70_u32.hash(&mut h);
        round.hash(&mut h);
        k.hash(&mut h);
        let draw = h.finish();
        (
            (draw % WORKLOADS.len() as u64) as usize,
            ((draw / WORKLOADS.len() as u64) % DATASETS.len() as u64) as usize,
        )
    }

    /// The health of one device during one episode — a pure function of
    /// `(seed, fault_intensity, device, episode)`. Transients dominate,
    /// degradations follow, full outages stay rarer.
    pub fn fault_for(&self, device: usize, episode: u32) -> FaultState {
        let cell = (device as u64) << 32 | u64::from(episode);
        if self.hash_unit(cell, 0x21) >= self.fault_intensity {
            return FaultState::Healthy;
        }
        let severity = self.hash_unit(cell, 0x22);
        match (self.hash_unit(cell, 0x23) * 8.0) as u32 {
            0..=3 => FaultState::Transient {
                failure_rate: 0.5 + 0.45 * severity,
            },
            4..=5 => FaultState::Degraded {
                surviving_core_fraction: 0.08 + 0.17 * severity,
            },
            _ => FaultState::Down,
        }
    }

    /// Deterministic draw in `[0, 1)` for one `(cell, salt)` pair.
    fn hash_unit(&self, cell: u64, salt: u8) -> f64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.seed.hash(&mut h);
        cell.hash(&mut h);
        salt.hash(&mut h);
        h.finish() as f64 / (u64::MAX as f64 + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_intensity_is_always_healthy() {
        let trace = FleetTrace::heavy(7, 0.0);
        for device in 0..16 {
            for episode in 0..32 {
                assert_eq!(trace.fault_for(device, episode), FaultState::Healthy);
            }
        }
    }

    #[test]
    fn full_intensity_is_never_healthy() {
        let trace = FleetTrace::heavy(7, 1.0);
        let faulty = (0..8)
            .flat_map(|d| (0..16).map(move |e| (d, e)))
            .filter(|&(d, e)| trace.fault_for(d, e) != FaultState::Healthy)
            .count();
        assert_eq!(faulty, 8 * 16);
    }

    #[test]
    fn draws_are_deterministic_and_seed_sensitive() {
        let a = FleetTrace::heavy(1, 0.5);
        let b = FleetTrace::heavy(1, 0.5);
        let c = FleetTrace::heavy(2, 0.5);
        let sample = |t: &FleetTrace| -> Vec<(u32, usize, usize)> {
            (0..t.rounds)
                .flat_map(|r| (0..t.arrivals(r)).map(move |k| (r, k)))
                .map(|(r, k)| {
                    let (wi, di) = t.job_for(r, k);
                    (r, wi, di)
                })
                .collect()
        };
        assert_eq!(sample(&a), sample(&b));
        assert_ne!(sample(&a), sample(&c), "different seed, different stream");
    }

    #[test]
    fn jobs_stay_inside_the_pools_and_cover_them() {
        let trace = FleetTrace::heavy(3, 0.5);
        let mut seen_w = [false; WORKLOADS.len()];
        let mut seen_d = [false; DATASETS.len()];
        for round in 0..trace.rounds {
            for k in 0..trace.arrivals(round) {
                let (wi, di) = trace.job_for(round, k);
                seen_w[wi] = true;
                seen_d[di] = true;
            }
        }
        assert!(seen_w.iter().all(|&s| s), "every workload drawn");
        assert!(seen_d.iter().all(|&s| s), "every dataset drawn");
    }

    #[test]
    fn no_arrivals_after_the_arrival_window() {
        let trace = FleetTrace::smoke(5, 0.2);
        assert_eq!(trace.arrivals(trace.rounds), 0);
        assert_eq!(trace.arrivals(trace.rounds + 7), 0);
        let total: u32 = (0..trace.rounds).map(|r| trace.arrivals(r)).sum();
        assert!(total > 0, "the trace must produce jobs");
    }

    #[test]
    fn bursts_inflate_some_rounds() {
        let trace = FleetTrace::heavy(11, 0.0);
        let max = (0..trace.rounds).map(|r| trace.arrivals(r)).max().unwrap();
        assert!(
            f64::from(max) > trace.mean_arrivals * 1.5,
            "max {max} should show a burst"
        );
    }
}
