//! Placement policies: how a pending job picks a device.
//!
//! Four policies, two naive and two predictor-driven:
//!
//! * [`Placer::Random`] / [`Placer::RoundRobin`] — the baselines: blind to
//!   predictions, health and queues;
//! * [`Placer::Greedy`] — per job, the device minimizing *predicted
//!   completion* (queue backlog + predicted run time, inflated for known
//!   flakiness), skipping Down devices and open breakers;
//! * [`Placer::Evolution`] — batch-assigns the pending queue by searching
//!   placement vectors with the `heteromap-tune` ensemble (random +
//!   hill-climb + evolution + pattern search under the AUC bandit) through
//!   the [`PlacementSpace`] adapter, seeded against a greedy incumbent so
//!   it can only match or improve the greedy batch cost.

use heteromap_tune::{EnsembleTuner, PlacementSpace, Strategy, TuneConfig, PLACEMENT_SLOTS};

/// A placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placer {
    /// Seeded uniform choice over all devices (health-blind baseline).
    Random,
    /// Cycles device ids (health-blind baseline).
    RoundRobin,
    /// Per-job argmin of predicted completion, breaker/health-aware.
    Greedy,
    /// Batch placement-vector search with the tune ensemble.
    Evolution,
}

impl Placer {
    /// All placers, baselines first.
    pub const ALL: [Placer; 4] = [
        Placer::Random,
        Placer::RoundRobin,
        Placer::Greedy,
        Placer::Evolution,
    ];

    /// Stable name used in logs and bench artifacts.
    pub fn name(self) -> &'static str {
        match self {
            Placer::Random => "random",
            Placer::RoundRobin => "round-robin",
            Placer::Greedy => "greedy",
            Placer::Evolution => "evolution",
        }
    }

    /// Whether this placer consults the predictor (and therefore gets
    /// breakers, health-aware routing and deadline shedding).
    pub fn is_predictor_driven(self) -> bool {
        matches!(self, Placer::Greedy | Placer::Evolution)
    }
}

impl std::fmt::Display for Placer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One pending job as the batch search sees it: its timing constraints and
/// its candidate devices with predicted run times.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Simulated arrival time (sojourn baseline).
    pub arrival_ms: f64,
    /// Absolute deadline; finishing later is penalized.
    pub deadline_abs_ms: f64,
    /// Candidate device ids (breaker/health-filtered, non-empty).
    pub allowed: Vec<usize>,
    /// Predicted completion cost on each candidate, parallel to `allowed`
    /// (clean run time inflated for known transient flakiness).
    pub expected_ms: Vec<f64>,
}

/// Sequential greedy assignment: each job takes the candidate minimizing
/// `max(now, free_at) + expected`, updating the queue as it goes. Returns
/// one index into each job's `allowed` list.
pub fn greedy_assign(jobs: &[BatchJob], free_at: &[f64], now_ms: f64) -> Vec<usize> {
    let mut free = free_at.to_vec();
    let mut picks = Vec::with_capacity(jobs.len());
    for job in jobs {
        let pick = best_candidate(job, &free, now_ms);
        let device = job.allowed[pick];
        free[device] = free[device].max(now_ms) + job.expected_ms[pick];
        picks.push(pick);
    }
    picks
}

/// The candidate index minimizing predicted completion for one job (ties
/// break toward the lower list position, hence the lower device id).
pub fn best_candidate(job: &BatchJob, free_at: &[f64], now_ms: f64) -> usize {
    let mut best = 0;
    let mut best_finish = f64::INFINITY;
    for (k, (&device, &expected)) in job.allowed.iter().zip(&job.expected_ms).enumerate() {
        let finish = free_at[device].max(now_ms) + expected;
        if finish < best_finish {
            best_finish = finish;
            best = k;
        }
    }
    best
}

/// Batch cost of one assignment (indices into each job's `allowed`): the
/// summed predicted sojourn, with deadline misses charged three extra
/// deadline-spans so the search prefers on-time schedules over marginally
/// shorter late ones.
pub fn batch_cost(jobs: &[BatchJob], picks: &[usize], free_at: &[f64], now_ms: f64) -> f64 {
    let mut free = free_at.to_vec();
    let mut cost = 0.0;
    for (job, &pick) in jobs.iter().zip(picks) {
        let device = job.allowed[pick];
        let finish = free[device].max(now_ms) + job.expected_ms[pick];
        free[device] = finish;
        cost += finish - job.arrival_ms;
        if finish > job.deadline_abs_ms {
            cost += 3.0 * (job.deadline_abs_ms - job.arrival_ms).max(0.0)
                + (finish - job.deadline_abs_ms);
        }
    }
    cost
}

/// Searches placement vectors for one batch (≤ [`PLACEMENT_SLOTS`] jobs)
/// with the tune ensemble, starting from the greedy incumbent, and returns
/// the better of the two (one index into each job's `allowed` list).
///
/// Deterministic: the tuner runs serially from `seed`, so the result is a
/// pure function of `(jobs, free_at, now_ms, seed, budget)`.
///
/// # Panics
///
/// Panics if the batch exceeds [`PLACEMENT_SLOTS`] jobs or any job has no
/// candidates.
pub fn evolve_batch(
    jobs: &[BatchJob],
    free_at: &[f64],
    now_ms: f64,
    seed: u64,
    budget: usize,
) -> Vec<usize> {
    assert!(
        jobs.len() <= PLACEMENT_SLOTS,
        "batch exceeds one individual"
    );
    assert!(
        jobs.iter().all(|j| !j.allowed.is_empty()),
        "empty candidates"
    );
    let incumbent = greedy_assign(jobs, free_at, now_ms);
    if jobs.len() <= 1 {
        // One job: greedy's argmin is already optimal for every cost above.
        return incumbent;
    }
    let incumbent_cost = batch_cost(jobs, &incumbent, free_at, now_ms);
    let decode = |cfg: &heteromap_model::MConfig| -> Vec<usize> {
        let units = PlacementSpace::unit_values(cfg);
        jobs.iter()
            .zip(&units)
            .map(|(job, &unit)| PlacementSpace::index_in(unit, job.allowed.len()))
            .collect()
    };
    let outcome = EnsembleTuner::new(TuneConfig {
        budget: budget.max(8),
        batch: 8,
        threads: 1,
        seed,
        strategy: Strategy::Ensemble,
        deadline: None,
    })
    .tune(|cfg| batch_cost(jobs, &decode(cfg), free_at, now_ms));
    if outcome.cost < incumbent_cost {
        decode(&outcome.config)
    } else {
        incumbent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(allowed: Vec<usize>, expected_ms: Vec<f64>, deadline_abs_ms: f64) -> BatchJob {
        BatchJob {
            arrival_ms: 0.0,
            deadline_abs_ms,
            allowed,
            expected_ms,
        }
    }

    #[test]
    fn greedy_balances_identical_jobs_across_identical_devices() {
        let jobs: Vec<_> = (0..4)
            .map(|_| job(vec![0, 1], vec![10.0, 10.0], 1e9))
            .collect();
        let picks = greedy_assign(&jobs, &[0.0, 0.0], 0.0);
        let on_zero = picks.iter().filter(|&&p| jobs[0].allowed[p] == 0).count();
        assert_eq!(on_zero, 2, "two jobs per device");
    }

    #[test]
    fn greedy_prefers_the_fast_device_until_its_queue_costs_more() {
        let jobs: Vec<_> = (0..3)
            .map(|_| job(vec![0, 1], vec![10.0, 25.0], 1e9))
            .collect();
        let picks = greedy_assign(&jobs, &[0.0, 0.0], 0.0);
        let devices: Vec<_> = picks
            .iter()
            .zip(&jobs)
            .map(|(&p, j)| j.allowed[p])
            .collect();
        // 10, 20 on device 0; the third job sees 30 vs 25 and spills over.
        assert_eq!(devices, vec![0, 0, 1]);
    }

    #[test]
    fn evolution_never_costs_more_than_greedy() {
        // A trap for the myopic greedy: a long job and short jobs sharing a
        // fast device. Whatever the search finds, the incumbent guard means
        // the returned batch can only tie or beat greedy's cost.
        let jobs = vec![
            job(vec![0, 1], vec![100.0, 130.0], 120.0),
            job(vec![0, 1], vec![10.0, 40.0], 30.0),
            job(vec![0, 1], vec![10.0, 40.0], 30.0),
        ];
        let free = [0.0, 0.0];
        let greedy = greedy_assign(&jobs, &free, 0.0);
        let evolved = evolve_batch(&jobs, &free, 0.0, 42, 64);
        assert!(batch_cost(&jobs, &evolved, &free, 0.0) <= batch_cost(&jobs, &greedy, &free, 0.0));
    }

    #[test]
    fn evolution_is_deterministic_per_seed() {
        let jobs: Vec<_> = (0..8)
            .map(|i| {
                job(
                    vec![0, 1, 2],
                    vec![10.0 + i as f64, 20.0, 15.0],
                    200.0 + i as f64,
                )
            })
            .collect();
        let free = [5.0, 0.0, 40.0];
        let a = evolve_batch(&jobs, &free, 0.0, 7, 48);
        let b = evolve_batch(&jobs, &free, 0.0, 7, 48);
        assert_eq!(a, b);
    }

    #[test]
    fn late_batches_are_penalized() {
        let jobs = vec![job(vec![0], vec![10.0], 5.0)];
        let on_time = vec![job(vec![0], vec![10.0], 50.0)];
        assert!(batch_cost(&jobs, &[0], &[0.0], 0.0) > batch_cost(&on_time, &[0], &[0.0], 0.0));
    }
}
