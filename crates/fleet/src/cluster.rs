//! The cluster under scheduling: N× each accelerator spec, one shared cost
//! model.
//!
//! A [`Cluster`] is static identity — which devices exist and what hardware
//! each one is. Mutable per-run state (health, queues, breakers) lives in
//! the simulation so one cluster description can drive many runs.

use heteromap_accel::{AcceleratorSpec, CostModel, DeviceInstance};

/// A fixed set of accelerator instances driven by one cost model.
#[derive(Debug, Clone)]
pub struct Cluster {
    devices: Vec<DeviceInstance>,
    model: CostModel,
}

impl Cluster {
    /// A cluster of `n_per_spec` instances of each of the paper's four
    /// accelerators (Table II + §VI-A), each with its native memory.
    /// Device ids interleave the specs (`750Ti, 970, Phi, CPU, 750Ti, ...`)
    /// so round-robin placement alternates roles rather than saturating one
    /// spec class first.
    pub fn uniform(n_per_spec: usize) -> Self {
        let specs = [
            AcceleratorSpec::gtx_750ti(),
            AcceleratorSpec::gtx_970(),
            AcceleratorSpec::xeon_phi_7120p(),
            AcceleratorSpec::cpu_40core(),
        ];
        let devices = (0..n_per_spec.max(1) * specs.len())
            .map(|id| DeviceInstance::new(id, specs[id % specs.len()].clone()))
            .collect();
        Cluster {
            devices,
            model: CostModel::paper(),
        }
    }

    /// A cluster over an explicit device list (ids must match positions).
    pub fn new(devices: Vec<DeviceInstance>) -> Self {
        assert!(!devices.is_empty(), "a cluster needs at least one device");
        for (i, d) in devices.iter().enumerate() {
            assert_eq!(d.id, i, "device ids must be their list positions");
        }
        Cluster {
            devices,
            model: CostModel::paper(),
        }
    }

    /// Replaces the cost model (ablations).
    pub fn with_model(mut self, model: CostModel) -> Self {
        self.model = model;
        self
    }

    /// The devices, indexed by id.
    pub fn devices(&self) -> &[DeviceInstance] {
        &self.devices
    }

    /// Device count.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the cluster is empty (never true — construction requires a
    /// device).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The shared cost model.
    pub fn model(&self) -> &CostModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteromap_model::Accelerator;

    #[test]
    fn uniform_interleaves_roles() {
        let cluster = Cluster::uniform(2);
        assert_eq!(cluster.len(), 8);
        let roles: Vec<_> = cluster.devices().iter().map(|d| d.role()).collect();
        assert_eq!(roles[0], Accelerator::Gpu);
        assert_eq!(roles[2], Accelerator::Multicore);
        assert_eq!(roles[4], Accelerator::Gpu);
        assert_eq!(
            roles.iter().filter(|&&r| r == Accelerator::Gpu).count(),
            4,
            "half the devices play the GPU role"
        );
        for (i, d) in cluster.devices().iter().enumerate() {
            assert_eq!(d.id, i);
        }
    }

    #[test]
    #[should_panic(expected = "list positions")]
    fn misnumbered_devices_are_rejected() {
        let _ = Cluster::new(vec![DeviceInstance::new(3, AcceleratorSpec::gtx_970())]);
    }
}
