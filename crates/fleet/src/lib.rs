//! Fleet-scale co-scheduling of concurrent graph jobs over a heterogeneous
//! accelerator cluster.
//!
//! HeteroMap (ISPASS 2019) predicts the best (accelerator, M-config) for
//! *one* job on *one* machine. This crate scales that decision up: a
//! [`Cluster`] models N instances of each paper accelerator with per-device
//! queues ([`heteromap_accel::Occupancy`]) and per-episode health, a
//! [`FleetTrace`] generates a seeded concurrent job stream over the B×I
//! space, and a [`Placer`] decides where each job runs:
//!
//! * **random / round-robin** — health- and predictor-blind baselines;
//! * **greedy** — predicted completion = predicted run time + queue
//!   backlog, skipping Down devices and open circuit breakers
//!   ([`heteromap::CircuitBreaker`] per device);
//! * **evolution** — batch placement-vector search with the
//!   `heteromap-tune` ensemble through the
//!   [`heteromap_tune::PlacementSpace`] adapter, guarded by a greedy
//!   incumbent.
//!
//! Jobs caught on failing devices are re-predicted and migrated (the
//! M-config is re-clamped per target via [`heteromap::clamp_config_for`],
//! the same path the resilient deploy loop uses), with deadline-aware
//! shedding under overload. The whole simulation follows the chaos-crate
//! determinism discipline — simulated time, snapshot-route, parallel slot
//! evaluation, serial fold — so [`FleetReport::digest`] is bit-identical at
//! any thread count.
//!
//! ```
//! use heteromap_fleet::{Cluster, FleetSim, FleetTrace, Placer};
//!
//! let sim = FleetSim::new(FleetTrace::smoke(42, 0.3), Cluster::uniform(1), Placer::Greedy);
//! let report = sim.run(4);
//! assert!(report.fully_accounted());
//! assert_eq!(report.digest, sim.run(1).digest);
//! ```

pub mod cluster;
pub mod placer;
pub mod sim;
pub mod trace;

pub use cluster::Cluster;
pub use placer::{batch_cost, evolve_batch, greedy_assign, BatchJob, Placer};
pub use sim::{FleetReport, FleetSim};
pub use trace::{FleetTrace, DATASETS, WORKLOADS};
